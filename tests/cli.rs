//! Integration tests for the `guardrail` CLI binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_guardrail")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("guardrail_cli_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_clean_csv(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("clean.csv");
    let mut csv = String::from("zip,city\n");
    for _ in 0..150 {
        csv.push_str("94704,Berkeley\n97201,Portland\n");
    }
    std::fs::write(&path, csv).unwrap();
    path
}

#[test]
fn synth_check_repair_roundtrip() {
    let dir = tmpdir("roundtrip");
    let clean = write_clean_csv(&dir);
    let constraints = dir.join("constraints.gr");

    // synth writes a parseable constraint file.
    let out = run(&["synth", clean.to_str().unwrap(), "--output", constraints.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&constraints).unwrap();
    assert!(text.contains("GIVEN"), "{text}");

    // check on clean data exits 0.
    let out =
        run(&["check", clean.to_str().unwrap(), "--constraints", constraints.to_str().unwrap()]);
    assert!(out.status.success());

    // check on dirty data exits 1 and reports the row.
    let dirty = dir.join("dirty.csv");
    std::fs::write(&dirty, "zip,city\n94704,gibbon\n97201,Portland\n").unwrap();
    let out =
        run(&["check", dirty.to_str().unwrap(), "--constraints", constraints.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("row 0"), "{stdout}");

    // repair rectifies and the result passes check.
    let fixed = dir.join("fixed.csv");
    let out = run(&[
        "repair",
        dirty.to_str().unwrap(),
        "--constraints",
        constraints.to_str().unwrap(),
        "--output",
        fixed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let fixed_text = std::fs::read_to_string(&fixed).unwrap();
    assert!(fixed_text.contains("Berkeley"), "{fixed_text}");
    assert!(!fixed_text.contains("gibbon"));
    let out =
        run(&["check", fixed.to_str().unwrap(), "--constraints", constraints.to_str().unwrap()]);
    assert!(out.status.success());
}

#[test]
fn repair_coerce_scheme() {
    let dir = tmpdir("coerce");
    let clean = write_clean_csv(&dir);
    let constraints = dir.join("c.gr");
    run(&["synth", clean.to_str().unwrap(), "--output", constraints.to_str().unwrap()]);
    let dirty = dir.join("dirty.csv");
    std::fs::write(&dirty, "zip,city\n94704,gibbon\n").unwrap();
    let out = run(&[
        "repair",
        dirty.to_str().unwrap(),
        "--constraints",
        constraints.to_str().unwrap(),
        "--scheme",
        "coerce",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("94704,\n"), "coerced cell should be empty: {stdout}");
}

#[test]
fn structure_prints_edges() {
    let dir = tmpdir("structure");
    let clean = write_clean_csv(&dir);
    let out = run(&["structure", clean.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("zip"), "{stdout}");
    assert!(stdout.contains("--") || stdout.contains("->"), "{stdout}");
}

#[test]
fn bad_invocations_fail_cleanly() {
    assert_eq!(run(&["bogus"]).status.code(), Some(2));
    assert_eq!(run(&["synth"]).status.code(), Some(2));
    assert_eq!(run(&["check", "nope.csv", "--constraints", "also-nope"]).status.code(), Some(2));
    assert_eq!(run(&["synth", "x.csv", "--unknown-flag", "v"]).status.code(), Some(2));
    // --help prints usage and succeeds.
    let out = run(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn synth_respects_epsilon_flag() {
    let dir = tmpdir("epsilon");
    // a → b with 10% flip noise, and b → a non-functional (b=x maps to two
    // distinct a values), so only the a → b direction is synthesizable:
    // ε = 0.2 accepts its noisy branches, ε = 0.01 rejects them all.
    let path = dir.join("noisy.csv");
    let mut csv = String::from("a,b\n");
    for i in 0..100 {
        let noisy = i % 10 == 0;
        csv.push_str(&format!("0,{}\n", if noisy { "y" } else { "x" }));
        csv.push_str(&format!("1,{}\n", if noisy { "y" } else { "x" }));
        csv.push_str(&format!("2,{}\n", if noisy { "x" } else { "y" }));
    }
    std::fs::write(&path, csv).unwrap();
    let strict = run(&["synth", path.to_str().unwrap(), "--epsilon", "0.01"]);
    let loose = run(&["synth", path.to_str().unwrap(), "--epsilon", "0.2"]);
    assert!(strict.status.success() && loose.status.success());
    let strict_out = String::from_utf8_lossy(&strict.stdout);
    let loose_out = String::from_utf8_lossy(&loose.stdout);
    assert_eq!(
        strict_out.matches("IF").count(),
        0,
        "strict ε must reject noisy branches:\n{strict_out}"
    );
    assert!(loose_out.matches("IF").count() >= 2, "loose ε must keep them:\n{loose_out}");
}

#[test]
fn report_and_trace_flags() {
    let dir = tmpdir("report_trace");
    let clean = write_clean_csv(&dir);
    let constraints = dir.join("c.gr");
    let fit_trace = dir.join("fit_trace.json");

    // --report prints the stage tree; --trace-out writes a Chrome trace.
    let out = run(&[
        "synth",
        clean.to_str().unwrap(),
        "--output",
        constraints.to_str().unwrap(),
        "--report",
        "--trace-out",
        fit_trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pipeline report"), "{stderr}");
    assert!(stderr.contains("synthesis"), "{stderr}");
    assert!(stderr.contains("structure_learning"), "{stderr}");
    assert!(stderr.contains("mec_enumeration"), "{stderr}");
    assert!(stderr.contains("sketch_fill"), "{stderr}");
    assert!(stderr.contains("ci_cache_hit_rate="), "{stderr}");
    assert!(stderr.contains("work_units="), "{stderr}");
    assert!(stderr.contains("degradations: none"), "{stderr}");

    // The trace file is Perfetto-shaped JSON with the synthesis stage spans.
    let trace = std::fs::read_to_string(&fit_trace).unwrap();
    assert!(trace.starts_with('{'), "{trace}");
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    for name in ["pc_level", "mec_enumeration", "fill_statement", "synthesis"] {
        assert!(trace.contains(&format!("\"name\":\"{name}\"")), "missing {name} span:\n{trace}");
    }
    assert!(trace.contains("\"cache_hits\""), "pc_level cache args missing:\n{trace}");

    // check --report surfaces serving-side metrics, including the
    // engine-fallback count.
    let check_trace = dir.join("check_trace.json");
    let out = run(&[
        "check",
        clean.to_str().unwrap(),
        "--constraints",
        constraints.to_str().unwrap(),
        "--report",
        "--trace-out",
        check_trace.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pipeline report"), "{stderr}");
    assert!(stderr.contains("check_table"), "{stderr}");
    assert!(stderr.contains("engine_fallback_statements=0"), "{stderr}");
    let trace = std::fs::read_to_string(&check_trace).unwrap();
    assert!(trace.contains("\"name\":\"detect_chunk\""), "{trace}");

    // A degraded fit routes its degradations through the report.
    let out = run(&["synth", clean.to_str().unwrap(), "--budget-ms", "0", "--report"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degradations:"), "{stderr}");
    assert!(!stderr.contains("degradations: none"), "{stderr}");
}

#[test]
fn synth_budget_flags_degrade_gracefully() {
    let dir = tmpdir("budget");
    let clean = write_clean_csv(&dir);

    // A zero wall-clock budget still succeeds: synth is anytime, so it emits
    // whatever it found (possibly nothing) and says which stage was cut.
    let out = run(&["synth", clean.to_str().unwrap(), "--budget-ms", "0"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exhausted"), "{stderr}");

    // An ample work cap completes without any degradation notice.
    let out = run(&["synth", clean.to_str().unwrap(), "--max-work", "100000000"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("budget exhausted"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("GIVEN"));

    // Malformed budget values are usage errors.
    assert_eq!(
        run(&["synth", clean.to_str().unwrap(), "--budget-ms", "soon"]).status.code(),
        Some(2)
    );
    assert_eq!(run(&["synth", clean.to_str().unwrap(), "--max-work", "-1"]).status.code(), Some(2));
}

#[test]
fn ingest_then_synth_and_check_from_store() {
    let dir = tmpdir("store");
    let _ = std::fs::remove_dir_all(dir.join("tbl"));
    let clean = write_clean_csv(&dir);
    let store = dir.join("tbl");
    let store_arg = store.to_str().unwrap();

    // ingest streams the CSV into a fresh store.
    let out = run(&["ingest", clean.to_str().unwrap(), "--store", store_arg, "--batch-rows", "64"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("created"), "{stderr}");
    assert!(stderr.contains("300 row(s)"), "{stderr}");

    // a second ingest appends (durable WAL batches), with --report metrics.
    let dirty = dir.join("dirty.csv");
    std::fs::write(&dirty, "zip,city\n94704,gibbon\n").unwrap();
    let out = run(&["ingest", dirty.to_str().unwrap(), "--store", store_arg, "--report"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("appended to"), "{stderr}");
    assert!(stderr.contains("rows_total=301"), "{stderr}");

    // synth runs off the store; check finds the appended dirty row.
    let constraints = dir.join("constraints.gr");
    let out = run(&["synth", "--store", store_arg, "--output", constraints.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = run(&["check", "--store", store_arg, "--constraints", constraints.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("row 300"), "{stdout}");

    // Giving both a CSV path and --store is a usage error, as is neither.
    let both = run(&[
        "check",
        clean.to_str().unwrap(),
        "--store",
        store_arg,
        "--constraints",
        constraints.to_str().unwrap(),
    ]);
    assert_eq!(both.status.code(), Some(2));
    let neither = run(&["check", "--constraints", constraints.to_str().unwrap()]);
    assert_eq!(neither.status.code(), Some(2));

    // ingest without --store is a usage error.
    assert_eq!(run(&["ingest", clean.to_str().unwrap()]).status.code(), Some(2));
}
