//! End-to-end integration: synthesis → detection → rectification across the
//! workspace crates, with ground truth supplied by known SEMs.

use guardrail::datasets::{cancer_network, inject_errors, paper_dataset, InjectConfig};
use guardrail::prelude::*;
use guardrail::stats::metrics::confusion_from_indices;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_config() -> GuardrailConfig {
    GuardrailConfig::default()
}

#[test]
fn cancer_network_pipeline_detects_injected_errors() {
    let sem = cancer_network(0.997);
    let mut rng = StdRng::seed_from_u64(31);
    let clean = sem.sample(5000, &mut rng);
    let (train, test) = SplitSpec::new(0.6, 3).split(&clean);

    let guard = Guardrail::fit(&train, &fit_config());
    assert!(!guard.program().statements.is_empty(), "nothing synthesized");

    // Clean test split: near-zero flagging (only residual SEM noise).
    let clean_report = guard.detect(&test);
    let clean_rate = clean_report.dirty_fraction();
    assert!(clean_rate < 0.02, "clean data flagged at rate {clean_rate}");

    // Corrupt the symptom columns and measure recovery.
    let xray = test.schema().index_of("xray").unwrap();
    let dysp = test.schema().index_of("dysp").unwrap();
    let mut dirty = test.clone();
    let report = inject_errors(
        &mut dirty,
        &InjectConfig { count: Some(60), columns: Some(vec![xray, dysp]), ..Default::default() },
    );
    let detected = guard.detect(&dirty).dirty_rows();
    let c = confusion_from_indices(&detected, &report.dirty_rows(), dirty.num_rows());
    assert!(c.recall() > 0.8, "recall {} too low", c.recall());
    assert!(c.precision() > 0.5, "precision {} too low", c.precision());

    // Rectify restores most corrupted cells to their original values.
    let (fixed, _) = guard.apply(&dirty, ErrorScheme::Rectify);
    let restored = report
        .errors
        .iter()
        .filter(|e| fixed.get(e.row, e.col) == Some(e.original.clone()))
        .count();
    assert!(
        restored as f64 >= 0.8 * report.errors.len() as f64,
        "only {restored}/{} cells restored",
        report.errors.len()
    );
}

#[test]
fn synthesized_program_is_parseable_and_roundtrips() {
    let dataset = paper_dataset(2, 3000);
    let guard = Guardrail::fit(&dataset.clean, &fit_config());
    let text = guard.program().to_string();
    let reparsed = guardrail::dsl::parse_program(&text).expect("printed program parses");
    assert_eq!(&reparsed, guard.program());
}

#[test]
fn sketch_respects_ground_truth_dag_on_cancer() {
    // The synthesized statements' (given, on) pairs must be edges of the
    // ground-truth DAG (Markov-equivalence caveat: orientations may flip,
    // but no statement may connect non-adjacent attributes).
    let dataset = paper_dataset(2, 8000);
    let guard = Guardrail::fit(&dataset.clean, &fit_config());
    let dag = dataset.sem.dag();
    let schema = dataset.clean.schema();
    for stmt in &guard.program().statements {
        let on = schema.index_of(&stmt.on).unwrap();
        for g in &stmt.given {
            let gi = schema.index_of(g).unwrap();
            assert!(
                dag.has_edge(gi, on) || dag.has_edge(on, gi),
                "statement GIVEN {g} ON {} connects non-adjacent attributes",
                stmt.on
            );
        }
    }
}

#[test]
fn coverage_is_monotone_in_epsilon() {
    let dataset = paper_dataset(6, 748);
    let mut last = -1.0;
    for eps in [0.0, 0.01, 0.05, 0.2] {
        let guard = Guardrail::fit(&dataset.clean, &GuardrailConfig::default().with_epsilon(eps));
        let cov = if guard.coverage().is_nan() { 0.0 } else { guard.coverage() };
        assert!(cov >= last - 1e-9, "coverage decreased from {last} to {cov} at eps {eps}");
        last = cov;
    }
}

#[test]
fn all_twelve_datasets_synthesize_without_panic() {
    for id in 1..=12u8 {
        let dataset = paper_dataset(id, 800);
        let guard = Guardrail::fit(&dataset.clean, &fit_config());
        // Sanity only: the pipeline runs end to end and detection works on
        // the training data itself.
        let report = guard.detect(&dataset.clean);
        assert!(report.rows_checked == dataset.clean.num_rows());
    }
}

#[test]
fn rectify_then_detect_is_clean() {
    let dataset = paper_dataset(2, 4000);
    let (train, test) = SplitSpec::default().split(&dataset.clean);
    let guard = Guardrail::fit(&train, &fit_config());
    let mut dirty = test.clone();
    inject_errors(&mut dirty, &InjectConfig { count: Some(40), ..Default::default() });
    let (fixed, _) = guard.apply(&dirty, ErrorScheme::Rectify);
    // After rectification the program finds nothing left to fix.
    assert!(guard.detect(&fixed).is_clean());
}

#[test]
fn coerce_nulls_every_violating_cell() {
    let dataset = paper_dataset(2, 3000);
    let (train, test) = SplitSpec::default().split(&dataset.clean);
    let guard = Guardrail::fit(&train, &fit_config());
    let mut dirty = test.clone();
    inject_errors(&mut dirty, &InjectConfig { count: Some(30), ..Default::default() });
    let before = guard.detect(&dirty);
    let (coerced, rep) = guard.apply(&dirty, ErrorScheme::Coerce);
    assert!(rep.cells_changed >= 1, "some injected error must trigger a coercion");
    // Every previously violating dependent cell is now NULL.
    for v in &before.violations {
        let col = coerced.schema().index_of(&v.attribute).unwrap();
        assert_eq!(coerced.get(v.row, col), Some(Value::Null));
    }
}
