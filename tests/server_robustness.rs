//! Chaos and robustness suite for `guardrail-server` (DESIGN.md §4).
//!
//! The acceptance property, end to end: under overload chaos — quotas
//! saturated, slow-loris writers, mid-request disconnects, garbage frames —
//! the server sheds with typed `RETRY_AFTER`, completes admitted requests
//! within their deadlines or returns a degraded result that says so,
//! never panics, and a fresh well-formed request succeeds afterwards.

use guardrail::datasets::chaos::{self as data_chaos, ErrorModel};
use guardrail::obs::json::{self, Json};
use guardrail::server::chaos::{self, Client};
use guardrail::server::{Server, ServerConfig, ServerHandle};
use guardrail::table::Table;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Training data with an exact DGP (zip determines city), large enough
/// that synthesis always keeps the dependency.
fn zip_city_csv(repeats: usize) -> String {
    let mut csv = String::from("zip,city\n");
    for _ in 0..repeats {
        csv.push_str("94704,Berkeley\n97201,Portland\n10001,NewYork\n");
    }
    csv
}

/// A server tuned for tests: tight quotas and timeouts, debug verbs on.
fn chaos_server() -> ServerHandle {
    Server::spawn(ServerConfig {
        tenant_inflight: 2,
        global_inflight: 4,
        max_frame_bytes: 64 << 10,
        read_timeout: Duration::from_millis(250),
        idle_timeout: Duration::from_secs(5),
        default_deadline: Duration::from_secs(2),
        retry_after_ms: 25,
        debug_ops: true,
        ..ServerConfig::default()
    })
    .expect("bind")
}

fn is_ok(resp: &Json) -> bool {
    resp.get("ok") == Some(&Json::Bool(true))
}

fn error_kind(resp: &Json) -> Option<&str> {
    resp.get("error")?.get("kind")?.as_str()
}

fn fit_req(csv: &str) -> String {
    format!(r#"{{"op":"fit","table":"zips","csv":{}}}"#, quote(csv))
}

fn quote(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

#[test]
fn fit_detect_rectify_vet_round_trip() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let fit = client.request(&fit_req(&zip_city_csv(100))).unwrap();
    assert!(is_ok(&fit), "{fit:?}");
    assert_eq!(fit.get("version").and_then(Json::as_u64), Some(1));
    assert!(fit.get("statements").and_then(Json::as_u64).unwrap() >= 1);

    let dirty =
        r#"{"op":"detect","table":"zips","csv":"zip,city\n94704,Portland\n97201,Portland\n"}"#;
    let detect = client.request(dirty).unwrap();
    assert!(is_ok(&detect), "{detect:?}");
    assert_eq!(detect.get("dirty_rows").and_then(Json::as_u64), Some(1));
    assert_eq!(detect.get("status").and_then(Json::as_str), Some("clean"));

    let rectify = client
        .request(r#"{"op":"rectify","table":"zips","csv":"zip,city\n94704,Portland\n"}"#)
        .unwrap();
    assert!(is_ok(&rectify), "{rectify:?}");
    assert_eq!(rectify.get("cells_changed").and_then(Json::as_u64), Some(1));
    let fixed = Table::from_csv_str(rectify.get("csv").and_then(Json::as_str).unwrap()).unwrap();
    assert_eq!(fixed.get(0, 1).unwrap().to_string(), "Berkeley");

    let vet = client
        .request(
            r#"{"op":"vet","table":"zips","scheme":"coerce","csv":"zip,city\n94704,Portland\n"}"#,
        )
        .unwrap();
    assert!(is_ok(&vet), "{vet:?}");
    assert_eq!(vet.get("violations").and_then(Json::as_arr).unwrap().len(), 1);

    let status = client.request(r#"{"op":"status"}"#).unwrap();
    assert!(is_ok(&status), "{status:?}");
    let engines = status.get("engines").and_then(Json::as_arr).unwrap();
    assert_eq!(engines.len(), 1);
    assert_eq!(engines[0].get("version").and_then(Json::as_u64), Some(1));
    // One source of truth: the status counters are the obs counters.
    // (4 ok so far: fit, detect, rectify, vet — status snapshots before
    // counting itself.)
    let counters = status.get("counters").unwrap();
    assert_eq!(counters.get("ok").and_then(Json::as_u64), Some(4));
    assert_eq!(counters.get("shed").and_then(Json::as_u64), Some(0));

    handle.shutdown();
}

#[test]
fn unknown_engine_is_a_typed_not_found() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request(r#"{"op":"detect","table":"nope","csv":"a\n1\n"}"#).unwrap();
    assert!(!is_ok(&resp));
    assert_eq!(error_kind(&resp), Some("NOT_FOUND"));
    handle.shutdown();
}

#[test]
fn hot_swap_republishes_and_failed_fit_rolls_back() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&client.request(&fit_req(&zip_city_csv(100))).unwrap()));

    // Hot swap: re-fit the same (tenant, table) → version 2.
    let refit = client.request(&fit_req(&zip_city_csv(120))).unwrap();
    assert!(is_ok(&refit), "{refit:?}");
    assert_eq!(refit.get("version").and_then(Json::as_u64), Some(2));
    assert_eq!(handle.registry().previous("default", "zips").unwrap().version, 1);

    // A re-synthesis that collapses to an empty program (single column ⇒
    // no dependencies to learn) must NOT replace the working version.
    let empty = client.request(&fit_req("a\n1\n2\n3\n")).unwrap();
    assert!(!is_ok(&empty), "{empty:?}");
    assert_eq!(error_kind(&empty), Some("FIT_FAILED"));

    // Rollback is observable: v2 still serves, and status counts the flap.
    let detect = client
        .request(r#"{"op":"detect","table":"zips","csv":"zip,city\n94704,Portland\n"}"#)
        .unwrap();
    assert!(is_ok(&detect), "{detect:?}");
    assert_eq!(detect.get("version").and_then(Json::as_u64), Some(2));
    let status = client.request(r#"{"op":"status"}"#).unwrap();
    let engines = status.get("engines").and_then(Json::as_arr).unwrap();
    assert_eq!(engines[0].get("version").and_then(Json::as_u64), Some(2));
    assert_eq!(engines[0].get("failed_fits").and_then(Json::as_u64), Some(1));
    handle.shutdown();
}

#[test]
fn hot_swap_under_load_never_breaks_in_flight_reads() {
    let handle = chaos_server();
    let mut seed_client = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&seed_client.request(&fit_req(&zip_city_csv(100))).unwrap()));

    let addr = handle.addr();
    std::thread::scope(|s| {
        // Reader: hammers detect while the writer hot-swaps versions.
        let reader = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut seen = Vec::new();
            for _ in 0..40 {
                let resp = client
                    .request(r#"{"op":"detect","table":"zips","csv":"zip,city\n94704,Berkeley\n"}"#)
                    .unwrap();
                // Shed is acceptable under quota pressure; a served read
                // must be coherent (a real published version, no violations
                // on a clean row).
                if is_ok(&resp) {
                    assert_eq!(resp.get("dirty_rows").and_then(Json::as_u64), Some(0));
                    seen.push(resp.get("version").and_then(Json::as_u64).unwrap());
                } else {
                    assert_eq!(error_kind(&resp), Some("RETRY_AFTER"), "{resp:?}");
                }
            }
            seen
        });
        let writer = s.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for i in 0..5 {
                let resp = client.request(&fit_req(&zip_city_csv(100 + i))).unwrap();
                if is_ok(&resp) {
                    assert!(resp.get("version").and_then(Json::as_u64).unwrap() >= 2);
                } else {
                    assert_eq!(error_kind(&resp), Some("RETRY_AFTER"), "{resp:?}");
                }
            }
        });
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(!seen.is_empty());
        // Versions move forward only.
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "{seen:?}");
    });
    handle.shutdown();
}

#[test]
fn overload_sheds_with_retry_after_and_recovers() {
    let handle = chaos_server();
    let addr = handle.addr();
    // 8 concurrent holders against tenant quota 2 / global 4: some must
    // be shed, the admitted ones must finish within their deadlines.
    let results: Vec<(bool, Option<u64>, Duration)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let started = Instant::now();
                    let resp = client
                        .request(r#"{"op":"sleep","sleep_ms":300,"deadline_ms":1000}"#)
                        .unwrap();
                    let wall = started.elapsed();
                    let retry = resp
                        .get("error")
                        .and_then(|e| e.get("retry_after_ms"))
                        .and_then(Json::as_u64);
                    (is_ok(&resp), retry, wall)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let admitted = results.iter().filter(|(ok, _, _)| *ok).count();
    let shed = results.len() - admitted;
    assert!(admitted >= 1, "{results:?}");
    assert!(shed >= 1, "quota 2 with 8 holders must shed: {results:?}");
    for (ok, retry, wall) in &results {
        if *ok {
            // Admitted: completed within deadline plus scheduling slack.
            assert!(*wall < Duration::from_secs(2), "admitted took {wall:?}");
        } else {
            // Shed: typed RETRY_AFTER with the configured hint, and fast.
            assert_eq!(*retry, Some(25));
            assert!(*wall < Duration::from_millis(500), "shed took {wall:?}");
        }
    }
    // Recovery: capacity fully released, fresh request succeeds.
    assert_eq!(handle.admission().global_in_flight(), 0);
    let mut client = Client::connect(addr).unwrap();
    let status = client.request(r#"{"op":"status"}"#).unwrap();
    assert!(is_ok(&status));
    let counters = status.get("counters").unwrap();
    assert_eq!(counters.get("shed").and_then(Json::as_u64), Some(shed as u64));
    let tenants = status.get("tenants").and_then(Json::as_arr).unwrap();
    assert!(tenants[0].get("high_water").and_then(Json::as_u64).unwrap() <= 2);
    handle.shutdown();
}

#[test]
fn deadline_pressure_degrades_instead_of_overrunning() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Mid-verb expiry: best-effort result plus an explicit degradation.
    let started = Instant::now();
    let resp = client.request(r#"{"op":"sleep","sleep_ms":5000,"deadline_ms":100}"#).unwrap();
    assert!(started.elapsed() < Duration::from_secs(1), "deadline ignored");
    assert!(is_ok(&resp), "{resp:?}");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("degraded"));
    let stages = resp.get("degradation").and_then(Json::as_arr).unwrap();
    assert_eq!(stages[0].get("stage").and_then(Json::as_str), Some("serve_sleep"));
    assert!(resp.get("slept_ms").and_then(Json::as_u64).unwrap() < 5000);

    // Zero deadline: refused up front with a typed error, not a hang and
    // not an unbounded run (the governor saturation audit, end to end).
    let resp = client.request(r#"{"op":"sleep","sleep_ms":5000,"deadline_ms":0}"#).unwrap();
    assert!(!is_ok(&resp));
    assert_eq!(error_kind(&resp), Some("BUDGET_EXHAUSTED"));

    // Absurd deadline: clamped, still served.
    let resp = client
        .request(r#"{"op":"sleep","sleep_ms":1,"deadline_ms":18446744073709551615}"#)
        .unwrap();
    assert!(is_ok(&resp), "{resp:?}");
    handle.shutdown();
}

#[test]
fn panic_isolation_returns_internal_and_leaks_nothing() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client.request(r#"{"op":"boom"}"#).unwrap();
    assert!(!is_ok(&resp));
    assert_eq!(error_kind(&resp), Some("INTERNAL"));
    // Same connection still serves; the permit was released by the unwind.
    let status = client.request(r#"{"op":"status"}"#).unwrap();
    assert!(is_ok(&status), "{status:?}");
    assert_eq!(handle.admission().global_in_flight(), 0);
    assert_eq!(status.get("counters").unwrap().get("error").and_then(Json::as_u64), Some(1));
    // Other connections too.
    let mut other = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&other.request(r#"{"op":"status"}"#).unwrap()));
    handle.shutdown();
}

#[test]
fn slow_loris_is_cut_loose_and_service_continues() {
    let handle = chaos_server();
    // Trickle a frame one byte every 50 ms against a 250 ms read timeout:
    // the server must hang up long before the frame completes.
    let sent = chaos::slow_loris(
        handle.addr(),
        br#"{"op":"status"}"#,
        Duration::from_millis(50),
        Duration::from_secs(3),
    )
    .unwrap();
    assert!(sent < 40, "server accepted {sent} trickled bytes without hanging up");
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&client.request(r#"{"op":"status"}"#).unwrap()));
    handle.shutdown();
}

#[test]
fn mid_frame_disconnects_are_harmless() {
    let handle = chaos_server();
    for i in 0..10 {
        chaos::disconnect_mid_frame(
            handle.addr(),
            format!(r#"{{"op":"detect","table":"t{i}","csv":"a,b"#).as_bytes(),
        )
        .unwrap();
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&client.request(r#"{"op":"status"}"#).unwrap()));
    assert_eq!(handle.admission().global_in_flight(), 0);
    handle.shutdown();
}

#[test]
fn garbage_frames_get_typed_errors_never_crashes() {
    let handle = chaos_server();
    for seed in 0..12 {
        let mut payload = data_chaos::garbage_bytes(seed, 512);
        payload.push(b'\n');
        let reply = chaos::blast(handle.addr(), &payload, Duration::from_millis(600)).unwrap();
        // Every reply line must be a parseable typed error (the server may
        // also simply hang up on binary junk mid-frame).
        for line in reply.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let text = std::str::from_utf8(line).expect("server output is UTF-8");
            let doc = json::parse(text).expect("server output parses");
            assert!(!is_ok(&doc));
        }
    }
    // Deeply nested JSON: recursion-bounded parse → typed BAD_REQUEST.
    let mut client = Client::connect(handle.addr()).unwrap();
    let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
    let resp = client.request(&deep).unwrap();
    assert_eq!(error_kind(&resp), Some("BAD_REQUEST"));
    // Truncated frame, wrong types, unknown fields: same taxonomy.
    for req in [r#"{"op":"fit","csv":42}"#, r#"{"op":"fit","x":1}"#, "null"] {
        assert_eq!(error_kind(&client.request(req).unwrap()), Some("BAD_REQUEST"));
    }
    assert!(is_ok(&client.request(r#"{"op":"status"}"#).unwrap()));
    handle.shutdown();
}

#[test]
fn oversized_frame_rejected_with_typed_error() {
    let handle =
        Server::spawn(ServerConfig { max_frame_bytes: 1 << 10, ..ServerConfig::default() })
            .expect("bind");
    let big = format!(r#"{{"op":"fit","csv":"{}"}}"#, "x".repeat(8 << 10));
    let reply = chaos::blast(handle.addr(), big.as_bytes(), Duration::from_secs(2)).unwrap();
    let text = String::from_utf8(reply).unwrap();
    assert!(text.contains("PAYLOAD_TOO_LARGE"), "{text:?}");
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(is_ok(&client.request(r#"{"op":"status"}"#).unwrap()));
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_then_refuses() {
    let handle = chaos_server();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    assert!(is_ok(&client.request(&fit_req(&zip_city_csv(50))).unwrap()));

    // A request in flight when shutdown lands must still complete.
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request(r#"{"op":"sleep","sleep_ms":400,"deadline_ms":2000}"#).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
    assert!(is_ok(&resp));
    assert_eq!(resp.get("draining"), Some(&Json::Bool(true)));
    let slept = in_flight.join().unwrap();
    assert!(is_ok(&slept), "in-flight request dropped during drain: {slept:?}");

    handle.shutdown(); // joins: acceptor and connections are gone
                       // New connections are refused (or immediately closed) after drain.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.request(r#"{"op":"status"}"#).is_err(),
    };
    assert!(refused, "server still serving after drain");
}

#[test]
fn adversarial_error_models_flow_through_the_server() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let clean = Table::from_csv_str(&zip_city_csv(100)).unwrap();
    assert!(is_ok(&client.request(&fit_req(&zip_city_csv(100))).unwrap()));

    for (model, seed) in [
        (ErrorModel::Correlated { rows: 12, cells_per_row: 2 }, 7),
        (ErrorModel::Bursty { bursts: 3, burst_len: 5 }, 11),
    ] {
        let mut dirty = clean.clone();
        let truth = data_chaos::inject_adversarial(&mut dirty, &model, seed);
        assert!(!truth.errors.is_empty());
        let req =
            format!(r#"{{"op":"detect","table":"zips","csv":{}}}"#, quote(&dirty.to_csv_string()));
        let resp = client.request(&req).unwrap();
        assert!(is_ok(&resp), "{model:?}: {resp:?}");
        let violations = resp.get("violations").and_then(Json::as_arr).unwrap();
        // Soundness: the synthesized DGP is exact on this data, so every
        // flagged row must be genuinely corrupted (no false positives).
        for v in violations {
            let row = v.get("row").and_then(Json::as_u64).unwrap() as usize;
            assert!(truth.is_dirty(row), "{model:?}: clean row {row} flagged");
        }
        // Completeness on the easy half: a row whose *only* corruption hit
        // the dependent column (city) must be flagged.
        let flagged: Vec<usize> = violations
            .iter()
            .map(|v| v.get("row").and_then(Json::as_u64).unwrap() as usize)
            .collect();
        for row in truth.dirty_rows() {
            let cols: Vec<usize> =
                truth.errors.iter().filter(|e| e.row == row).map(|e| e.col).collect();
            if cols == [1] {
                assert!(flagged.contains(&row), "{model:?}: city-corrupted row {row} missed");
            }
        }
    }
    handle.shutdown();
}

/// Persistent-store round trip: `append` creates the store and durably
/// ingests batches; `detect_batch` probes only the appended rows through
/// the cached incremental detector; a server restart over the same store
/// root replays the WAL and picks up where it left off.
#[test]
fn append_and_detect_batch_round_trip_and_survive_restart() {
    let store_root =
        std::env::temp_dir().join(format!("guardrail-srv-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let spawn = || {
        Server::spawn(ServerConfig {
            store_root: Some(store_root.clone()),
            debug_ops: true,
            ..ServerConfig::default()
        })
        .expect("bind")
    };

    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let fit = client.request(&fit_req(&zip_city_csv(100))).unwrap();
    assert!(is_ok(&fit), "{fit:?}");

    // detect_batch before any append is a typed NOT_FOUND, not a crash.
    let missing = client.request(r#"{"op":"detect_batch","table":"zips"}"#).unwrap();
    assert_eq!(error_kind(&missing), Some("NOT_FOUND"), "{missing:?}");

    // First append creates the store with the payload as its base segment.
    let append = |client: &mut Client, csv: &str| {
        let req = format!(r#"{{"op":"append","table":"zips","csv":{}}}"#, quote(csv));
        client.request(&req).unwrap()
    };
    let created = append(&mut client, &zip_city_csv(10));
    assert!(is_ok(&created), "{created:?}");
    assert_eq!(created.get("created"), Some(&Json::Bool(true)));
    assert_eq!(created.get("rows_total").and_then(Json::as_u64), Some(30));

    // Seeding pass: the detector's one-time full scan is not billed as an
    // incremental scan, and a clean base yields no new violations.
    let seed = client.request(r#"{"op":"detect_batch","table":"zips"}"#).unwrap();
    assert!(is_ok(&seed), "{seed:?}");
    assert_eq!(seed.get("rows_scanned").and_then(Json::as_u64), Some(0));
    assert_eq!(seed.get("violations").and_then(Json::as_arr).unwrap().len(), 0);

    // A dirty appended batch is probed alone: 2 rows scanned, 1 violation.
    let batch = append(&mut client, "zip,city\n94704,Portland\n97201,Portland\n");
    assert!(is_ok(&batch), "{batch:?}");
    assert_eq!(batch.get("created"), Some(&Json::Bool(false)));
    assert_eq!(batch.get("rows_appended").and_then(Json::as_u64), Some(2));
    let scan = client.request(r#"{"op":"detect_batch","table":"zips"}"#).unwrap();
    assert!(is_ok(&scan), "{scan:?}");
    assert_eq!(scan.get("rows_scanned").and_then(Json::as_u64), Some(2));
    assert!(scan.get("rows_probed").and_then(Json::as_u64).unwrap() >= 2);
    let violations = scan.get("violations").and_then(Json::as_arr).unwrap();
    assert_eq!(violations.len(), 1, "{scan:?}");
    assert_eq!(violations[0].get("row").and_then(Json::as_u64), Some(30));

    // The store shows up in status alongside the engines.
    let status = client.request(r#"{"op":"status"}"#).unwrap();
    let stores = status.get("stores").and_then(Json::as_arr).unwrap();
    assert_eq!(stores.len(), 1, "{status:?}");
    assert_eq!(stores[0].get("rows").and_then(Json::as_u64), Some(32));
    assert_eq!(stores[0].get("wal_batches").and_then(Json::as_u64), Some(1));
    handle.shutdown();

    // Restart over the same root: the WAL replays, the engine refits, and
    // incremental detection finds the same violation plus the new batch's.
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let refit = client.request(&fit_req(&zip_city_csv(100))).unwrap();
    assert!(is_ok(&refit), "{refit:?}");
    // Seeding pass on the reopened store: its full scan covers the 32
    // replayed rows (31 clean + the dirty row from before the restart).
    let seed = client.request(r#"{"op":"detect_batch","table":"zips"}"#).unwrap();
    assert!(is_ok(&seed), "{seed:?}");
    assert_eq!(seed.get("rows_total").and_then(Json::as_u64), Some(32));
    let more = append(&mut client, "zip,city\n10001,Berkeley\n");
    assert!(is_ok(&more), "{more:?}");
    assert_eq!(more.get("rows_total").and_then(Json::as_u64), Some(33));
    let scan = client.request(r#"{"op":"detect_batch","table":"zips"}"#).unwrap();
    assert!(is_ok(&scan), "{scan:?}");
    assert_eq!(scan.get("rows_scanned").and_then(Json::as_u64), Some(1));
    let violations = scan.get("violations").and_then(Json::as_arr).unwrap();
    assert_eq!(violations.len(), 1, "{scan:?}");
    assert_eq!(violations[0].get("row").and_then(Json::as_u64), Some(32));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store_root);
}

/// Without `--store-root`, the store verbs are a typed BAD_REQUEST.
#[test]
fn store_verbs_require_a_store_root() {
    let handle = chaos_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    for req in [
        r#"{"op":"append","table":"zips","csv":"zip,city\n94704,Berkeley\n"}"#,
        r#"{"op":"detect_batch","table":"zips"}"#,
    ] {
        let resp = client.request(req).unwrap();
        assert_eq!(error_kind(&resp), Some("BAD_REQUEST"), "{resp:?}");
    }
    handle.shutdown();
}

proptest! {
    /// Satellite 3 (pure half): the request parser never panics and always
    /// yields a typed error on arbitrary input. The socket half of the
    /// fuzz story is `garbage_frames_get_typed_errors_never_crashes`.
    #[test]
    fn parse_request_never_panics(line in "[ -~\n\t\u{fe}\u{3b1}]{0,300}") {
        let _ = guardrail::server::parse_request(&line);
    }

    /// Valid requests round-trip; any mutation of the op is typed.
    #[test]
    fn parse_request_typed_errors_on_op_mutation(op in "[a-z]{1,12}") {
        let line = format!(r#"{{"op":"{op}"}}"#);
        match guardrail::server::parse_request(&line) {
            Ok(req) => prop_assert_eq!(req.op.wire_name(), op.as_str()),
            Err(err) => prop_assert_eq!(err.kind, guardrail::server::ErrorKind::BadRequest),
        }
    }
}
