//! Trace-schema integration tests: arm a recorder, run the real pipeline,
//! and validate the event stream end to end — JSONL round-trips through the
//! workspace's own parser, spans nest and balance per thread, and the
//! Chrome-trace export carries every expected stage with its counters.
//!
//! The recorder registry is process-global, so every test that arms it
//! serializes on [`SERIAL`].

use guardrail::obs;
use guardrail::obs::{Event, RingRecorder};
use guardrail::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

fn clean_table(rows: usize) -> Table {
    let mut csv = String::from("zip,city,weather\n");
    for i in 0..rows {
        let (zip, city) = if i % 2 == 0 { (94704, "Berkeley") } else { (97201, "Portland") };
        csv.push_str(&format!("{zip},{city},w{}\n", i % 7));
    }
    Table::from_csv_str(&csv).unwrap()
}

/// Runs one fit and one detection under an armed ring recorder and returns
/// the captured events.
fn traced_fit_and_check() -> Vec<Event> {
    let ring = Arc::new(RingRecorder::with_capacity(1 << 20));
    obs::install(ring.clone());
    let table = clean_table(2000);
    let guard = Guardrail::fit(&table, &GuardrailConfig::default());
    assert!(!guard.program().statements.is_empty(), "fixture must synthesize");
    let dirty = Table::from_csv_str("zip,city,weather\n94704,gibbon,w0\n").unwrap();
    let _ = guard.detect(&dirty);
    obs::uninstall();
    ring.take()
}

#[test]
fn spans_nest_and_balance_per_thread() {
    let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let events = traced_fit_and_check();
    assert!(!events.is_empty());
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    for event in &events {
        match event {
            Event::SpanStart { id, parent, tid, .. } => {
                let stack = stacks.entry(*tid).or_default();
                // The recorded parent is whatever span was open on this
                // thread when the child started.
                assert_eq!(*parent, stack.last().copied().unwrap_or(0), "bad parent for {id}");
                stack.push(*id);
            }
            Event::SpanEnd { id, tid, .. } => {
                assert_eq!(stacks.entry(*tid).or_default().pop(), Some(*id), "unbalanced end");
            }
            Event::Counter { .. } => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
}

#[test]
fn jsonl_round_trips_through_own_parser() {
    let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let events = traced_fit_and_check();
    for event in &events {
        let line = event.to_jsonl();
        let parsed = obs::parse_jsonl_line(&line)
            .unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        assert!(parsed.matches(event), "round-trip mismatch: {line}");
    }
}

#[test]
fn chrome_trace_carries_every_stage_with_counters() {
    let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let events = traced_fit_and_check();
    let trace = obs::chrome_trace(&events);
    let doc = obs::json::parse(&trace).expect("trace is valid JSON");
    let trace_events = doc.get("traceEvents").and_then(obs::json::Json::as_arr).unwrap();

    let names: Vec<&str> = trace_events
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Json::as_str) == Some("B"))
        .filter_map(|e| e.get("name").and_then(obs::json::Json::as_str))
        .collect();
    for stage in [
        "synthesis",
        "structure_learning",
        "pc_skeleton",
        "pc_level",
        "mec_enumeration",
        "sketch_fill",
        "fill_statement",
        "detect",
        "check_table",
        "detect_chunk",
    ] {
        assert!(names.contains(&stage), "stage {stage} missing from trace; have {names:?}");
    }

    // Work-unit / cache counters ride as args on the end events.
    let arg_of = |span: &str, key: &str| {
        trace_events.iter().find_map(|e| {
            (e.get("ph").and_then(obs::json::Json::as_str) == Some("E")
                && e.get("name").and_then(obs::json::Json::as_str) == Some(span))
            .then(|| e.get("args").and_then(|a| a.get(key)).and_then(obs::json::Json::as_u64))
            .flatten()
        })
    };
    assert!(arg_of("pc_level", "cache_hits").is_some(), "pc_level lost its cache-hit arg");
    assert!(arg_of("pc_level", "edges_tested").is_some());
    assert_eq!(arg_of("mec_enumeration", "truncated"), Some(0));
    assert!(arg_of("fill_statement", "candidate_groups").is_some());
    assert!(arg_of("synthesis", "work_units").unwrap_or(0) > 0, "no work charged");
    assert_eq!(arg_of("detect", "violations"), Some(1));
}

#[test]
fn disarmed_pipeline_records_nothing() {
    let _lock = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::uninstall();
    let table = clean_table(400);
    let guard = Guardrail::fit(&table, &GuardrailConfig::default());
    let _ = guard.detect(&table);
    assert!(!obs::recording());
    // Arm a ring afterwards: nothing from the disarmed run leaks in.
    let ring = Arc::new(RingRecorder::with_capacity(64));
    obs::install(ring.clone());
    obs::uninstall();
    assert!(ring.take().is_empty());
}
