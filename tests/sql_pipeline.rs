//! Integration: SQL executor + ML models + Guardrail interception, the
//! Fig. 1 pipeline end to end.

use guardrail::datasets::{cancer_network, inject_errors, InjectConfig};
use guardrail::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds the hospital scenario: clean/train data, model, guardrail.
fn hospital() -> (Table, Table, Ensemble, Guardrail) {
    let sem = cancer_network(0.997);
    let mut rng = StdRng::seed_from_u64(404);
    let clean = sem.sample(4000, &mut rng);
    let (train, test) = SplitSpec::new(0.6, 5).split(&clean);
    // The model predicts dyspnoea from *observable* attributes (no latent
    // cancer diagnosis), making the X-ray its key signal — the regime where
    // guardrail rectification of corrupted X-rays pays off.
    let model_train = train.select(&["pollution", "smoker", "xray", "dysp"]).unwrap();
    let dysp = model_train.schema().index_of("dysp").unwrap();
    let model = Ensemble::fit(&model_train, dysp);
    let guard = Guardrail::fit(&train, &GuardrailConfig::default());
    (train, test, model, guard)
}

#[test]
fn guarded_query_beats_vanilla_on_dirty_data() {
    let (_, test, model, guard) = hospital();
    let xray = test.schema().index_of("xray").unwrap();
    let mut dirty = test.clone();
    inject_errors(
        &mut dirty,
        &InjectConfig { count: Some(120), columns: Some(vec![xray]), ..Default::default() },
    );

    let sql = "SELECT AVG(CASE WHEN PREDICT(m) = 'yes' THEN 1 ELSE 0 END) AS rate FROM t";
    let run = |table: &Table, guarded: bool| -> f64 {
        let mut c = Catalog::new();
        c.add_table("t", table.clone());
        c.add_model("m", Arc::new(model.clone()));
        let exec = Executor::new(&c);
        let exec = if guarded { exec.with_guardrail(&guard, ErrorScheme::Rectify) } else { exec };
        exec.run(sql).unwrap().table.get(0, 0).unwrap().as_f64().unwrap()
    };

    let truth = run(&test, false);
    let vanilla = run(&dirty, false);
    let guarded = run(&dirty, true);
    let err_vanilla = (vanilla - truth).abs();
    let err_guarded = (guarded - truth).abs();
    assert!(
        err_guarded <= err_vanilla,
        "guardrail must not increase error: {err_guarded} vs {err_vanilla}"
    );
    assert!(err_vanilla > 0.0, "corruption must move the vanilla result");
}

#[test]
fn execution_stats_break_down_guardrail_and_inference_time() {
    let (_, test, model, guard) = hospital();
    let mut c = Catalog::new();
    c.add_table("t", test.clone());
    c.add_model("m", Arc::new(model));
    let out = Executor::new(&c)
        .with_guardrail(&guard, ErrorScheme::Rectify)
        .run("SELECT PREDICT(m) AS p, COUNT(*) AS n FROM t GROUP BY p")
        .unwrap();
    assert_eq!(out.stats.predictions, test.num_rows());
    assert!(out.stats.inference_nanos > 0);
    assert!(out.stats.guardrail_nanos > 0);
    // Guardrail checking is lightweight relative to model inference — the
    // Table 6 claim, asserted loosely.
    assert!(
        out.stats.guardrail_nanos < out.stats.inference_nanos * 20,
        "guardrail {}ns vs inference {}ns",
        out.stats.guardrail_nanos,
        out.stats.inference_nanos
    );
}

#[test]
fn pushdown_and_no_pushdown_agree_under_guardrail() {
    let (_, test, model, guard) = hospital();
    let mut c = Catalog::new();
    c.add_table("t", test.clone());
    c.add_model("m", Arc::new(model));
    let sql = "SELECT PREDICT(m) AS p, COUNT(*) AS n FROM t \
               WHERE smoker = 'yes' GROUP BY p ORDER BY p";
    let a = Executor::new(&c).with_guardrail(&guard, ErrorScheme::Rectify).run(sql).unwrap();
    let b = Executor::new(&c)
        .with_guardrail(&guard, ErrorScheme::Rectify)
        .with_pushdown(false)
        .run(sql)
        .unwrap();
    assert_eq!(a.table.to_csv_string(), b.table.to_csv_string());
    assert!(a.stats.predictions <= b.stats.predictions);
}

#[test]
fn forty_eight_query_shapes_parse_and_run() {
    // The four query templates used per dataset in the Fig. 6 harness, on a
    // plain table (no ML) to pin down executor semantics.
    let (_, test, _, _) = hospital();
    let mut c = Catalog::new();
    c.add_table("t", test.clone());
    let exec = Executor::new(&c);
    let queries = [
        "SELECT smoker, COUNT(*) AS n FROM t GROUP BY smoker ORDER BY smoker",
        "SELECT AVG(CASE WHEN dysp = 'yes' THEN 1 ELSE 0 END) AS rate FROM t",
        "SELECT pollution, AVG(CASE WHEN cancer = 'yes' THEN 1 ELSE 0 END) AS r \
         FROM t WHERE smoker = 'yes' GROUP BY pollution ORDER BY pollution",
        "SELECT COUNT(*) AS n FROM t WHERE xray = 'positive' AND dysp = 'yes'",
    ];
    for q in queries {
        let out = exec.run(q).unwrap();
        assert!(out.table.num_rows() >= 1, "query produced no rows: {q}");
    }
}

#[test]
fn raise_scheme_propagates_as_query_error() {
    let (_, test, model, guard) = hospital();
    let xray = test.schema().index_of("xray").unwrap();
    let mut dirty = test.clone();
    inject_errors(
        &mut dirty,
        &InjectConfig { count: Some(30), columns: Some(vec![xray]), ..Default::default() },
    );
    let mut c = Catalog::new();
    c.add_table("t", dirty);
    c.add_model("m", Arc::new(model));
    let out = Executor::new(&c)
        .with_guardrail(&guard, ErrorScheme::Raise)
        .run("SELECT PREDICT(m) AS p FROM t");
    assert!(matches!(out, Err(guardrail::sqlexec::SqlError::GuardrailRaise { .. })));
}
