//! Parallel-execution suite: determinism and governability of the threaded
//! hot paths.
//!
//! Three invariants, checked through the public facade:
//!
//! 1. **Thread-count invariance.** Synthesis and detection produce
//!    bit-identical results at 1, 2, and N workers — parallelism is a
//!    throughput knob, never a semantics knob.
//! 2. **Cache transparency.** The sufficient-statistics cache behind the CI
//!    tests answers exactly what an uncached oracle computes.
//! 3. **Budgets reach into parallel stages.** Cancellation and caps
//!    interrupt a parallel PC level mid-flight, and the degraded result
//!    keeps the conservative-supergraph guarantee.

use std::time::{Duration, Instant};

use guardrail::datasets::chaos;
use guardrail::pgm::{
    pc_algorithm_governed, DataOracle, EncodedData, IndependenceOracle, PcConfig, SlowOracle,
};
use guardrail::prelude::*;
use proptest::prelude::*;

/// Generous wall-clock ceiling for "returned promptly".
const PROMPT: Duration = Duration::from_secs(30);

/// zip → city → state chain with mild noise plus an unconstrained column:
/// enough structure that synthesis produces a non-trivial program.
fn structured_table(seed: u64, rows: usize) -> Table {
    let mut csv = String::from("zip,city,state,extra\n");
    let mut s = seed.wrapping_mul(2654435761).max(1);
    for _ in 0..rows {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let z = s % 6;
        let c = if s % 97 == 0 { (z + 1) % 3 } else { z / 2 };
        let st = if s % 89 == 0 { (c + 1) % 2 } else { c / 2 };
        csv.push_str(&format!("{z},c{c},s{st},{}\n", (s >> 8) % 5));
    }
    Table::from_csv_str(&csv).unwrap()
}

#[test]
fn fit_and_detect_are_identical_at_any_thread_count() {
    let table = structured_table(3, 2500);
    let dirty = structured_table(4, 500);
    let baseline = Guardrail::builder()
        .parallelism(Parallelism::Sequential)
        .fit(&table)
        .expect("schema is supported");
    let base_report = baseline.detect(&dirty);
    assert!(!baseline.program().statements.is_empty(), "nothing synthesized");
    for threads in [2, 4, 16] {
        let guard = Guardrail::builder()
            .parallelism(Parallelism::threads(threads))
            .fit(&table)
            .expect("schema is supported");
        assert_eq!(
            guard.program().to_string(),
            baseline.program().to_string(),
            "{threads} threads: program differs"
        );
        assert_eq!(guard.coverage(), baseline.coverage(), "{threads} threads");
        let report = guard.detect(&dirty);
        assert_eq!(report.violations, base_report.violations, "{threads} threads");
        for scheme in [ErrorScheme::Coerce, ErrorScheme::Rectify] {
            let (seq_fixed, seq_rep) = baseline.apply(&dirty, scheme);
            let (par_fixed, par_rep) = guard.apply(&dirty, scheme);
            assert_eq!(seq_rep.cells_changed, par_rep.cells_changed, "{threads}/{scheme:?}");
            assert_eq!(
                seq_fixed.to_csv_string(),
                par_fixed.to_csv_string(),
                "{threads}/{scheme:?}"
            );
        }
    }
}

#[test]
fn cancellation_interrupts_a_parallel_pc_level() {
    // Dense pairwise dependence keeps PC busy for a long time, and the slow
    // oracle makes each CI test take ~1ms, so the cancel lands mid-level
    // while worker threads are in flight.
    let table = chaos::entangled_table(14, 600, 21);
    let encoded = EncodedData::from_table(&table);
    let slow = SlowOracle::new(DataOracle::new(&encoded), 2_000_000);
    let budget = Budget::unlimited();
    let token = budget.cancellation_token();
    let start = Instant::now();
    let (pdag, status) = std::thread::scope(|scope| {
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        pc_algorithm_governed(
            &slow,
            PcConfig { parallelism: Parallelism::threads(4), ..PcConfig::default() },
            &budget,
        )
    });
    assert!(start.elapsed() < PROMPT, "took {:?}", start.elapsed());
    assert!(!status.is_complete(), "cancelled run must report degradation");
    assert_eq!(pdag.num_nodes(), 14, "degraded CPDAG still covers all variables");
}

#[test]
fn work_cap_tripping_mid_level_keeps_justified_removals_only() {
    // Every removal in a budget-interrupted parallel level must be backed by
    // a completed independence verdict: re-running sequentially without a
    // budget must remove at least those edges (conservative supergraph).
    let table = structured_table(7, 1500);
    let encoded = EncodedData::from_table(&table);
    let oracle = DataOracle::new(&encoded);
    let full = pc_algorithm_governed(
        &oracle,
        PcConfig { parallelism: Parallelism::Sequential, ..PcConfig::default() },
        &Budget::unlimited(),
    )
    .0;
    for cap in [1u64, 3, 6, 10] {
        let oracle = DataOracle::new(&encoded);
        let (capped, status) = pc_algorithm_governed(
            &oracle,
            PcConfig { parallelism: Parallelism::threads(4), ..PcConfig::default() },
            &Budget::with_work_cap(cap),
        );
        assert!(!status.is_complete(), "cap {cap} must exhaust");
        for x in 0..full.num_nodes() {
            for y in (x + 1)..full.num_nodes() {
                if full.adjacent(x, y) {
                    assert!(
                        capped.adjacent(x, y),
                        "cap {cap}: edge ({x},{y}) of the full skeleton was dropped"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Synthesis is thread-count invariant across random inputs.
    #[test]
    fn synthesis_is_thread_count_invariant(seed in 0u64..500) {
        let table = structured_table(seed, 400);
        let seq = Guardrail::builder()
            .parallelism(Parallelism::Sequential)
            .fit(&table)
            .unwrap();
        let par = Guardrail::builder()
            .parallelism(Parallelism::threads(3))
            .fit(&table)
            .unwrap();
        prop_assert_eq!(seq.program().to_string(), par.program().to_string());
        prop_assert_eq!(seq.coverage(), par.coverage());
    }

    /// The statistics cache never changes an independence verdict: a cached
    /// and an uncached oracle agree on every query of a random table.
    #[test]
    fn oracle_cache_is_transparent(seed in 0u64..500) {
        let table = structured_table(seed, 300);
        let encoded = EncodedData::from_table(&table);
        let cached = DataOracle::new(&encoded);
        let uncached = DataOracle::new(&encoded).with_cache(false);
        let n = encoded.num_attrs();
        for x in 0..n {
            for y in 0..n {
                if x == y { continue; }
                for z in 0..n {
                    if z == x || z == y { continue; }
                    let zset = guardrail::graph::NodeSet::singleton(z);
                    prop_assert_eq!(
                        cached.p_value(x, y, zset),
                        uncached.p_value(x, y, zset),
                        "x={} y={} z={}", x, y, z
                    );
                    prop_assert_eq!(
                        cached.independent(x, y, zset),
                        uncached.independent(x, y, zset),
                        "x={} y={} z={}", x, y, z
                    );
                }
            }
        }
    }
}
