//! Robustness suite: Guardrail under fault injection and resource pressure.
//!
//! Two invariants, checked end-to-end through the public facade:
//!
//! 1. **Never panic.** Malformed CSV, binary garbage, and unsupported
//!    schemas surface as typed errors ([`TableError`], [`GuardrailError`]),
//!    never as panics.
//! 2. **Always return within budget.** Budgeted synthesis on adversarial,
//!    dataset-scale input returns promptly with a *valid* (possibly empty)
//!    program and an honest [`DegradationReport`] — exhaustion is an anytime
//!    result, not an error.

use std::time::{Duration, Instant};

use guardrail::core::GuardrailError;
use guardrail::datasets::chaos;
use guardrail::governor::Budget;
use guardrail::pgm::{
    learn_cpdag, pc_algorithm_governed, DataOracle, EncodedData, LearnConfig, PcConfig, SlowOracle,
};
use guardrail::prelude::*;
use guardrail::synth::{synthesize_from_cpdag, synthesize_from_cpdag_governed};
use guardrail::table::TableError;
use proptest::prelude::*;

/// Generous wall-clock ceiling for "returned promptly": orders of magnitude
/// above any budget used here, but small enough to catch a runaway loop even
/// on a slow debug build.
const PROMPT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Never panic: malformed bytes → typed errors
// ---------------------------------------------------------------------------

#[test]
fn malformed_csv_is_a_typed_error() {
    let err = Table::from_csv_str(&chaos::ragged_csv(3, 100)).unwrap_err();
    assert!(matches!(err, TableError::Csv { .. }), "ragged rows: {err:?}");

    let err = Table::from_csv_str(&chaos::quote_bomb()).unwrap_err();
    assert!(matches!(err, TableError::Csv { .. }), "quote bomb: {err:?}");

    assert!(matches!(Table::from_csv_str("").unwrap_err(), TableError::Empty));
}

#[test]
fn binary_garbage_never_panics() {
    for seed in 0..64 {
        // Any outcome is fine — a table of opaque strings or a typed error —
        // as long as the parser neither panics nor loops.
        let _ = Table::from_csv_bytes(chaos::garbage_bytes(seed, 2048));
    }
}

#[test]
fn oversized_schema_is_a_typed_error() {
    let wide = Table::from_csv_str(&chaos::wide_csv(200, 6)).expect("syntactically valid");
    match Guardrail::try_fit(&wide, &GuardrailConfig::default()) {
        Err(GuardrailError::TooManyAttributes { got, max }) => {
            assert_eq!(got, 200);
            assert!(max < 200);
        }
        other => panic!("expected TooManyAttributes, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Always return within budget: anytime synthesis under pressure
// ---------------------------------------------------------------------------

#[test]
fn deadline_on_dataset_scale_input_degrades_gracefully() {
    // Dense pairwise dependence: the CPDAG stays largely undirected, so the
    // MEC is combinatorially large and an unbudgeted run would grind through
    // thousands of DAG fills. 50ms cannot finish that.
    let table = chaos::entangled_table(16, 4000, 42);
    let start = Instant::now();
    let guard = Guardrail::builder()
        .budget(Budget::with_deadline(Duration::from_millis(50)))
        .fit(&table)
        .expect("schema is supported; exhaustion must not be an error");
    assert!(start.elapsed() < PROMPT, "took {:?}", start.elapsed());

    assert!(!guard.degradation().is_complete(), "50ms cannot complete this input");
    // The anytime result is still a valid, usable program.
    guard.program().validate().expect("degraded program must be well-formed");
    let report = guard.detect(&table);
    assert_eq!(report.rows_checked, table.num_rows());
}

#[test]
fn budget_ladder_always_returns_a_valid_program() {
    let table = chaos::entangled_table(10, 800, 7);
    let budgets = [
        Budget::with_deadline(Duration::ZERO),
        Budget::with_deadline(Duration::from_millis(1)),
        Budget::with_deadline(Duration::from_millis(50)),
        Budget::with_work_cap(0),
        Budget::with_work_cap(1),
        Budget::with_work_cap(64),
        Budget::with_deadline_and_work_cap(Duration::from_millis(10), 10_000),
    ];
    for budget in &budgets {
        let start = Instant::now();
        let guard = Guardrail::builder()
            .budget(budget.clone())
            .fit(&table)
            .expect("exhaustion is not an error");
        assert!(start.elapsed() < PROMPT, "took {:?}", start.elapsed());
        guard.program().validate().expect("program must be well-formed at every budget");
        // The program must also be usable for detection and repair.
        let (_, _report) = guard.apply(&table, ErrorScheme::Rectify);
    }
}

#[test]
fn cancellation_stops_synthesis() {
    let table = chaos::entangled_table(12, 1000, 5);
    let budget = Budget::unlimited();
    budget.cancellation_token().cancel();
    let guard =
        Guardrail::builder().budget(budget).fit(&table).expect("cancellation is not an error");
    assert!(!guard.degradation().is_complete(), "pre-cancelled run must report degradation");
}

#[test]
fn slow_oracle_deadline_bounds_pc_wall_clock() {
    // Each CI test spins ~1ms of opaque arithmetic: a deterministic stand-in
    // for expensive tests. Unbudgeted PC on 12 variables would run hundreds
    // of them; the deadline must cut it off after a handful.
    let table = chaos::entangled_table(12, 400, 11);
    let encoded = EncodedData::from_table(&table);
    let slow = SlowOracle::new(DataOracle::new(&encoded), 2_000_000);
    let start = Instant::now();
    let (pdag, status) = pc_algorithm_governed(
        &slow,
        PcConfig { max_cond_size: 3, ..PcConfig::default() },
        &Budget::with_deadline(Duration::from_millis(50)),
    );
    assert!(start.elapsed() < PROMPT, "took {:?}", start.elapsed());
    assert!(!status.is_complete(), "slow oracle cannot finish inside 50ms");
    assert_eq!(pdag.num_nodes(), 12, "degraded skeleton still covers all variables");
}

#[test]
fn near_uniform_noise_completes_without_inventing_structure() {
    // I.i.d. noise has nothing to synthesize: the run should complete on an
    // unlimited budget and flag at most a sliver of its own training rows.
    let table = chaos::near_uniform_table(6, 1500, 4, 9);
    let guard = Guardrail::try_fit(&table, &GuardrailConfig::default()).unwrap();
    assert!(guard.degradation().is_complete());
    let dirty = guard.detect(&table).dirty_rows().len();
    assert!(dirty <= table.num_rows() / 5, "{dirty} of {} rows flagged", table.num_rows());
}

// ---------------------------------------------------------------------------
// Governor properties
// ---------------------------------------------------------------------------

/// A small discoverable table (zip → city with mild noise) plus extras, used
/// where the property needs real structure but cheap synthesis.
fn structured_table(seed: u64, rows: usize) -> Table {
    let mut csv = String::from("zip,city,extra\n");
    let mut s = seed.wrapping_mul(2654435761).max(1);
    for _ in 0..rows {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let z = s % 6;
        let c = if s % 97 == 0 { (z + 1) % 3 } else { z % 3 };
        let e = (s >> 8) % 4;
        csv.push_str(&format!("{z},c{c},{e}\n"));
    }
    Table::from_csv_str(&csv).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An unlimited budget is a no-op: governed fit produces byte-identical
    /// programs to the ungoverned entry point.
    #[test]
    fn unlimited_budget_is_byte_identical_to_ungoverned_fit(seed in 0u64..1000) {
        let table = structured_table(seed, 300);
        let config = GuardrailConfig::default();
        let plain = Guardrail::fit(&table, &config);
        let governed =
            Guardrail::builder().config(config).budget(Budget::unlimited()).fit(&table).unwrap();
        prop_assert!(governed.degradation().is_complete());
        prop_assert_eq!(governed.program().to_string(), plain.program().to_string());
        prop_assert_eq!(governed.coverage(), plain.coverage());
    }

    /// At a fixed CPDAG, a budgeted run can only lose coverage relative to
    /// the unbudgeted run: skipped fills count as zeros and truncation only
    /// shrinks the candidate set of the argmax.
    #[test]
    fn degraded_coverage_never_exceeds_unbudgeted(seed in 0u64..1000, cap in 1u64..3000) {
        let table = structured_table(seed, 300);
        let config = SynthesisConfig::default();
        let cpdag = learn_cpdag(&table, &LearnConfig::default());
        let full = synthesize_from_cpdag(&table, &cpdag, &config);
        let degraded = synthesize_from_cpdag_governed(
            &table,
            &cpdag,
            &config,
            &Budget::with_work_cap(cap),
        );
        prop_assert!(
            degraded.coverage <= full.coverage + 1e-12,
            "degraded {} > full {}",
            degraded.coverage,
            full.coverage
        );
    }

    /// Rectification stays idempotent even when the program came from a
    /// budget-starved (degraded) run.
    #[test]
    fn rectify_is_idempotent_under_degraded_programs(seed in 0u64..1000, cap in 0u64..500) {
        let table = structured_table(seed, 300);
        let guard =
            Guardrail::builder().budget(Budget::with_work_cap(cap)).fit(&table).unwrap();
        let (once, _) = guard.apply(&table, ErrorScheme::Rectify);
        let (twice, second) = guard.apply(&once, ErrorScheme::Rectify);
        prop_assert_eq!(second.cells_changed, 0, "second pass must be a fixpoint");
        prop_assert_eq!(once.to_csv_string(), twice.to_csv_string());
    }
}
