//! Integration: baselines vs Guardrail on data with known constraints.

use guardrail::baselines::{
    ctane_discover, detect_fd_violations, fdx_discover, tane_discover, CtaneConfig, Fd, FdxConfig,
    TaneConfig,
};
use guardrail::datasets::{inject_errors, InjectConfig};
use guardrail::prelude::*;
use guardrail::stats::metrics::confusion_from_indices;

/// zip → city → state chain with 2% exogenous noise, plus a noise column.
fn chain_table(rows: usize) -> Table {
    let mut csv = String::from("zip,city,state,noise\n");
    let mut s1 = 0x12345u64;
    let mut s2 = 0xABCDEu64;
    let next = |s: &mut u64| {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    };
    for _ in 0..rows {
        let zip = next(&mut s1) % 8;
        let city = zip / 3;
        let state = u64::from(city == 2);
        let noise = next(&mut s2) % 5;
        csv.push_str(&format!("{zip},c{city},s{state},n{noise}\n"));
    }
    Table::from_csv_str(&csv).unwrap()
}

#[test]
fn tane_and_guardrail_agree_on_the_backbone() {
    let table = chain_table(3000);
    let fds = tane_discover(&table, &TaneConfig { epsilon: 0.0, ..Default::default() }).unwrap();
    assert!(fds.contains(&Fd::new(vec![0], 1)), "TANE misses zip→city: {fds:?}");
    assert!(fds.contains(&Fd::new(vec![1], 2)), "TANE misses city→state: {fds:?}");

    let guard = Guardrail::fit(&table, &GuardrailConfig::default());
    let constrained: Vec<(&str, Vec<&str>)> = guard
        .program()
        .statements
        .iter()
        .map(|s| (s.on.as_str(), s.given.iter().map(|g| g.as_str()).collect()))
        .collect();
    assert!(
        constrained.iter().any(|(on, given)| {
            (*on == "city" && given == &vec!["zip"]) || (*on == "zip" && given == &vec!["city"])
        }),
        "Guardrail misses the zip↔city relationship: {constrained:?}"
    );
}

#[test]
fn guardrail_is_more_succinct_than_tane() {
    // TANE reports the full minimal cover including transitive consequences
    // (e.g. zip → state); Guardrail's GNT sketch should not contain a
    // statement skipping over the chain.
    let table = chain_table(4000);
    let fds = tane_discover(&table, &TaneConfig { epsilon: 0.0, ..Default::default() }).unwrap();
    assert!(
        fds.contains(&Fd::new(vec![0], 2)),
        "expected TANE to report the transitive zip→state: {fds:?}"
    );
    let guard = Guardrail::fit(&table, &GuardrailConfig::default());
    for s in &guard.program().statements {
        assert!(
            !(s.given == vec!["zip".to_string()] && s.on == "state"),
            "Guardrail emitted the non-GNT statement GIVEN zip ON state:\n{}",
            guard.program()
        );
    }
}

#[test]
fn detection_comparison_on_injected_errors() {
    let clean = chain_table(4000);
    let (discover, mut detect) = SplitSpec::new(0.5, 21).split(&clean);
    let report = inject_errors(
        &mut detect,
        &InjectConfig { count: Some(25), columns: Some(vec![1, 2]), ..Default::default() },
    );
    let truth = report.dirty_rows();
    let n = detect.num_rows();

    let guard = Guardrail::fit(&discover, &GuardrailConfig::default());
    let g = confusion_from_indices(&guard.detect(&detect).dirty_rows(), &truth, n);

    let fds = tane_discover(&discover, &TaneConfig::default()).unwrap();
    let t = confusion_from_indices(&detect_fd_violations(&detect, &fds), &truth, n);

    // Both detectors find real signal on this noiseless backbone…
    assert!(g.recall() > 0.7, "guardrail recall {}", g.recall());
    assert!(t.recall() > 0.5, "tane recall {}", t.recall());
    // …and Guardrail's F1 is at least competitive.
    assert!(g.f1() >= t.f1() - 0.05, "guardrail F1 {} much worse than TANE {}", g.f1(), t.f1());
}

#[test]
fn ctane_discovers_rules_fdx_orients_edges() {
    let table = chain_table(2500);
    let cfds = ctane_discover(&table, &CtaneConfig::default()).unwrap();
    assert!(!cfds.is_empty(), "CTANE found nothing");
    assert!(
        cfds.iter().any(|r| r.target == 1 || r.target == 2),
        "no rule about the chain: {cfds:?}"
    );

    let fds = fdx_discover(&table, &FdxConfig::default()).unwrap();
    assert!(fds.contains(&Fd::new(vec![0], 1)), "FDX misses zip→city: {fds:?}");
}
