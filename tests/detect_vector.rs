//! Differential suite for the vectorized decision-table engine.
//!
//! Every bulk operation of [`guardrail::dsl::CompiledProgram`] — check,
//! rectify, coerce, at any worker count — must be bit-identical to the
//! retained legacy interpreter (`check_table_reference` /
//! `rectify_table_reference`), the same discipline `tests/ci_kernel.rs`
//! applies to the fused CI kernel. The generators deliberately cover the
//! engine's edge regimes:
//!
//! * NULL determinants (conjunct literals and cells that are `Null`),
//! * un-interned literals (`literal_code == None` expected values and
//!   conjuncts over values absent from the table's dictionary),
//! * duplicate-condition branches (several branches covering the same key,
//!   merged into multi-branch outcomes),
//! * cross-table binding (a program compiled against one table scanned
//!   over another whose dictionaries lack — or re-number — the training
//!   values, exercising the alien-code digit),
//! * Int/Float literals that collide under value equality (`1 == 1.0`).

use guardrail::dsl::ast::{Branch, Condition, Program, Statement};
use guardrail::dsl::DetectScratch;
use guardrail::governor::Parallelism;
use guardrail::table::{Table, TableBuilder, Value, NULL_CODE};
use proptest::prelude::*;

const COLS: [&str; 4] = ["c0", "c1", "c2", "c3"];

/// Values a generated table cell can hold.
fn cell_pool() -> Vec<Value> {
    vec![
        Value::Null,
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
        Value::from("v0"),
        Value::from("v1"),
    ]
}

/// Values a program literal can hold: the cell pool plus values never
/// interned in any generated table, and a float colliding with `Int(1)`
/// under value equality.
fn literal_pool() -> Vec<Value> {
    let mut pool = cell_pool();
    pool.push(Value::from("ghost"));
    pool.push(Value::Int(9));
    pool.push(Value::Float(1.0));
    pool
}

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    let pool = cell_pool();
    let indices = proptest::collection::vec(0..pool.len(), COLS.len()..=COLS.len());
    proptest::collection::vec(indices, 1..max_rows).prop_map(|rows| {
        let pool = cell_pool();
        let mut builder = TableBuilder::new(COLS.iter().map(|c| c.to_string()).collect());
        for row in rows {
            builder.push_row(row.into_iter().map(|i| pool[i].clone()).collect()).unwrap();
        }
        builder.finish().unwrap()
    })
}

/// Seed for one branch: a literal index per given column, an optional
/// repeated conjunct (same column constrained twice — possibly
/// contradictorily), and the assigned literal's index.
type BranchSeed = (Vec<usize>, Option<(usize, usize)>, usize);

fn arb_branch_seed() -> impl Strategy<Value = BranchSeed> {
    let lits = literal_pool().len();
    (
        proptest::collection::vec(0..lits, COLS.len()..=COLS.len()),
        // The vendored proptest has no `option::of`; model Option by hand.
        (any::<bool>(), 0..COLS.len(), 0..lits).prop_map(|(some, gi, li)| some.then_some((gi, li))),
        0..lits,
    )
        .prop_map(|(lit_is, dup, lit_i)| (lit_is, dup, lit_i))
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    (
        0..COLS.len(),
        proptest::collection::vec(any::<bool>(), COLS.len()..=COLS.len()),
        proptest::collection::vec(arb_branch_seed(), 1..6),
    )
        .prop_filter_map("statement needs determinants", |(on_i, mask, seeds)| {
            let pool = literal_pool();
            let on = COLS[on_i].to_string();
            let given: Vec<String> = COLS
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != on_i && mask[i])
                .map(|(_, c)| c.to_string())
                .collect();
            if given.is_empty() {
                return None;
            }
            let branches = seeds
                .into_iter()
                .map(|(lit_is, dup, lit_i)| {
                    let mut conjuncts: Vec<(String, Value)> = given
                        .iter()
                        .zip(&lit_is)
                        .map(|(g, &li)| (g.clone(), pool[li].clone()))
                        .collect();
                    if let Some((gi, li)) = dup {
                        conjuncts.push((given[gi % given.len()].clone(), pool[li].clone()));
                    }
                    Branch {
                        condition: Condition::new(conjuncts),
                        target: on.clone(),
                        literal: pool[lit_i].clone(),
                    }
                })
                .collect();
            Some(Statement { given, on, branches })
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_statement(), 1..4)
        .prop_map(|statements| Program { statements })
        .prop_filter("valid program", |p| p.validate().is_ok())
}

fn assert_same_cells(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{context}: column count");
    for row in 0..a.num_rows() {
        for col in 0..a.num_columns() {
            assert_eq!(a.get(row, col), b.get(row, col), "{context}: cell ({row},{col})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vectorized_check_matches_reference(
        table in arb_table(120),
        other in arb_table(80),
        program in arb_program(),
    ) {
        let compiled = program.compile_for(&table).unwrap();
        let reference = compiled.check_table_reference(&table);
        prop_assert_eq!(&compiled.check_table(&table), &reference);
        for threads in [2usize, 5] {
            prop_assert_eq!(
                &compiled.check_table_parallel(&table, Parallelism::threads(threads)),
                &reference,
                "{} threads", threads
            );
        }
        // The raw index form agrees field-for-field with the boundary form.
        let (mut raw, mut scratch) = (Vec::new(), DetectScratch::default());
        compiled.check_table_raw_into(&table, &mut raw, &mut scratch);
        prop_assert_eq!(raw.len(), reference.len());
        for (r, v) in raw.iter().zip(&reference) {
            prop_assert_eq!(
                (r.row, r.statement as usize, r.branch as usize),
                (v.row, v.statement, v.branch)
            );
        }
        // Cross-table binding: the program stays compiled against `table`
        // but scans `other`, whose dictionaries assign different (or no)
        // codes to the training values.
        prop_assert_eq!(
            compiled.check_table(&other),
            compiled.check_table_reference(&other)
        );
    }

    #[test]
    fn vectorized_rectify_matches_reference(
        table in arb_table(120),
        other in arb_table(80),
        program in arb_program(),
    ) {
        for threads in [1usize, 3] {
            let (mut vec_t, mut ref_t) = (table.clone(), table.clone());
            let compiled = program.compile_for(&table).unwrap();
            let vec_changed = compiled.rectify_table_parallel(&mut vec_t, Parallelism::threads(threads));
            let ref_changed = compiled.rectify_table_reference(&mut ref_t);
            prop_assert_eq!(vec_changed, ref_changed, "{} threads: change count", threads);
            assert_same_cells(&vec_t, &ref_t, &format!("rectify, {threads} threads"));
        }
        // Cross-table rectify: writes intern literals into the scanned
        // table's dictionary, not the compile-time one.
        let (mut vec_t, mut ref_t) = (other.clone(), other.clone());
        let compiled = program.compile_for(&table).unwrap();
        let vec_changed = compiled.rectify_table_parallel(&mut vec_t, Parallelism::threads(2));
        let ref_changed = compiled.rectify_table_reference(&mut ref_t);
        prop_assert_eq!(vec_changed, ref_changed, "cross-table change count");
        assert_same_cells(&vec_t, &ref_t, "cross-table rectify");
    }

    #[test]
    fn vectorized_coerce_matches_reference(
        table in arb_table(120),
        program in arb_program(),
    ) {
        let compiled = program.compile_for(&table).unwrap();
        // Reference: legacy check + the coerce write protocol (null every
        // violated dependent cell once).
        let mut ref_t = table.clone();
        let mut ref_coerced = 0usize;
        for v in compiled.check_table_reference(&table) {
            let col_idx = compiled.statements()[v.statement].on_col;
            let col = ref_t.column_mut(col_idx).unwrap();
            if col.code(v.row) != NULL_CODE {
                col.set_code(v.row, NULL_CODE);
                ref_coerced += 1;
            }
        }
        for threads in [1usize, 4] {
            let mut vec_t = table.clone();
            let coerced = compiled.coerce_table_parallel(&mut vec_t, Parallelism::threads(threads));
            prop_assert_eq!(coerced, ref_coerced, "{} threads: coerce count", threads);
            assert_same_cells(&vec_t, &ref_t, &format!("coerce, {threads} threads"));
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases (kept out of proptest so they always run).
// ---------------------------------------------------------------------------

fn table_of(rows: &[[&str; 2]]) -> Table {
    let mut builder = TableBuilder::new(vec!["a".to_string(), "b".to_string()]);
    for row in rows {
        builder
            .push_row(
                row.iter()
                    .map(|s| if s.is_empty() { Value::Null } else { Value::from(*s) })
                    .collect(),
            )
            .unwrap();
    }
    builder.finish().unwrap()
}

fn statement(branches: Vec<(Vec<(&str, Value)>, Value)>) -> Program {
    Program {
        statements: vec![Statement {
            given: vec!["a".to_string()],
            on: "b".to_string(),
            branches: branches
                .into_iter()
                .map(|(conj, literal)| Branch {
                    condition: Condition::new(
                        conj.into_iter().map(|(c, v)| (c.to_string(), v)).collect(),
                    ),
                    target: "b".to_string(),
                    literal,
                })
                .collect(),
        }],
    }
}

#[test]
fn duplicate_condition_branches_emit_one_violation_each() {
    let table = table_of(&[["x", "p"], ["x", "q"], ["y", "p"]]);
    // Two branches with the same condition and *different* literals: no
    // value satisfies both, so every matching row violates at least one.
    let program = statement(vec![
        (vec![("a", Value::from("x"))], Value::from("p")),
        (vec![("a", Value::from("x"))], Value::from("q")),
    ]);
    let compiled = program.compile_for(&table).unwrap();
    let violations = compiled.check_table(&table);
    assert_eq!(violations, compiled.check_table_reference(&table));
    // Rows 0 and 1 each violate exactly one of the two branches.
    assert_eq!(violations.len(), 2);
    assert_eq!((violations[0].row, violations[0].branch), (0, 1));
    assert_eq!((violations[1].row, violations[1].branch), (1, 0));
}

#[test]
fn null_determinants_match_null_conditions_only() {
    let table = table_of(&[["", "p"], ["x", "p"], ["", "q"]]);
    let program = statement(vec![(vec![("a", Value::Null)], Value::from("p"))]);
    let compiled = program.compile_for(&table).unwrap();
    let violations = compiled.check_table(&table);
    assert_eq!(violations, compiled.check_table_reference(&table));
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].row, 2);
}

#[test]
fn uninterned_expected_literal_flags_every_matching_row() {
    let table = table_of(&[["x", "p"], ["x", "q"]]);
    let program = statement(vec![(vec![("a", Value::from("x"))], Value::from("ghost"))]);
    let compiled = program.compile_for(&table).unwrap();
    let violations = compiled.check_table(&table);
    assert_eq!(violations, compiled.check_table_reference(&table));
    assert_eq!(violations.len(), 2, "ghost is interned nowhere: both rows disagree");
}

#[test]
fn contradictory_repeated_conjunct_matches_nothing() {
    let table = table_of(&[["x", "p"], ["y", "q"]]);
    let program =
        statement(vec![(vec![("a", Value::from("x")), ("a", Value::from("y"))], Value::from("p"))]);
    let compiled = program.compile_for(&table).unwrap();
    assert!(compiled.check_table(&table).is_empty());
    assert!(compiled.check_table_reference(&table).is_empty());
}

#[test]
fn codes_minted_after_compile_match_no_branch() {
    // Compile against a table, then scan a second table where the branch's
    // determinant value has a different code and extra values exist beyond
    // the training dictionary (the alien digit).
    let train = table_of(&[["x", "p"], ["y", "q"]]);
    let program = statement(vec![(vec![("a", Value::from("x"))], Value::from("p"))]);
    let compiled = program.compile_for(&train).unwrap();
    let serve = table_of(&[["z", "p"], ["y", "r"], ["x", "q"]]);
    assert_eq!(compiled.check_table(&serve), compiled.check_table_reference(&serve));
}
