//! Integration: the numeric range guard (§6's Conformance-Constraint
//! conjunction) working alongside the categorical DSL guardrail.

use guardrail::core::{NumericGuard, NumericGuardConfig};
use guardrail::prelude::*;

/// Mixed-type data: a categorical FD (zip → city) and a numeric measure.
fn mixed_table(rows: usize) -> Table {
    let mut csv = String::from("zip,city,temperature\n");
    for i in 0..rows {
        let (zip, city) = if i % 2 == 0 { (94704, "Berkeley") } else { (97201, "Portland") };
        // temperatures in a tight natural band.
        let temp = 10.0 + ((i * 37) % 200) as f64 / 10.0;
        csv.push_str(&format!("{zip},{city},{temp}\n"));
    }
    Table::from_csv_str(&csv).unwrap()
}

#[test]
fn numeric_and_categorical_guards_compose() {
    let clean = mixed_table(600);
    let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
    let numeric = NumericGuard::fit(&clean, &NumericGuardConfig::default());
    assert_eq!(numeric.ranges().len(), 1, "temperature gets an envelope");

    // One categorical error, one numeric outlier.
    let mut dirty = clean.clone();
    dirty.set(3, 1, Value::from("gibbon")).unwrap();
    dirty.set(7, 2, Value::Float(9999.0)).unwrap();

    let cat_rows = guard.detect(&dirty).dirty_rows();
    let num_rows = numeric.dirty_rows(&dirty);
    assert_eq!(cat_rows, vec![3], "DSL catches the categorical error only");
    assert_eq!(num_rows, vec![7], "envelope catches the numeric outlier only");

    // Union covers both; each alone covers half.
    let mut all: Vec<usize> = cat_rows.into_iter().chain(num_rows).collect();
    all.sort_unstable();
    assert_eq!(all, vec![3, 7]);
}

#[test]
fn repairs_compose_too() {
    let clean = mixed_table(400);
    let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
    let numeric = NumericGuard::fit(&clean, &NumericGuardConfig::default());

    let mut dirty = clean.clone();
    dirty.set(2, 1, Value::from("gibbon")).unwrap();
    dirty.set(5, 2, Value::Float(-500.0)).unwrap();

    let (mut repaired, rep) = guard.apply(&dirty, ErrorScheme::Rectify);
    assert_eq!(rep.cells_changed, 1);
    let clamped = numeric.clamp_table(&mut repaired);
    assert_eq!(clamped, 1);

    assert!(guard.detect(&repaired).is_clean());
    assert!(numeric.detect(&repaired).is_empty());
    assert_eq!(repaired.get(2, 1), Some(Value::from("Berkeley")));
    let temp = repaired.get(5, 2).unwrap().as_f64().unwrap();
    assert!(temp >= numeric.ranges()[0].lo);
}

#[test]
fn numeric_guard_ignores_categorical_noise() {
    // Categorical corruption must not trip numeric envelopes.
    let clean = mixed_table(300);
    let numeric = NumericGuard::fit(&clean, &NumericGuardConfig::default());
    let mut dirty = clean.clone();
    dirty.set(0, 1, Value::from("zzz")).unwrap();
    assert!(numeric.detect(&dirty).is_empty());
}
