//! Proves the steady-state allocation claim of the fused CI-test kernel:
//! once a thread's scratch buffers are warm, further tests — dense
//! tabulation, statistic folding, and the chi-squared p-value — touch the
//! heap zero times.
//!
//! The whole test binary runs under a counting global allocator (its own
//! integration-test binary, so no other tests pollute the counter); the
//! single test warms the kernel on every shape it will measure, snapshots
//! the allocation counter, and then requires thousands of further tests to
//! leave it untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use guardrail::stats::suffstats::{ci_test_fused, Strata, StratumPack};
use guardrail::stats::CiTestKind;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

#[test]
fn steady_state_ci_tests_do_not_allocate() {
    let mut rng = xorshift(1234);
    let n = 20_000;
    let (nx, ny) = (3usize, 4usize);
    let x: Vec<u32> = (0..n).map(|_| (rng() % nx as u64) as u32).collect();
    let y: Vec<u32> = (0..n).map(|_| (rng() % ny as u64) as u32).collect();
    let z1: Vec<u32> = (0..n).map(|_| (rng() % 4) as u32).collect();
    let z2: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
    let pack1 = StratumPack::pack(&[&z1], &[4]).unwrap();
    let pack2 = pack1.extend(&z2, 5).unwrap();

    let run_all = |salt: u32| {
        // `salt` perturbs nothing statistically relevant; it only keeps the
        // optimizer from hoisting the calls.
        let strata1 = Strata { keys: pack1.keys(), domain: pack1.domain() };
        let strata2 = Strata { keys: pack2.keys(), domain: pack2.domain() };
        let mut acc = 0.0;
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            acc += ci_test_fused(kind, &x, &y, None, nx, ny).statistic;
            acc += ci_test_fused(kind, &x, &y, Some(strata1), nx, ny).statistic;
            acc += ci_test_fused(kind, &x, &y, Some(strata2), nx, ny).statistic;
        }
        std::hint::black_box(acc + salt as f64);
    };

    // Warm the thread-local scratch on every shape measured below.
    for salt in 0..3 {
        run_all(salt);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for salt in 0..500 {
        run_all(salt);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warmed dense-path CI tests must not touch the heap ({} allocations over 3000 tests)",
        after - before
    );
}
