//! Proves the steady-state allocation claims of the hot serving kernels:
//! once scratch buffers are warm, further work touches the heap zero times.
//! Covered here:
//!
//! * the fused CI-test kernel (dense tabulation, statistic folding, and the
//!   chi-squared p-value),
//! * the vectorized decision-table detect pass
//!   (`CompiledProgram::check_table_raw_into` with a caller-owned
//!   [`DetectScratch`]), and
//! * the same detect pass with the observability layer's [`NoopRecorder`]
//!   explicitly installed — the tracing instrumentation's zero-overhead
//!   contract (a disarmed span is one relaxed atomic load, no heap).
//!
//! The whole test binary runs under a counting global allocator (its own
//! integration-test binary, so no other tests pollute the counter). The
//! counter is still process-global, so the tests serialize on a mutex —
//! cargo's default parallel test threads would otherwise attribute one
//! test's allocations to the other's measured window. Each test warms its
//! kernel on every shape it will measure, snapshots the allocation counter,
//! and then requires hundreds of further passes to leave it untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use guardrail::dsl::ast::{Branch, Condition, Program, Statement};
use guardrail::dsl::DetectScratch;
use guardrail::obs::{self, NoopRecorder};
use guardrail::stats::suffstats::{ci_test_fused, Strata, StratumPack};
use guardrail::stats::CiTestKind;
use guardrail::table::{Table, TableBuilder, Value};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests: `ALLOCATIONS` is process-global, so concurrent
/// tests would pollute each other's measured windows.
static SERIAL: Mutex<()> = Mutex::new(());

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

#[test]
fn steady_state_ci_tests_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let mut rng = xorshift(1234);
    let n = 20_000;
    let (nx, ny) = (3usize, 4usize);
    let x: Vec<u32> = (0..n).map(|_| (rng() % nx as u64) as u32).collect();
    let y: Vec<u32> = (0..n).map(|_| (rng() % ny as u64) as u32).collect();
    let z1: Vec<u32> = (0..n).map(|_| (rng() % 4) as u32).collect();
    let z2: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
    let pack1 = StratumPack::pack(&[&z1], &[4]).unwrap();
    let pack2 = pack1.extend(&z2, 5).unwrap();

    let run_all = |salt: u32| {
        // `salt` perturbs nothing statistically relevant; it only keeps the
        // optimizer from hoisting the calls.
        let strata1 = Strata { keys: pack1.keys(), domain: pack1.domain() };
        let strata2 = Strata { keys: pack2.keys(), domain: pack2.domain() };
        let mut acc = 0.0;
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            acc += ci_test_fused(kind, &x, &y, None, nx, ny).statistic;
            acc += ci_test_fused(kind, &x, &y, Some(strata1), nx, ny).statistic;
            acc += ci_test_fused(kind, &x, &y, Some(strata2), nx, ny).statistic;
        }
        std::hint::black_box(acc + salt as f64);
    };

    // Warm the thread-local scratch on every shape measured below.
    for salt in 0..3 {
        run_all(salt);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for salt in 0..500 {
        run_all(salt);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warmed dense-path CI tests must not touch the heap ({} allocations over 3000 tests)",
        after - before
    );
}

/// A noisy two-statement serving table: zip determines city, city determines
/// state, with a sprinkle of corrupted dependents so the detect pass emits
/// violations (the emit path is the part most tempted to allocate).
fn noisy_table(rows: usize) -> (Table, Program) {
    let mut rng = xorshift(987);
    let mut builder =
        TableBuilder::new(vec!["zip".to_string(), "city".to_string(), "state".to_string()]);
    for _ in 0..rows {
        let z = rng() % 16;
        let city = if rng() % 50 == 0 { (z + 1) % 8 } else { z % 8 };
        let state = if rng() % 50 == 0 { (city + 1) % 4 } else { city % 4 };
        builder
            .push_row(vec![
                Value::from(format!("z{z}")),
                Value::from(format!("c{city}")),
                Value::from(format!("s{state}")),
            ])
            .unwrap();
    }
    let table = builder.finish().unwrap();

    let fd = |given: &str, on: &str, pairs: Vec<(String, String)>| Statement {
        given: vec![given.to_string()],
        on: on.to_string(),
        branches: pairs
            .into_iter()
            .map(|(lhs, rhs)| Branch {
                condition: Condition::new(vec![(given.to_string(), Value::from(lhs))]),
                target: on.to_string(),
                literal: Value::from(rhs),
            })
            .collect(),
    };
    let program = Program {
        statements: vec![
            fd("zip", "city", (0..16).map(|z| (format!("z{z}"), format!("c{}", z % 8))).collect()),
            fd("city", "state", (0..8).map(|c| (format!("c{c}"), format!("s{}", c % 4))).collect()),
        ],
    };
    (table, program)
}

#[test]
fn steady_state_vectorized_detect_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let (table, program) = noisy_table(12_000);
    let compiled = program.compile_for(&table).unwrap();

    let mut out = Vec::new();
    let mut scratch = DetectScratch::default();
    // Warm: first passes size the key buffer and the output vector.
    for _ in 0..3 {
        compiled.check_table_raw_into(&table, &mut out, &mut scratch);
    }
    assert!(!out.is_empty(), "the noisy table must produce violations to exercise the emit path");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..200 {
        compiled.check_table_raw_into(&table, &mut out, &mut scratch);
        std::hint::black_box(out.len());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warmed vectorized detect must not touch the heap ({} allocations over 200 passes)",
        after - before
    );
}

#[test]
fn detect_with_noop_recorder_installed_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    // Installing the Noop recorder is the observability layer's "off" state
    // made explicit: the gate stays closed, so every span/counter call in
    // the instrumented detect path must stay a single relaxed atomic load.
    obs::install(std::sync::Arc::new(NoopRecorder));
    assert!(!obs::recording(), "Noop recorder must keep the gate closed");
    let (table, program) = noisy_table(12_000);
    let compiled = program.compile_for(&table).unwrap();

    let mut out = Vec::new();
    let mut scratch = DetectScratch::default();
    for _ in 0..3 {
        compiled.check_table_raw_into(&table, &mut out, &mut scratch);
    }
    assert!(!out.is_empty());

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..200 {
        compiled.check_table_raw_into(&table, &mut out, &mut scratch);
        std::hint::black_box(out.len());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disarmed tracing must add zero allocations ({} over 200 passes)",
        after - before
    );
}
