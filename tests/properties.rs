//! Property-based tests (proptest) over the workspace's core invariants.

use guardrail::dsl::ast::{Branch, Condition, Program, Statement};
use guardrail::dsl::parse_program;
use guardrail::governor::Budget;
use guardrail::graph::{acyclic_orientations, enumerate_extensions, Dag};
use guardrail::prelude::*;
use guardrail::stats::metrics::{min_max_normalize, BinaryConfusion};
use guardrail::stats::special::{gamma_p, gamma_q};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// DSL: parse ∘ print = id
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i32..1000, 1u32..100).prop_map(|(m, d)| Value::Float(m as f64 / d as f64)),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_-]{0,8}",
        // exercise the backquote path with spaces and keywords
        Just("has space".to_string()),
        Just("GIVEN".to_string()),
    ]
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    (
        proptest::collection::vec(arb_ident(), 1..3),
        arb_ident(),
        proptest::collection::vec((arb_value(), arb_value()), 1..4),
    )
        .prop_filter_map("self-dependence", |(mut given, on, branch_seed)| {
            given.sort();
            given.dedup();
            if given.contains(&on) {
                return None;
            }
            let branches = branch_seed
                .into_iter()
                .map(|(cv, lit)| Branch {
                    condition: Condition::new(
                        given.iter().map(|g| (g.clone(), cv.clone())).collect(),
                    ),
                    target: on.clone(),
                    literal: lit,
                })
                .collect();
            Some(Statement { given, on, branches })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dsl_print_parse_roundtrip(stmts in proptest::collection::vec(arb_statement(), 0..4)) {
        let program = Program { statements: stmts };
        prop_assume!(program.validate().is_ok());
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(reparsed, program);
    }

    #[test]
    fn rectify_is_idempotent(seed in 0u64..500) {
        // Random zip→city style table with corruption.
        let mut csv = String::from("zip,city\n");
        for i in 0..60u64 {
            let z = (seed.wrapping_mul(31).wrapping_add(i)) % 5;
            let c = z / 2;
            csv.push_str(&format!("{z},c{c}\n"));
        }
        csv.push_str("0,c9\n"); // inject
        let table = Table::from_csv_str(&csv).unwrap();
        let program = parse_program(
            "GIVEN zip ON city HAVING \
             IF zip = 0 THEN city <- \"c0\"; IF zip = 1 THEN city <- \"c0\"; \
             IF zip = 2 THEN city <- \"c1\"; IF zip = 3 THEN city <- \"c1\"; \
             IF zip = 4 THEN city <- \"c2\";",
        ).unwrap();
        let compiled = program.compile_for(&table).unwrap();
        let mut once = table.clone();
        compiled.rectify_table(&mut once);
        let compiled2 = program.compile_for(&once).unwrap();
        let mut twice = once.clone();
        prop_assert_eq!(compiled2.rectify_table(&mut twice), 0);
        prop_assert_eq!(once.to_csv_string(), twice.to_csv_string());
    }
}

// ---------------------------------------------------------------------------
// Graph: orientation counting matches brute force; MEC members are equivalent
// ---------------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..6).prop_flat_map(|n| {
        let all_edges: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        proptest::sample::subsequence(all_edges.clone(), 0..=all_edges.len().min(7))
            .prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn orientation_count_matches_brute_force((n, edges) in arb_graph()) {
        let fast = acyclic_orientations(n, &edges, 1_000_000);
        prop_assert!(fast.exact);
        // Brute force over 2^E orientations.
        let mut brute = 0u64;
        for mask in 0u64..(1 << edges.len()) {
            let mut dag = Dag::new(n);
            for (i, &(u, v)) in edges.iter().enumerate() {
                let (a, b) = if mask >> i & 1 == 0 { (u, v) } else { (v, u) };
                dag.add_edge_unchecked(a, b);
            }
            if dag.topological_order().is_some() {
                brute += 1;
            }
        }
        prop_assert_eq!(fast.count, brute as f64);
    }

    #[test]
    fn mec_members_are_markov_equivalent((n, edges) in arb_graph()) {
        // Orient edges low→high: always acyclic.
        let mut dag = Dag::new(n);
        for &(u, v) in &edges {
            dag.add_edge_unchecked(u, v);
        }
        let cpdag = dag.to_cpdag();
        let (members, status) = enumerate_extensions(&cpdag, &Budget::with_work_cap(2000));
        prop_assert!(status.is_complete());
        prop_assert!(members.iter().any(|m| m == &dag), "ground truth missing from its own MEC");
        for m in &members {
            prop_assert!(m.markov_equivalent(&dag));
            prop_assert_eq!(m.to_cpdag(), cpdag.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Stats: numeric invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gamma_complement(a in 0.05f64..50.0, x in 0.0f64..100.0) {
        let sum = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((sum - 1.0).abs() < 1e-9, "P+Q = {sum}");
    }

    #[test]
    fn min_max_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let out = min_max_normalize(&values);
        prop_assert_eq!(out.len(), values.len());
        prop_assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn mcc_and_f1_ranges(tp in 0u64..50, fp in 0u64..50, tn in 0u64..50, fn_ in 0u64..50) {
        let c = BinaryConfusion { tp, fp, tn, fn_ };
        let mcc = c.mcc();
        prop_assert!(mcc.is_nan() || (-1.0..=1.0).contains(&mcc));
        let f1 = c.f1();
        prop_assert!(f1.is_nan() || (0.0..=1.0).contains(&f1));
    }
}

// ---------------------------------------------------------------------------
// Table: CSV and dictionary round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip(rows in proptest::collection::vec(
        (any::<i32>(), "[a-zA-Z0-9 ,\"_-]{0,10}", any::<bool>()), 0..20)
    ) {
        let mut builder = guardrail::table::TableBuilder::new(
            vec!["i".into(), "s".into(), "b".into()],
        );
        for (i, s, b) in &rows {
            builder.push_row(vec![
                Value::Int(*i as i64),
                // Leading/trailing whitespace is trimmed by the parser;
                // normalize here so the roundtrip is well-defined. Tokens
                // that parse as non-strings (numbers, "true", "NA") change
                // type on re-read, so prefix to keep them strings.
                Value::from(format!("s{}", s.trim())),
                Value::Bool(*b),
            ]).unwrap();
        }
        let table = builder.finish().unwrap();
        let reparsed = Table::from_csv_str(&table.to_csv_string()).unwrap();
        prop_assert_eq!(reparsed.num_rows(), table.num_rows());
        for r in 0..table.num_rows() {
            for c in 0..3 {
                prop_assert_eq!(reparsed.get(r, c), table.get(r, c), "cell ({}, {})", r, c);
            }
        }
    }

    #[test]
    fn split_partitions_exactly(n in 1usize..200, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mut builder = guardrail::table::TableBuilder::new(vec!["i".into()]);
        for i in 0..n {
            builder.push_row(vec![Value::Int(i as i64)]).unwrap();
        }
        let table = builder.finish().unwrap();
        let (a, b) = SplitSpec::new(frac, seed).split(&table);
        prop_assert_eq!(a.num_rows() + b.num_rows(), n);
        let mut all: Vec<i64> = a.column(0).unwrap().iter()
            .chain(b.column(0).unwrap().iter())
            .map(|v| v.as_i64().unwrap()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as i64).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Synthesis: ε-validity of everything the synthesizer emits
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn synthesized_programs_are_epsilon_valid(seed in 0u64..1000) {
        use guardrail::datasets::{random_sem, RandomSemConfig};
        use guardrail::dsl::semantics::program_epsilon_valid;
        use rand::SeedableRng;
        let sem = random_sem(&RandomSemConfig { attrs: 5, seed, ..Default::default() });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let table = sem.sample(600, &mut rng);
        let config = SynthesisConfig::default();
        let guard = Guardrail::fit(&table, &config);
        prop_assert!(
            program_epsilon_valid(guard.program(), &table, config.epsilon),
            "emitted program violates its own ε bound:\n{}",
            guard.program()
        );
    }
}

// ---------------------------------------------------------------------------
// Baselines: TANE against brute-force exact-FD discovery
// ---------------------------------------------------------------------------

/// Exact-FD check by direct grouping: does `lhs → rhs` hold on `table`?
fn fd_holds(table: &Table, lhs: &[usize], rhs: usize) -> bool {
    use std::collections::HashMap;
    let mut seen: HashMap<Vec<u32>, u32> = HashMap::new();
    for row in 0..table.num_rows() {
        let key: Vec<u32> = lhs.iter().map(|&c| table.column(c).unwrap().code(row)).collect();
        let val = table.column(rhs).unwrap().code(row);
        match seen.get(&key) {
            Some(&v) if v != val => return false,
            Some(_) => {}
            None => {
                seen.insert(key, val);
            }
        }
    }
    true
}

/// All minimal exact FDs with 1 ≤ |lhs| ≤ 2 by brute force.
fn brute_force_minimal_fds(table: &Table) -> Vec<guardrail::baselines::Fd> {
    use guardrail::baselines::Fd;
    let n = table.num_columns();
    let mut out = Vec::new();
    for rhs in 0..n {
        for a in 0..n {
            if a != rhs && fd_holds(table, &[a], rhs) {
                out.push(Fd::new(vec![a], rhs));
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if a == rhs || b == rhs {
                    continue;
                }
                if fd_holds(table, &[a, b], rhs)
                    && !fd_holds(table, &[a], rhs)
                    && !fd_holds(table, &[b], rhs)
                {
                    out.push(Fd::new(vec![a, b], rhs));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tane_matches_brute_force_on_small_tables(
        rows in proptest::collection::vec((0u8..3, 0u8..3, 0u8..2, 0u8..3), 4..24)
    ) {
        use guardrail::baselines::{tane_discover, TaneConfig};
        let mut builder = guardrail::table::TableBuilder::new(
            (0..4).map(|i| format!("c{i}")).collect(),
        );
        for (a, b, c, d) in &rows {
            builder.push_row(vec![
                Value::Int(*a as i64),
                Value::Int(*b as i64),
                Value::Int(*c as i64),
                Value::Int(*d as i64),
            ]).unwrap();
        }
        let table = builder.finish().unwrap();
        let config = TaneConfig { epsilon: 0.0, max_lhs: 2, max_candidates: 100_000 };
        let tane: std::collections::HashSet<_> =
            tane_discover(&table, &config).unwrap().into_iter().collect();
        let brute: std::collections::HashSet<_> =
            brute_force_minimal_fds(&table).into_iter().collect();
        // Every TANE FD must hold exactly…
        for fd in &tane {
            prop_assert!(
                fd_holds(&table, &fd.lhs, fd.rhs),
                "TANE emitted a non-FD {fd} on\n{}",
                table.to_csv_string()
            );
        }
        // …and every minimal exact FD must be found.
        for fd in &brute {
            prop_assert!(
                tane.contains(fd),
                "TANE missed minimal FD {fd} on\n{}",
                table.to_csv_string()
            );
        }
    }
}
