//! Storage-layer acceptance suite: WAL crash recovery and incremental
//! detection (DESIGN.md §5).
//!
//! The properties, end to end:
//!
//! * **Torn writes** — a crash may cut the WAL at *any* byte. Reopen must
//!   recover exactly the batches whose records were complete before the
//!   cut, bit-identical (codes and dictionaries included) to a
//!   from-scratch build of the same rows, and the recovered store must
//!   remain appendable.
//! * **Duplicate batch ids** — a retried append that wrote its record
//!   twice replays once; the relation is unchanged.
//! * **Differential detection** — determinant-index incremental detect
//!   over appended batches reports exactly the violations of a full
//!   `check_table` pass, in the same order, for arbitrary data.

use guardrail::dsl::IncrementalDetector;
use guardrail::governor::Budget;
use guardrail::prelude::*;
use guardrail::table::store::WAL_FILE;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per proptest case (cases run concurrently).
fn tmp(name: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("guardrail_storage_tests")
        .join(format!("{name}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const REGIONS: [&str; 4] = ["west", "north", "east", "south"];
const CITIES: [&str; 4] = ["Berkeley", "Portland", "Albany", "Salem"];

fn arb_cell(pool: &'static [&'static str; 4]) -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..pool.len()).prop_map(|i| Value::from(pool[i])),
        (0..pool.len()).prop_map(|i| Value::from(pool[i])),
        (0..pool.len()).prop_map(|i| Value::from(pool[i])),
        Just(Value::Null),
        (0..4i64).prop_map(Value::Int),
    ]
}

/// A (region, city) row drawn from small pools so determinant keys repeat
/// across batches — the regime the determinant index exists for.
fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (arb_cell(&REGIONS), arb_cell(&CITIES)).prop_map(|(r, c)| vec![r, c])
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(arb_row(), 1..=max)
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Vec<Value>>>> {
    proptest::collection::vec(arb_rows(6), 0..5)
}

fn base_table(rows: &[Vec<Value>]) -> Table {
    let mut builder = TableBuilder::new(vec!["region".into(), "city".into()]);
    for row in rows {
        builder.push_row(row.clone()).unwrap();
    }
    builder.finish().unwrap()
}

/// From-scratch reference build: the same rows through `TableBuilder` in
/// one pass — the bit-identity yardstick for every recovery path.
fn reference(base: &[Vec<Value>], batches: &[Vec<Vec<Value>>]) -> Table {
    let mut rows: Vec<Vec<Value>> = base.to_vec();
    for batch in batches {
        rows.extend(batch.iter().cloned());
    }
    base_table(&rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cut the WAL at an arbitrary byte and reopen: the store recovers to
    /// the last complete batch, bit-identical to a from-scratch build, and
    /// stays appendable.
    #[test]
    fn torn_wal_recovers_to_last_complete_batch(
        base in arb_rows(8),
        batches in arb_batches(),
        cut_frac in 0.0f64..1.0,
        tail in arb_rows(3),
    ) {
        let dir = tmp("torn");
        let mut store = TableStore::create(&dir, &base_table(&base)).unwrap();
        let wal_path = dir.join(WAL_FILE);
        // WAL length after each append tells us which batches survive a cut.
        let mut len_after = vec![std::fs::metadata(&wal_path).unwrap().len()];
        for batch in &batches {
            store.append_rows(batch).unwrap();
            len_after.push(std::fs::metadata(&wal_path).unwrap().len());
        }
        drop(store);

        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (cut_frac * bytes.len() as f64) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let survivors =
            len_after.iter().filter(|&&l| l <= cut as u64).count().saturating_sub(1);

        let mut reopened = TableStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.recovery().batches_replayed, survivors);
        prop_assert_eq!(
            reopened.table(),
            &reference(&base, &batches[..survivors]),
            "recovered store is bit-identical to a from-scratch build"
        );
        // A cut strictly inside a record (or the header) is a torn tail.
        let on_boundary = len_after.contains(&(cut as u64));
        prop_assert_eq!(reopened.recovery().truncated_tail, !on_boundary);

        // The truncated log accepts new appends and replays them on reopen.
        reopened.append_rows(&tail).unwrap();
        let live = reopened.table().clone();
        drop(reopened);
        let again = TableStore::open(&dir).unwrap();
        prop_assert_eq!(again.table(), &live);
        prop_assert!(!again.recovery().truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Duplicate a random WAL record (a retried append written twice):
    /// replay skips it and the relation is unchanged.
    #[test]
    fn duplicate_wal_records_replay_once(
        base in arb_rows(8),
        batches in proptest::collection::vec(arb_rows(6), 1..5),
        dup_sel in 0..1usize << 16,
    ) {
        let dir = tmp("dup");
        let mut store = TableStore::create(&dir, &base_table(&base)).unwrap();
        let wal_path = dir.join(WAL_FILE);
        let mut len_after = vec![std::fs::metadata(&wal_path).unwrap().len()];
        for batch in &batches {
            store.append_rows(batch).unwrap();
            len_after.push(std::fs::metadata(&wal_path).unwrap().len());
        }
        drop(store);

        // Re-append the byte range of one record verbatim.
        let k = dup_sel % batches.len();
        let bytes = std::fs::read(&wal_path).unwrap();
        let record = &bytes[len_after[k] as usize..len_after[k + 1] as usize];
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(record);
        std::fs::write(&wal_path, &doubled).unwrap();

        let reopened = TableStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.recovery().duplicates_skipped, 1);
        prop_assert!(!reopened.recovery().truncated_tail);
        prop_assert_eq!(reopened.table(), &reference(&base, &batches));
        prop_assert_eq!(reopened.wal_batches().len(), batches.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Indexed incremental detect over appended batches equals a full
    /// `check_table` pass on the final relation — same violations, same
    /// order — for arbitrary data and batch boundaries.
    #[test]
    fn incremental_detect_is_differential_with_check_table(
        base in arb_rows(10),
        batches in arb_batches(),
    ) {
        let dir = tmp("diff");
        let program = parse_program(concat!(
            r#"GIVEN region ON city HAVING "#,
            r#"IF region = "west" THEN city <- "Berkeley"; "#,
            r#"IF region = "north" THEN city <- "Portland";"#,
        )).unwrap();
        let mut store = TableStore::create(&dir, &base_table(&base)).unwrap();
        let mut det = IncrementalDetector::new(&program, &store).unwrap();
        let budget = Budget::unlimited();
        for batch in &batches {
            store.append_rows(batch).unwrap();
            det.detect_appended(&store, &budget).unwrap();
        }
        let full = program.compile_for(&store).unwrap().check_table(&store);
        prop_assert_eq!(det.violations(), full.as_slice());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic spot check alongside the properties: recovery after a cut
/// mid-record lands exactly on the pre-crash durable state.
#[test]
fn mid_batch_truncation_recovers_prior_durable_state() {
    let dir = tmp("midbatch");
    let base = Table::from_csv_str("region,city\nwest,Berkeley\nnorth,Portland\n").unwrap();
    let mut store = TableStore::create(&dir, &base).unwrap();
    let wal_path = dir.join(WAL_FILE);
    store.append_rows(&[vec![Value::from("west"), Value::from("Albany")]]).unwrap();
    let durable = store.table().clone();
    let durable_len = std::fs::metadata(&wal_path).unwrap().len();
    store.append_rows(&[vec![Value::from("east"), Value::from("Salem")]]).unwrap();
    drop(store);

    // Crash mid-way through the second record.
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..durable_len as usize + 7]).unwrap();
    let reopened = TableStore::open(&dir).unwrap();
    assert!(reopened.recovery().truncated_tail);
    assert_eq!(reopened.recovery().batches_replayed, 1);
    assert_eq!(reopened.table(), &durable, "exact pre-crash durable state");
    let _ = std::fs::remove_dir_all(&dir);
}
