//! Differential suite for the fused sufficient-statistics kernel.
//!
//! Three implementations answer every CI test: the dense flat-tensor
//! kernel, the counting-sort sparse fallback, and the pre-rewrite
//! `HashMap`-of-contingency-tables reference. They are required to agree
//! **bit for bit** — statistic, degrees of freedom, and p-value — over
//! randomized tables spanning the awkward shapes: mixed cardinalities,
//! null-as-extra-category codes, empty strata (sparse key spaces), and
//! degenerate card-1 columns. A second group checks the oracle-level
//! plumbing: incremental stratum-pack extension answers exactly like full
//! re-packs, with the new hit counters ticking.

use guardrail::graph::NodeSet;
use guardrail::pgm::{DataOracle, EncodedData, IndependenceOracle};
use guardrail::stats::suffstats::{ci_test_kernel, CiScratch, KernelPath, Strata, StratumPack};
use guardrail::stats::{ci_test, ci_test_reference, CiTestKind, CiTestResult};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Asserts exact (bit-level) equality of two test results.
fn assert_bits_eq(got: CiTestResult, want: CiTestResult, ctx: &str) {
    assert_eq!(got.statistic.to_bits(), want.statistic.to_bits(), "statistic differs: {ctx}");
    assert_eq!(got.df.to_bits(), want.df.to_bits(), "df differs: {ctx}");
    assert_eq!(got.p_value.to_bits(), want.p_value.to_bits(), "p-value differs: {ctx}");
}

/// Runs one configuration through all three paths and checks bit equality.
/// `strata` may deliberately use a domain far larger than the observed keys
/// (empty strata) — both kernels must still match the reference.
#[allow(clippy::too_many_arguments)]
fn check_all_paths(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    strata: Option<Strata<'_>>,
    nx: usize,
    ny: usize,
    scratch: &mut CiScratch,
    ctx: &str,
) {
    let reference = ci_test_reference(kind, x, y, strata.map(|s| s.keys), nx, ny);
    for path in [KernelPath::Dense, KernelPath::Sparse] {
        let got = ci_test_kernel(kind, x, y, strata, nx, ny, path, scratch);
        assert_bits_eq(got, reference, &format!("{ctx} kind={kind:?} path={path:?}"));
    }
    // The public dispatcher (thread-local scratch, automatic path choice).
    let got = ci_test(kind, x, y, strata.map(|s| s.keys), nx, ny);
    assert_bits_eq(got, reference, &format!("{ctx} kind={kind:?} path=auto"));
}

#[test]
fn randomized_tables_match_reference_exactly() {
    let mut rng = xorshift(2024);
    let mut scratch = CiScratch::new();
    // Cardinalities include 1 (degenerate/constant columns, e.g. all-null)
    // and small primes; the last configuration makes X a near-copy of Y so
    // dependent tables are exercised too.
    for trial in 0..60 {
        let n = 40 + (rng() % 2000) as usize;
        let nx = 1 + (rng() % 5) as usize;
        let ny = 1 + (rng() % 5) as usize;
        let zc = 1 + (rng() % 6) as usize;
        let dependent = trial % 3 == 0;
        let x: Vec<u32> = (0..n).map(|_| (rng() % nx as u64) as u32).collect();
        let y: Vec<u32> =
            if dependent {
                x.iter()
                    .map(|&v| {
                        if rng() % 4 == 0 {
                            (rng() % ny as u64) as u32
                        } else {
                            v.min(ny as u32 - 1)
                        }
                    })
                    .collect()
            } else {
                (0..n).map(|_| (rng() % ny as u64) as u32).collect()
            };
        let z: Vec<u32> = (0..n).map(|_| (rng() % zc as u64) as u32).collect();
        let pack = StratumPack::pack(&[&z], &[zc]).unwrap();
        let ctx = format!("trial={trial} n={n} nx={nx} ny={ny} zc={zc}");
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            check_all_paths(kind, &x, &y, None, nx, ny, &mut scratch, &ctx);
            check_all_paths(kind, &x, &y, Some(pack.strata()), nx, ny, &mut scratch, &ctx);
        }
    }
}

#[test]
fn empty_strata_and_sparse_key_spaces_match() {
    let mut rng = xorshift(77);
    let mut scratch = CiScratch::new();
    let n = 600;
    let (nx, ny) = (3usize, 3usize);
    let x: Vec<u32> = (0..n).map(|_| (rng() % nx as u64) as u32).collect();
    let y: Vec<u32> = (0..n).map(|_| (rng() % ny as u64) as u32).collect();
    // Keys drawn from a tiny subset of a huge domain: most strata empty.
    // The dense path (when forced) must skip the empty blocks identically
    // to the reference, which never materializes them.
    let sparse_keys: Vec<u64> = (0..n).map(|_| [0u64, 7, 8, 4999][(rng() % 4) as usize]).collect();
    for domain in [5000u64, 10_000] {
        let strata = Strata { keys: &sparse_keys, domain };
        let ctx = format!("sparse keys, domain={domain}");
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            check_all_paths(kind, &x, &y, Some(strata), nx, ny, &mut scratch, &ctx);
        }
    }
    // Singleton strata (every row its own stratum): zero information, all
    // paths must return the conservative df = 0 / p = 1.
    let singleton_keys: Vec<u64> = (0..n as u64).collect();
    let strata = Strata { keys: &singleton_keys, domain: n as u64 };
    for kind in [CiTestKind::G2, CiTestKind::Pearson] {
        check_all_paths(kind, &x, &y, Some(strata), nx, ny, &mut scratch, "singleton strata");
        let r = ci_test(kind, &x, &y, Some(&singleton_keys), nx, ny);
        assert_eq!(r.df, 0.0);
        assert_eq!(r.p_value, 1.0);
    }
}

#[test]
fn null_coded_tables_match() {
    // Columns with nulls are encoded as an extra trailing category; make
    // that category rare so some strata never see it (structural zeros).
    let mut rng = xorshift(31);
    let mut scratch = CiScratch::new();
    let n = 1500;
    let (nx, ny, zc) = (3usize, 4usize, 3usize); // last code of each = "null"
    let x: Vec<u32> = (0..n)
        .map(|_| if rng() % 50 == 0 { nx as u32 - 1 } else { (rng() % (nx as u64 - 1)) as u32 })
        .collect();
    let y: Vec<u32> = (0..n)
        .map(|_| if rng() % 50 == 0 { ny as u32 - 1 } else { (rng() % (ny as u64 - 1)) as u32 })
        .collect();
    let z: Vec<u32> = (0..n)
        .map(|_| if rng() % 50 == 0 { zc as u32 - 1 } else { (rng() % (zc as u64 - 1)) as u32 })
        .collect();
    let pack = StratumPack::pack(&[&z], &[zc]).unwrap();
    for kind in [CiTestKind::G2, CiTestKind::Pearson] {
        check_all_paths(kind, &x, &y, Some(pack.strata()), nx, ny, &mut scratch, "null-coded");
    }
}

#[test]
fn multi_column_conditioning_matches() {
    let mut rng = xorshift(404);
    let mut scratch = CiScratch::new();
    let n = 2500;
    let cards = [3usize, 2, 4];
    let cols: Vec<Vec<u32>> =
        cards.iter().map(|&c| (0..n).map(|_| (rng() % c as u64) as u32).collect()).collect();
    let refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
    let x: Vec<u32> = (0..n).map(|_| (rng() % 3) as u32).collect();
    let y: Vec<u32> = (0..n).map(|_| (rng() % 3) as u32).collect();
    for k in 1..=cards.len() {
        let pack = StratumPack::pack(&refs[..k], &cards[..k]).unwrap();
        // The incrementally extended pack must be the full pack, bit for bit.
        if k > 1 {
            let extended = StratumPack::pack(&refs[..k - 1], &cards[..k - 1])
                .unwrap()
                .extend(refs[k - 1], cards[k - 1])
                .unwrap();
            assert_eq!(extended, pack, "extension differs from full pack at k={k}");
        }
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            check_all_paths(
                kind,
                &x,
                &y,
                Some(pack.strata()),
                3,
                3,
                &mut scratch,
                &format!("k={k}"),
            );
        }
    }
}

/// Oracle-level: with the cache's incremental pack extension in play, every
/// query still answers exactly like the uncached oracle, and the extension
/// counter records the level-to-level reuse.
#[test]
fn oracle_pack_extension_is_transparent() {
    let mut rng = xorshift(9001);
    let n = 5000;
    let cards = [2usize, 3, 2, 4, 2];
    let cols: Vec<Vec<u32>> =
        cards.iter().map(|&c| (0..n).map(|_| (rng() % c as u64) as u32).collect()).collect();
    let data = EncodedData::from_parts(
        cols,
        cards.to_vec(),
        (0..cards.len()).map(|i| format!("a{i}")).collect(),
    );
    let cached = DataOracle::new(&data);
    let uncached = DataOracle::new(&data).with_cache(false);
    let m = data.num_attrs();
    // Mimic PC's level structure: all singletons first, then pairs, then
    // triples, so larger sets always find their prefix cached.
    let mut zs: Vec<NodeSet> = (0..m).map(NodeSet::singleton).collect();
    for a in 0..m {
        for b in (a + 1)..m {
            zs.push(NodeSet::from_iter([a, b]));
        }
    }
    for a in 0..m {
        for b in (a + 1)..m {
            for c in (b + 1)..m {
                zs.push(NodeSet::from_iter([a, b, c]));
            }
        }
    }
    for z in zs {
        for x in 0..m {
            for y in (x + 1)..m {
                if z.contains(x) || z.contains(y) {
                    continue;
                }
                assert_eq!(
                    cached.p_value(x, y, z),
                    uncached.p_value(x, y, z),
                    "x={x} y={y} z={z:?}"
                );
                assert_eq!(cached.independent(x, y, z), uncached.independent(x, y, z));
            }
        }
    }
    let stats = cached.cache_stats();
    assert!(stats.pack_extensions > 0, "multi-level queries must extend cached packs: {stats:?}");
    assert!(stats.strata_hits > 0, "{stats:?}");
    assert_eq!(uncached.cache_stats().pack_extensions, 0);
}
