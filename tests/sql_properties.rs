//! Property tests for the SQL layer: expression printing round-trips through
//! the parser, and executor invariants hold on random inputs.

use guardrail::sqlexec::ast::{AggFunc, BinOp, Expr};
use guardrail::sqlexec::{parse_query, Catalog, Executor};
use guardrail::table::{Table, TableBuilder, Value};
use proptest::prelude::*;

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Literal(Value::Int(i as i64))),
        (-1000i32..1000, 1u32..50)
            .prop_map(|(m, d)| Expr::Literal(Value::Float(m as f64 / d as f64))),
        "[a-zA-Z0-9 _']{0,8}".prop_map(|s| Expr::Literal(Value::Str(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
    ]
}

/// Identifiers that must not collide with SQL keywords or function names.
fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "SELECT"
                | "FROM"
                | "WHERE"
                | "GROUP"
                | "BY"
                | "HAVING"
                | "ORDER"
                | "LIMIT"
                | "AS"
                | "AND"
                | "OR"
                | "NOT"
                | "IN"
                | "BETWEEN"
                | "CASE"
                | "WHEN"
                | "THEN"
                | "ELSE"
                | "END"
                | "TRUE"
                | "FALSE"
                | "NULL"
                | "ASC"
                | "DESC"
                | "AVG"
                | "SUM"
                | "COUNT"
                | "MIN"
                | "MAX"
                | "PREDICT"
        )
    })
}

fn arb_scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal(),
        arb_ident().prop_map(Expr::Column),
        arb_ident().prop_map(|m| Expr::Predict { model: m }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r)
                }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (proptest::collection::vec((inner.clone(), inner.clone()), 1..3), inner.clone())
                .prop_map(|(branches, otherwise)| Expr::Case {
                    branches,
                    otherwise: Some(Box::new(otherwise)),
                }),
            (
                prop_oneof![
                    Just(AggFunc::Avg),
                    Just(AggFunc::Sum),
                    Just(AggFunc::Count),
                    Just(AggFunc::Min),
                    Just(AggFunc::Max)
                ],
                inner
            )
                .prop_map(|(func, arg)| Expr::Aggregate { func, arg: Some(Box::new(arg)) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing an expression and parsing it back in a SELECT yields the
    /// same expression (modulo Value's cross-type numeric equality).
    #[test]
    fn expr_display_parse_roundtrip(expr in arb_scalar_expr()) {
        let sql = format!("SELECT {expr} AS out FROM t");
        let query = parse_query(&sql)
            .unwrap_or_else(|e| panic!("printed expression failed to parse: {e}\n{sql}"));
        prop_assert_eq!(&query.projections[0].expr, &expr, "{}", sql);
    }

    /// WHERE filtering never invents rows, and ordering never changes the
    /// multiset of results.
    #[test]
    fn where_and_order_invariants(values in proptest::collection::vec(0i64..20, 1..40)) {
        let mut b = TableBuilder::new(vec!["v".into()]);
        for &v in &values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.add_table("t", b.finish().unwrap());
        let exec = Executor::new(&catalog);

        let all = exec.run("SELECT v FROM t").unwrap().table;
        prop_assert_eq!(all.num_rows(), values.len());

        let filtered = exec.run("SELECT v FROM t WHERE v >= 10").unwrap().table;
        let expected = values.iter().filter(|&&v| v >= 10).count();
        prop_assert_eq!(filtered.num_rows(), expected);

        let ordered = exec.run("SELECT v FROM t ORDER BY v DESC").unwrap().table;
        let mut got: Vec<i64> =
            (0..ordered.num_rows()).map(|i| ordered.get(i, 0).unwrap().as_i64().unwrap()).collect();
        prop_assert!(got.windows(2).all(|w| w[0] >= w[1]), "not sorted: {got:?}");
        got.sort_unstable();
        let mut want = values.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// GROUP BY partitions: group counts sum to the row count.
    #[test]
    fn group_counts_partition_rows(values in proptest::collection::vec(0i64..5, 1..60)) {
        let mut b = TableBuilder::new(vec!["g".into()]);
        for &v in &values {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.add_table("t", b.finish().unwrap());
        let out = Executor::new(&catalog)
            .run("SELECT g, COUNT(*) AS n FROM t GROUP BY g")
            .unwrap()
            .table;
        let total: i64 =
            (0..out.num_rows()).map(|i| out.get(i, 1).unwrap().as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, values.len());
    }
}

/// Tables referenced by the executor but not the parser: explain on a random
/// (valid) query never panics.
#[test]
fn explain_never_panics_on_valid_queries() {
    let table = Table::from_csv_str("a,b\n1,x\n2,y\n").unwrap();
    let mut catalog = Catalog::new();
    catalog.add_table("t", table);
    let exec = Executor::new(&catalog);
    for sql in [
        "SELECT a FROM t",
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 0 ORDER BY a LIMIT 1",
        "SELECT a FROM t WHERE a IN (1, 2) AND b = 'x'",
        "SELECT MAX(a) - MIN(a) AS spread FROM t",
    ] {
        let plan = exec.explain(sql).unwrap();
        assert!(plan.contains("Scan t"), "{plan}");
    }
}
