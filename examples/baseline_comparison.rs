//! Error-detection bake-off on one dataset: Guardrail vs TANE vs CTANE vs
//! FDX (a single row of the paper's Table 3).
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use guardrail::baselines::{
    ctane_discover, detect_cfd_violations, detect_fd_violations, fdx_discover, tane_discover,
    CtaneConfig, FdxConfig, TaneConfig,
};
use guardrail::datasets::{inject_errors, paper_dataset, InjectConfig};
use guardrail::prelude::*;
use guardrail::stats::metrics::confusion_from_indices;

fn main() {
    // Dataset #9 (Telco Customer Churn shape), capped for a quick run.
    let dataset = paper_dataset(9, 4000);
    println!(
        "dataset #{} — {} ({} rows × {} attrs)",
        dataset.spec.id,
        dataset.spec.name,
        dataset.clean.num_rows(),
        dataset.clean.num_columns()
    );

    // Discover on a clean split; detect on an error-injected split.
    let (discover, mut detect) = SplitSpec::new(0.5, 11).split(&dataset.clean);
    let report = inject_errors(&mut detect, &InjectConfig::default());
    let truth = report.dirty_rows();
    println!("injected {} errors into the detection split\n", truth.len());

    let n = detect.num_rows();
    let score = |name: &str, flagged: &[usize]| {
        let c = confusion_from_indices(flagged, &truth, n);
        println!(
            "{name:<12} flagged {:>5} rows   F1 {:>6.3}   MCC {:>6.3}",
            flagged.len(),
            c.f1(),
            c.mcc()
        );
    };

    // Guardrail.
    let guard = Guardrail::builder().fit(&discover).expect("schema is supported");
    score("Guardrail", &guard.detect(&detect).dirty_rows());

    // TANE.
    match tane_discover(&discover, &TaneConfig::default()) {
        Ok(fds) => score("TANE", &detect_fd_violations(&detect, &fds)),
        Err(e) => println!("{:<12} -            ({e})", "TANE"),
    }

    // CTANE.
    match ctane_discover(&discover, &CtaneConfig::default()) {
        Ok(cfds) => score("CTANE", &detect_cfd_violations(&detect, &cfds)),
        Err(e) => println!("{:<12} -            ({e})", "CTANE"),
    }

    // FDX.
    match fdx_discover(&discover, &FdxConfig::default()) {
        Ok(fds) => score("FDX", &detect_fd_violations(&detect, &fds)),
        Err(e) => println!("{:<12} -            ({e})", "FDX"),
    }
}
