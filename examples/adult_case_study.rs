//! The paper's Appendix F case study on the Adult dataset: the
//! `relationship → marital-status` constraint, a corrupted row whose income
//! *prediction* flips, and the average-age-by-predicted-income query whose
//! deviation rectification drives back to zero.
//!
//! ```sh
//! cargo run --release --example adult_case_study
//! ```

use guardrail::prelude::*;
use std::sync::Arc;

fn main() {
    // A miniature Adult-like relation in which relationship determines
    // marital-status (the constraint of Eqn. 9 in the paper) and income
    // depends on marital-status — so corrupting marital-status corrupts the
    // model's income prediction, exactly as in the case study's row #1064.
    let mut csv = String::from("age,workclass,relationship,marital-status,income\n");
    let rows: [(&str, &str, &str); 5] = [
        ("Husband", "Married-civ-spouse", ">50K"),
        ("Wife", "Married-civ-spouse", ">50K"),
        ("Not-in-family", "Never-married", "<=50K"),
        ("Unmarried", "Divorced", "<=50K"),
        ("Other-relative", "Separated", "<=50K"),
    ];
    for i in 0..1200 {
        let (rel, marital, income) = rows[i % 5];
        // ages differ across brackets so the aggregate is sensitive to
        // prediction flips.
        let age = if income == ">50K" { 38 + (i * 7) % 20 } else { 24 + (i * 7) % 20 };
        let wc = if i % 3 == 0 { "Private" } else { "Self-emp" };
        csv.push_str(&format!("{age},{wc},{rel},{marital},{income}\n"));
    }
    let clean = Table::from_csv_str(&csv).expect("valid CSV");
    let marital = clean.schema().index_of("marital-status").expect("column");

    // Train the proprietary income model: a demographic model over age,
    // work class, and marital status (the vendor's model does not happen to
    // use `relationship`; Guardrail's constraint does, which is what lets
    // it repair the attribute the model *does* read).
    let model_view = clean.select(&["age", "workclass", "marital-status", "income"]).unwrap();
    let income = model_view.schema().index_of("income").expect("column");
    let model = NaiveBayes::fit(&model_view, income);
    let guard = Guardrail::builder().fit(&clean).expect("schema is supported");
    println!("synthesized constraints:\n{}", guard.program());

    // The paper's hand-written reference constraint parses and agrees:
    let reference = parse_program(
        r#"GIVEN relationship ON marital-status HAVING
               IF relationship = "Husband" THEN marital-status <- "Married-civ-spouse";
               IF relationship = "Wife" THEN marital-status <- "Married-civ-spouse";"#,
    )
    .expect("parses");
    println!("reference constraint (Eqn. 9):\n{reference}");

    // Corrupt some Husband rows to marital-status = Separated (row #1064's
    // corruption), then run the case study's ML-integrated query.
    let mut dirty = clean.clone();
    for row in [100, 104, 108, 112, 116, 120] {
        dirty.set(row, marital, Value::from("Separated")).expect("in range");
    }

    let sql = "SELECT PREDICT(income_model) AS income_pred, AVG(age) AS avg_age \
               FROM adult WHERE workclass = 'Private' \
               GROUP BY income_pred ORDER BY income_pred";
    let run = |t: &Table, guarded: bool| {
        let mut c = Catalog::new();
        c.add_table("adult", t.clone());
        c.add_model("income_model", Arc::new(model.clone()));
        let exec = Executor::new(&c);
        let exec = if guarded { exec.with_guardrail(&guard, ErrorScheme::Rectify) } else { exec };
        exec.run(sql).expect("query runs").table
    };

    let truth = run(&clean, false);
    let vanilla = run(&dirty, false);
    let rectified = run(&dirty, true);

    println!("{:<14}{:>12}{:>12}{:>12}", "income_pred", "clean", "dirty", "rectified");
    for i in 0..truth.num_rows() {
        let fmt = |t: &Table| t.get(i, 1).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        println!(
            "{:<14}{:>12.2}{:>12.2}{:>12.2}",
            truth.get(i, 0).unwrap().to_string(),
            fmt(&truth),
            fmt(&vanilla),
            fmt(&rectified),
        );
    }

    // As in the case study's final table, the rectified execution matches
    // the clean ground truth exactly.
    assert_eq!(truth.to_csv_string(), rectified.to_csv_string());
    assert_ne!(truth.to_csv_string(), vanilla.to_csv_string());
    println!("\nrectified query results match the clean ground truth exactly ✓");
}
