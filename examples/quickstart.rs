//! Quickstart: synthesize constraints, inspect the program, detect and fix
//! errors.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use guardrail::prelude::*;

fn main() {
    // --- 1. Clean training data ---------------------------------------
    // A toy relation where the DGP is the chain zip → city → state
    // (Example 3.1 of the paper), plus an unconstrained noise column.
    let mut csv = String::from("zip,city,state,visitors\n");
    let cities = [
        ("94704", "Berkeley", "CA"),
        ("94705", "Berkeley", "CA"),
        ("94110", "SF", "CA"),
        ("94114", "SF", "CA"),
        ("97201", "Portland", "OR"),
        ("97209", "Portland", "OR"),
    ];
    for i in 0..900 {
        let (zip, city, state) = cities[(i * 7 + i / 13) % 6];
        csv.push_str(&format!("{zip},{city},{state},{}\n", (i * 37) % 11));
    }
    let clean = Table::from_csv_str(&csv).expect("valid CSV");
    println!("training on {} clean rows\n", clean.num_rows());

    // --- 2. Offline synthesis -----------------------------------------
    // The builder exposes every fit-time knob; unset ones keep their
    // defaults (unlimited budget, one worker per hardware thread).
    let guard = Guardrail::builder()
        .config(GuardrailConfig::default())
        .budget(Budget::unlimited())
        .parallelism(Parallelism::Auto)
        .fit(&clean)
        .expect("schema is supported");
    println!("synthesized program (coverage {:.2}):\n{}", guard.coverage(), guard.program());
    println!(
        "MEC contained {} DAG(s); statement cache hit rate {:.0}%\n",
        guard.outcome().mec_size,
        guard.outcome().cache_stats.hit_rate() * 100.0
    );

    // --- 3. Error detection --------------------------------------------
    let dirty = Table::from_csv_str(
        "zip,city,state,visitors\n\
         94704,Berkeley,CA,3\n\
         94704,gibbon,CA,5\n\
         97201,Portland,WA,1\n",
    )
    .expect("valid CSV");
    let report = guard.detect(&dirty);
    println!("detected {} violation(s) on {} rows:", report.violations.len(), dirty.num_rows());
    for v in &report.violations {
        println!(
            "  row {}: {} should be {:?} per the DGP, found {:?}",
            v.row,
            v.attribute,
            v.expected.to_string(),
            v.actual.to_string()
        );
    }

    // --- 4. The four error-handling schemes -----------------------------
    for scheme in [ErrorScheme::Ignore, ErrorScheme::Coerce, ErrorScheme::Rectify] {
        let (fixed, rep) = guard.apply(&dirty, scheme);
        println!(
            "\nscheme {:?}: {} cell(s) changed; row 1 city is now {:?}",
            scheme,
            rep.cells_changed,
            fixed.get(1, 1).unwrap().to_string()
        );
    }

    // Raise is for per-row vetting at query time:
    let bad_row = dirty.row_owned(1).expect("row exists");
    match guard.handle_row(&bad_row, ErrorScheme::Raise) {
        RowOutcome::Raised(violations) => {
            println!("\nraise scheme surfaced {} violation(s), row rejected", violations.len())
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
}
