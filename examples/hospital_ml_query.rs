//! The paper's running example (Fig. 1 / Examples 1.1–1.2): Bob's hospital
//! analytics query over an ML model predicting dyspnoea, protected by
//! Guardrail.
//!
//! ```sh
//! cargo run --release --example hospital_ml_query
//! ```

use guardrail::datasets::{cancer_network, inject_errors, InjectConfig};
use guardrail::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // The hospital database: rows sampled from the CANCER Bayesian network
    // (the source of the paper's Lung Cancer dataset), with a synthetic
    // floor assignment per patient.
    let sem = cancer_network(0.997);
    let mut rng = StdRng::seed_from_u64(2025);
    let base = sem.sample(6000, &mut rng);
    let with_floor = add_floor_column(&base);

    let split = SplitSpec::new(0.6, 7);
    let (train, test_clean) = split.split(&with_floor);

    // Bob buys a proprietary ML model that predicts dyspnoea from the
    // *observable* attributes — the latent cancer diagnosis is not a model
    // input (at serving time it would not be known), so the X-ray result is
    // the model's key signal.
    let model_view = ["floor", "pollution", "smoker", "xray", "dysp"];
    let model_train = train.select(&model_view).expect("columns exist");
    let dysp_col = model_train.schema().index_of("dysp").expect("dysp column");
    let model = Ensemble::fit(&model_train, dysp_col);
    // …and Guardrail synthesizes integrity constraints from the full
    // hospital records (which do include the diagnosis).
    let guard = Guardrail::builder().fit(&train).expect("schema is supported");
    println!("synthesized constraints:\n{}", guard.program());

    // Noisy rows creep into the serving data: erroneous X-ray results
    // (the exact corruption Example 1.1 worries about).
    let xray_col = with_floor.schema().index_of("xray").expect("xray column");
    let mut test_dirty = test_clean.clone();
    let report = inject_errors(
        &mut test_dirty,
        &InjectConfig {
            count: Some(150),
            columns: Some(vec![xray_col]),
            ..InjectConfig::default()
        },
    );
    println!("\ninjected {} erroneous X-ray results into the serving split", report.errors.len());

    // Bob's ML-integrated SQL query: average predicted dyspnoea likelihood
    // per hospital floor.
    let sql = "SELECT floor, \
                      AVG(CASE WHEN PREDICT(dysp_model) = 'yes' THEN 1 ELSE 0 END) AS dysp_rate \
               FROM hospital GROUP BY floor ORDER BY floor";

    let run = |data: &Table, guarded: bool| -> Table {
        let mut catalog = Catalog::new();
        catalog.add_table("hospital", data.clone());
        catalog.add_model("dysp_model", Arc::new(model.clone()));
        let exec = Executor::new(&catalog);
        let exec = if guarded { exec.with_guardrail(&guard, ErrorScheme::Rectify) } else { exec };
        exec.run(sql).expect("query runs").table
    };

    let truth = run(&test_clean, false);
    let vanilla = run(&test_dirty, false);
    let guarded = run(&test_dirty, true);

    println!("\n{:<8}{:>14}{:>14}{:>14}", "floor", "ground truth", "vanilla", "guardrail");
    let mut err_vanilla = 0.0;
    let mut err_guarded = 0.0;
    for i in 0..truth.num_rows() {
        let f = truth.get(i, 0).unwrap();
        let t = truth.get(i, 1).unwrap().as_f64().unwrap_or(0.0);
        let v = lookup(&vanilla, &f).unwrap_or(f64::NAN);
        let g = lookup(&guarded, &f).unwrap_or(f64::NAN);
        err_vanilla += (v - t).abs();
        err_guarded += (g - t).abs();
        println!("{:<8}{:>14.4}{:>14.4}{:>14.4}", f.to_string(), t, v, g);
    }
    println!(
        "\ntotal |error| — vanilla: {err_vanilla:.4}, with Guardrail: {err_guarded:.4} \
         ({:.0}% reduction)",
        if err_vanilla > 0.0 { (1.0 - err_guarded / err_vanilla) * 100.0 } else { 0.0 }
    );
}

fn add_floor_column(base: &Table) -> Table {
    let mut named: Vec<(String, guardrail::table::Column)> = Vec::new();
    let mut floor = guardrail::table::Column::new();
    for i in 0..base.num_rows() {
        floor.push(Value::from(format!("F{}", i % 4 + 1)));
    }
    named.push(("floor".into(), floor));
    for (f, col) in base.schema().fields().iter().zip(base.columns()) {
        named.push((f.name().to_string(), col.clone()));
    }
    Table::from_columns(named).expect("columns aligned")
}

fn lookup(table: &Table, key: &Value) -> Option<f64> {
    (0..table.num_rows())
        .find(|&i| table.get(i, 0).as_ref() == Some(key))
        .and_then(|i| table.get(i, 1))
        .and_then(|v| v.as_f64())
}
