//! The `guardrail` command-line tool.
//!
//! ```text
//! guardrail synth <clean.csv> [--store <dir>] [--epsilon E] [--budget-ms MS]
//!                  [--max-work N] [--threads T] [--output constraints.gr]
//!                  [--report] [--trace-out trace.json]
//! guardrail check <data.csv> [--store <dir>] --constraints <constraints.gr>
//!                  [--report] [--trace-out trace.json]
//! guardrail repair <data.csv> --constraints <constraints.gr>
//!                  [--scheme coerce|rectify] [--output fixed.csv]
//! guardrail ingest <data.csv> --store <dir> [--batch-rows N] [--report]
//! guardrail structure <data.csv>
//! ```
//!
//! Constraints are stored in the DSL's text syntax, so the files produced by
//! `synth` are human-readable and hand-editable, and anything parseable by
//! `guardrail_dsl::parse_program` can be fed back to `check` / `repair`.
//!
//! `ingest` streams a CSV into a persistent store (columnar segment + WAL)
//! in bounded batches; `synth`/`check` then run off that store via
//! `--store <dir>` instead of a CSV path, so large tables are read without
//! a whole-file load and appends survive restarts.
//!
//! `--report` prints the pipeline's stage-tree report (wall times, work
//! units, cache hit ratios, degradations) to stderr. `--trace-out FILE`
//! records the run's span/counter events and writes a Chrome-trace JSON
//! file that loads directly into Perfetto / `chrome://tracing`.

use guardrail::obs;
use guardrail::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("repair") => cmd_repair(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("structure") => cmd_structure(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
guardrail — integrity constraint synthesis from noisy data

USAGE:
  guardrail synth <clean.csv> [--store <dir>] [--epsilon E] [--budget-ms MS] [--max-work N] [--threads T] [--output constraints.gr] [--report] [--trace-out trace.json]
  guardrail check <data.csv> [--store <dir>] --constraints <constraints.gr> [--report] [--trace-out trace.json]
  guardrail repair <data.csv> --constraints <constraints.gr> [--scheme coerce|rectify] [--output fixed.csv]
  guardrail ingest <data.csv> --store <dir> [--batch-rows N] [--report]
  guardrail structure <data.csv>
  guardrail serve --listen <addr> [--tenant-inflight N] [--global-inflight N] [--store-root DIR] [--debug-ops]

`synth` is anytime: --budget-ms caps wall-clock time and --max-work caps work
units; on exhaustion it emits the best program found so far and reports which
pipeline stage was cut short. --threads pins the worker count (default: one
per hardware thread; results are identical either way).
`check` exits 0 when the data is violation-free and 1 when violations were found.
`ingest` streams a CSV into a persistent store (columnar segment + WAL);
`synth`/`check` accept --store <dir> in place of the CSV path to run off a
store ingested earlier. `serve` with --store-root enables the append /
detect_batch verbs against stores under that root.
`--report` prints the pipeline stage tree (wall times, cache ratios,
degradations) to stderr; `--trace-out FILE` writes a Chrome-trace JSON of the
run, openable in Perfetto.
`serve` starts the multi-tenant serving daemon (newline-delimited JSON over
TCP: fit/detect/rectify/vet/status/shutdown); the standalone
`guardrail-server` binary exposes the full tunable set. See DESIGN.md §4.";

/// (positional args, `--flag value` values, bare `--switch` states).
type ParsedArgs = (Vec<String>, Vec<Option<String>>, Vec<bool>);

/// Pulls `--flag value` pairs and bare `--switch` toggles out of an argument
/// list; returns (positional, values, switch states).
fn parse_flags(args: &[String], flags: &[&str], switches: &[&str]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut values: Vec<Option<String>> = vec![None; flags.len()];
    let mut toggles = vec![false; switches.len()];
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(idx) = flags.iter().position(|f| f == arg) {
            let v = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
            values[idx] = Some(v.clone());
        } else if let Some(idx) = switches.iter().position(|s| s == arg) {
            toggles[idx] = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown flag {arg:?}"));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, values, toggles))
}

/// Arms the global ring recorder when `--trace-out` was given; returns the
/// ring to drain after the traced work completes.
fn arm_tracing(trace_out: &Option<String>) -> Option<Arc<obs::RingRecorder>> {
    trace_out.as_ref().map(|_| {
        let ring = Arc::new(obs::RingRecorder::with_capacity(1 << 20));
        obs::install(ring.clone());
        ring
    })
}

/// Drains the ring recorder and writes the Chrome-trace JSON next to
/// whatever path `--trace-out` named.
fn write_trace(path: &str, ring: &obs::RingRecorder) -> Result<(), String> {
    obs::uninstall();
    let events = ring.take();
    let trace = obs::chrome_trace(&events);
    std::fs::write(path, trace).map_err(|e| format!("writing {path:?}: {e}"))?;
    eprintln!("trace ({} events) written to {path}", events.len());
    Ok(())
}

fn load_table(path: &str) -> Result<Table, String> {
    Table::from_csv_path(path).map_err(|e| format!("reading {path:?}: {e}"))
}

fn load_constraints(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    parse_program(&text).map_err(|e| format!("parsing {path:?}: {e}"))
}

/// A command's data input: an in-memory CSV load or a persistent store.
enum Input {
    Mem(Table),
    Store(TableStore),
}

impl Input {
    /// Resolves the positional-CSV / `--store` choice: exactly one of the
    /// two must be given. Opening a store replays its WAL, so the view is
    /// current as of the last durable append.
    fn load(pos: &[String], store: &Option<String>, cmd: &str) -> Result<Input, String> {
        match (pos, store) {
            ([path], None) => Ok(Input::Mem(load_table(path)?)),
            ([], Some(dir)) => {
                let store =
                    TableStore::open(dir).map_err(|e| format!("opening store {dir:?}: {e}"))?;
                Ok(Input::Store(store))
            }
            _ => Err(format!("{cmd} needs exactly one CSV path or --store <dir>")),
        }
    }

    fn source(&self) -> &dyn TableSource {
        match self {
            Input::Mem(t) => t,
            Input::Store(s) => s,
        }
    }
}

fn cmd_synth(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags, switches) = parse_flags(
        args,
        &[
            "--epsilon",
            "--output",
            "--budget-ms",
            "--max-work",
            "--threads",
            "--trace-out",
            "--store",
        ],
        &["--report"],
    )?;
    let input = Input::load(&pos, &flags[6], "synth")?;
    let mut config = GuardrailConfig::default();
    if let Some(e) = &flags[0] {
        let eps: f64 = e.parse().map_err(|_| "bad --epsilon")?;
        config = config.with_epsilon(eps);
    }
    let deadline = flags[2]
        .as_ref()
        .map(|v| v.parse::<u64>().map_err(|_| "bad --budget-ms"))
        .transpose()?
        .map(std::time::Duration::from_millis);
    let work_cap =
        flags[3].as_ref().map(|v| v.parse::<u64>().map_err(|_| "bad --max-work")).transpose()?;
    let budget = match (deadline, work_cap) {
        (Some(d), Some(w)) => Budget::with_deadline_and_work_cap(d, w),
        (Some(d), None) => Budget::with_deadline(d),
        (None, Some(w)) => Budget::with_work_cap(w),
        (None, None) => Budget::unlimited(),
    };
    let mut builder = Guardrail::builder().config(config).budget(budget);
    if let Some(t) = &flags[4] {
        let threads: usize = t.parse().map_err(|_| "bad --threads")?;
        builder = builder.parallelism(Parallelism::threads(threads));
    }
    let ring = arm_tracing(&flags[5]);
    let guard = builder.fit(input.source()).map_err(|e| e.to_string())?;
    if let (Some(path), Some(ring)) = (&flags[5], &ring) {
        write_trace(path, ring)?;
    }
    let text = guard.program().to_string();
    eprintln!(
        "synthesized {} statement(s) / {} branch(es), coverage {:.3}, MEC size {}",
        guard.program().statements.len(),
        guard.program().num_branches(),
        guard.coverage(),
        guard.outcome().mec_size,
    );
    let oracle = guard.outcome().oracle_cache;
    let stmt = guard.outcome().cache_stats;
    eprintln!(
        "caches: CI stats {} hit(s) / {} miss(es), statements {} hit(s) / {} miss(es)",
        oracle.result_hits, oracle.result_misses, stmt.hits, stmt.misses,
    );
    // Degradations come out of the fit's structured report; the stderr
    // wording is load-bearing for scripts and stays as-is.
    if !guard.report().is_complete() {
        eprintln!("budget exhausted — emitting best program found so far:");
        eprintln!("{}", guard.degradation());
    }
    if switches[0] {
        eprint!("{}", guard.report());
    }
    match &flags[1] {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("constraints written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags, switches) =
        parse_flags(args, &["--constraints", "--trace-out", "--store"], &["--report"])?;
    let constraints = flags[0].as_ref().ok_or("check needs --constraints <file>")?;
    let input = Input::load(&pos, &flags[2], "check")?;
    let guard = Guardrail::from_program(load_constraints(constraints)?);
    let ring = arm_tracing(&flags[1]);
    let detect_clock = std::time::Instant::now();
    let report = guard.detect(input.source());
    let detect_ns = detect_clock.elapsed().as_nanos() as u64;
    if let (Some(path), Some(ring)) = (&flags[1], &ring) {
        write_trace(path, ring)?;
    }
    if switches[0] {
        // Serving-side stage report: detection timing plus how many
        // statements the decision-table engine could not serve vectorized.
        let legacy = guard
            .program()
            .compile_for(input.source())
            .map(|c| c.legacy_statement_count())
            .unwrap_or_default();
        let stage = StageReport::new("check_table")
            .wall_ns(detect_ns)
            .metric("rows", report.rows_checked)
            .metric("violations", report.violations.len())
            .metric("engine_fallback_statements", legacy);
        eprint!("{}", PipelineReport::new().stage(stage));
    }
    for v in &report.violations {
        println!(
            "row {}: {} = {:?} violates statement {} (expected {:?})",
            v.row,
            v.attribute,
            v.actual.to_string(),
            v.statement,
            v.expected.to_string()
        );
    }
    eprintln!(
        "{} violation(s) on {} of {} rows",
        report.violations.len(),
        report.dirty_rows().len(),
        report.rows_checked
    );
    Ok(if report.is_clean() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn cmd_repair(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags, _) = parse_flags(args, &["--constraints", "--scheme", "--output"], &[])?;
    let [data_path] = pos.as_slice() else {
        return Err("repair needs exactly one CSV path".into());
    };
    let constraints = flags[0].as_ref().ok_or("repair needs --constraints <file>")?;
    let scheme = match flags[1].as_deref() {
        None | Some("rectify") => ErrorScheme::Rectify,
        Some("coerce") => ErrorScheme::Coerce,
        Some(other) => return Err(format!("unknown scheme {other:?} (coerce|rectify)")),
    };
    let table = load_table(data_path)?;
    let guard = Guardrail::from_program(load_constraints(constraints)?);
    let (fixed, report) = guard.apply(&table, scheme);
    eprintln!(
        "{} violation(s); {} cell(s) changed by {:?}",
        report.violations.len(),
        report.cells_changed,
        scheme
    );
    match &flags[2] {
        Some(path) => {
            fixed.write_csv_path(path).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!("repaired table written to {path}");
        }
        None => print!("{}", fixed.to_csv_string()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_ingest(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags, switches) = parse_flags(args, &["--store", "--batch-rows"], &["--report"])?;
    let [data_path] = pos.as_slice() else {
        return Err("ingest needs exactly one CSV path".into());
    };
    let store_dir = flags[0].as_ref().ok_or("ingest needs --store <dir>")?;
    let batch_rows = match &flags[1] {
        Some(v) => v.parse::<usize>().map_err(|_| "bad --batch-rows")?,
        None => 8192,
    };
    let clock = std::time::Instant::now();
    let report = guardrail::datasets::ingest_csv(data_path, store_dir, batch_rows)
        .map_err(|e| format!("ingesting {data_path:?} into {store_dir:?}: {e}"))?;
    let ingest_ns = clock.elapsed().as_nanos() as u64;
    eprintln!(
        "{} {store_dir}: {} row(s) in {} batch(es); store now {} row(s), {} WAL batch(es)",
        if report.created { "created" } else { "appended to" },
        report.rows_ingested,
        report.batches,
        report.rows_total,
        report.wal_batches,
    );
    if switches[0] {
        let stage = StageReport::new("ingest")
            .wall_ns(ingest_ns)
            .metric("rows_ingested", report.rows_ingested)
            .metric("batches", report.batches)
            .metric("rows_total", report.rows_total)
            .metric("wal_batches", report.wal_batches);
        eprint!("{}", PipelineReport::new().stage(stage));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let (pos, flags, switches) = parse_flags(
        args,
        &["--listen", "--tenant-inflight", "--global-inflight", "--store-root"],
        &["--debug-ops"],
    )?;
    if !pos.is_empty() {
        return Err(format!("unexpected argument {:?}", pos[0]));
    }
    let mut config = guardrail::server::ServerConfig {
        addr: flags[0].clone().ok_or("serve needs --listen <addr>")?,
        debug_ops: switches[0],
        ..Default::default()
    };
    if let Some(v) = &flags[1] {
        config.tenant_inflight = v.parse().map_err(|_| "bad --tenant-inflight")?;
    }
    if let Some(v) = &flags[2] {
        config.global_inflight = v.parse().map_err(|_| "bad --global-inflight")?;
    }
    if let Some(v) = &flags[3] {
        config.store_root = Some(std::path::PathBuf::from(v));
    }
    let handle = guardrail::server::Server::spawn(config).map_err(|e| format!("bind: {e}"))?;
    eprintln!("listening on {}", handle.addr());
    while !handle.ctx().lifecycle.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining…");
    handle.shutdown();
    eprintln!("drained; bye");
    Ok(ExitCode::SUCCESS)
}

fn cmd_structure(args: &[String]) -> Result<ExitCode, String> {
    let (pos, _, _) = parse_flags(args, &[], &[])?;
    let [data_path] = pos.as_slice() else {
        return Err("structure needs exactly one CSV path".into());
    };
    let table = load_table(data_path)?;
    let cpdag = guardrail::pgm::learn_cpdag(&table, &Default::default());
    let name = |i: usize| table.schema().field(i).map(|f| f.name().to_string()).unwrap_or_default();
    println!("learned CPDAG over {} attributes:", cpdag.num_nodes());
    for (u, v) in cpdag.directed_edges() {
        println!("  {} -> {}", name(u), name(v));
    }
    for (u, v) in cpdag.undirected_edges() {
        println!("  {} -- {}", name(u), name(v));
    }
    Ok(ExitCode::SUCCESS)
}
