//! # Guardrail
//!
//! A from-scratch Rust reproduction of *"Guardrail: Automated Integrity
//! Constraint Synthesis From Noisy Data"* (SIGMOD 2025): integrity
//! constraints are synthesized as programs of a small DSL by learning the
//! statistical structure of the data (PC algorithm → Markov equivalence
//! class → program sketches → sketch filling), then used to detect and
//! rectify row-level errors — including as a runtime guardrail in front of
//! ML-integrated SQL queries.
//!
//! This crate is a facade: it re-exports every subsystem crate of the
//! workspace under one roof. See `README.md` for the architecture tour and
//! `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use guardrail::prelude::*;
//!
//! // City is determined by zip in the clean training data.
//! let csv = "zip,city\n".to_string() + &"94704,Berkeley\n97201,Portland\n".repeat(150);
//! let clean = Table::from_csv_str(&csv).unwrap();
//!
//! // Offline: synthesize integrity constraints.
//! let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
//!
//! // Online: a corrupted row arrives.
//! let dirty = Table::from_csv_str("zip,city\n94704,gibbon\n").unwrap();
//! assert_eq!(guard.detect(&dirty).dirty_rows(), vec![0]);
//! let (fixed, _) = guard.apply(&dirty, ErrorScheme::Rectify);
//! assert_eq!(fixed.get(0, 1), Some(Value::from("Berkeley")));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use guardrail_baselines as baselines;
pub use guardrail_core as core;
pub use guardrail_datasets as datasets;
pub use guardrail_dsl as dsl;
pub use guardrail_governor as governor;
pub use guardrail_graph as graph;
pub use guardrail_ml as ml;
pub use guardrail_obs as obs;
pub use guardrail_pgm as pgm;
pub use guardrail_server as server;
pub use guardrail_sqlexec as sqlexec;
pub use guardrail_stats as stats;
pub use guardrail_synth as synth;
pub use guardrail_table as table;

/// The most common imports in one place.
pub mod prelude {
    pub use guardrail_core::{
        ApplyReport, DetectionReport, ErrorScheme, Guardrail, GuardrailBuilder, GuardrailConfig,
        GuardrailError, RowOutcome,
    };
    pub use guardrail_dsl::{parse_program, CompiledProgram, Program, Violation};
    pub use guardrail_governor::{Budget, DegradationReport, Parallelism, StageStatus};
    pub use guardrail_ml::{Classifier, DecisionTree, Ensemble, NaiveBayes};
    pub use guardrail_obs::{PipelineReport, StageReport};
    pub use guardrail_sqlexec::{Catalog, Executor};
    pub use guardrail_synth::SynthesisConfig;
    pub use guardrail_table::{
        Row, Schema, SplitSpec, Table, TableBuilder, TableSource, TableStore, Value,
    };
}
