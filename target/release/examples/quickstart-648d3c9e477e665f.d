/root/repo/target/release/examples/quickstart-648d3c9e477e665f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-648d3c9e477e665f: examples/quickstart.rs

examples/quickstart.rs:
