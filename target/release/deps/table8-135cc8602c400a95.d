/root/repo/target/release/deps/table8-135cc8602c400a95.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-135cc8602c400a95: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
