/root/repo/target/release/deps/governor-69fe7cb164f39c63.d: crates/bench/benches/governor.rs

/root/repo/target/release/deps/governor-69fe7cb164f39c63: crates/bench/benches/governor.rs

crates/bench/benches/governor.rs:
