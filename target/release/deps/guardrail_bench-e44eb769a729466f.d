/root/repo/target/release/deps/guardrail_bench-e44eb769a729466f.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/release/deps/libguardrail_bench-e44eb769a729466f.rlib: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/release/deps/libguardrail_bench-e44eb769a729466f.rmeta: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
