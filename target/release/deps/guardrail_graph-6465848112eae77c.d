/root/repo/target/release/deps/guardrail_graph-6465848112eae77c.d: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

/root/repo/target/release/deps/libguardrail_graph-6465848112eae77c.rlib: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

/root/repo/target/release/deps/libguardrail_graph-6465848112eae77c.rmeta: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

crates/graph/src/lib.rs:
crates/graph/src/chickering.rs:
crates/graph/src/count.rs:
crates/graph/src/dag.rs:
crates/graph/src/dsep.rs:
crates/graph/src/enumerate.rs:
crates/graph/src/nodeset.rs:
crates/graph/src/pdag.rs:
