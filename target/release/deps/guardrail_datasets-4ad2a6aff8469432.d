/root/repo/target/release/deps/guardrail_datasets-4ad2a6aff8469432.d: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

/root/repo/target/release/deps/libguardrail_datasets-4ad2a6aff8469432.rlib: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

/root/repo/target/release/deps/libguardrail_datasets-4ad2a6aff8469432.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cancer.rs:
crates/datasets/src/chaos.rs:
crates/datasets/src/inject.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/random.rs:
crates/datasets/src/sem.rs:
