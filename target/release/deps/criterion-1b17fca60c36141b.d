/root/repo/target/release/deps/criterion-1b17fca60c36141b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1b17fca60c36141b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-1b17fca60c36141b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
