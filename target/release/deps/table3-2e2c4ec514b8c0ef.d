/root/repo/target/release/deps/table3-2e2c4ec514b8c0ef.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-2e2c4ec514b8c0ef: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
