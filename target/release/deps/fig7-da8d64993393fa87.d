/root/repo/target/release/deps/fig7-da8d64993393fa87.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-da8d64993393fa87: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
