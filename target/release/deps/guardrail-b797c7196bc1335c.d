/root/repo/target/release/deps/guardrail-b797c7196bc1335c.d: src/bin/guardrail.rs

/root/repo/target/release/deps/guardrail-b797c7196bc1335c: src/bin/guardrail.rs

src/bin/guardrail.rs:
