/root/repo/target/release/deps/guardrail_governor-6d1dcc06544a8a25.d: crates/governor/src/lib.rs

/root/repo/target/release/deps/libguardrail_governor-6d1dcc06544a8a25.rlib: crates/governor/src/lib.rs

/root/repo/target/release/deps/libguardrail_governor-6d1dcc06544a8a25.rmeta: crates/governor/src/lib.rs

crates/governor/src/lib.rs:
