/root/repo/target/release/deps/guardrail-5a594a7e30529251.d: src/lib.rs

/root/repo/target/release/deps/libguardrail-5a594a7e30529251.rlib: src/lib.rs

/root/repo/target/release/deps/libguardrail-5a594a7e30529251.rmeta: src/lib.rs

src/lib.rs:
