/root/repo/target/release/deps/guardrail_stats-8e6a1b9f1490466f.d: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

/root/repo/target/release/deps/libguardrail_stats-8e6a1b9f1490466f.rlib: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

/root/repo/target/release/deps/libguardrail_stats-8e6a1b9f1490466f.rmeta: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

crates/stats/src/lib.rs:
crates/stats/src/chi2.rs:
crates/stats/src/contingency.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/independence.rs:
crates/stats/src/metrics.rs:
crates/stats/src/rank.rs:
crates/stats/src/special.rs:
