/root/repo/target/release/deps/fig6-622f24b2e151bc7f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-622f24b2e151bc7f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
