/root/repo/target/release/deps/ablation_structure-c02067c4f361e658.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/release/deps/ablation_structure-c02067c4f361e658: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
