/root/repo/target/release/deps/table7-dbcfec8529484cee.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-dbcfec8529484cee: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
