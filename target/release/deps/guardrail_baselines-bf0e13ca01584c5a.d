/root/repo/target/release/deps/guardrail_baselines-bf0e13ca01584c5a.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/release/deps/libguardrail_baselines-bf0e13ca01584c5a.rlib: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/release/deps/libguardrail_baselines-bf0e13ca01584c5a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
