/root/repo/target/release/deps/table4-383355ff81341424.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-383355ff81341424: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
