/root/repo/target/release/deps/guardrail_core-432e973094a7b782.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/release/deps/libguardrail_core-432e973094a7b782.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/release/deps/libguardrail_core-432e973094a7b782.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/guardrail.rs:
crates/core/src/numeric.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
