/root/repo/target/release/deps/guardrail_dsl-f03e07c8c97ad5ed.d: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/release/deps/libguardrail_dsl-f03e07c8c97ad5ed.rlib: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/release/deps/libguardrail_dsl-f03e07c8c97ad5ed.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ast.rs:
crates/dsl/src/error.rs:
crates/dsl/src/interp.rs:
crates/dsl/src/parser.rs:
crates/dsl/src/semantics.rs:
