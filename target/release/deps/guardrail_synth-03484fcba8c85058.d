/root/repo/target/release/deps/guardrail_synth-03484fcba8c85058.d: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

/root/repo/target/release/deps/libguardrail_synth-03484fcba8c85058.rlib: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

/root/repo/target/release/deps/libguardrail_synth-03484fcba8c85058.rmeta: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

crates/synth/src/lib.rs:
crates/synth/src/cache.rs:
crates/synth/src/config.rs:
crates/synth/src/fill.rs:
crates/synth/src/mec.rs:
crates/synth/src/nontrivial.rs:
crates/synth/src/optsmt.rs:
crates/synth/src/sketch.rs:
