/root/repo/target/release/deps/table6-fafddc5895123e68.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-fafddc5895123e68: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
