/root/repo/target/release/deps/guardrail_ml-bed17941d1881564.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libguardrail_ml-bed17941d1881564.rlib: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libguardrail_ml-bed17941d1881564.rmeta: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
