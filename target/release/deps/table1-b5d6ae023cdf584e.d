/root/repo/target/release/deps/table1-b5d6ae023cdf584e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-b5d6ae023cdf584e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
