/root/repo/target/release/deps/guardrail_stats-6fa49bae73b8d72b.d: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

/root/repo/target/release/deps/libguardrail_stats-6fa49bae73b8d72b.rlib: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

/root/repo/target/release/deps/libguardrail_stats-6fa49bae73b8d72b.rmeta: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

crates/stats/src/lib.rs:
crates/stats/src/chi2.rs:
crates/stats/src/contingency.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/independence.rs:
crates/stats/src/metrics.rs:
crates/stats/src/rank.rs:
crates/stats/src/special.rs:
