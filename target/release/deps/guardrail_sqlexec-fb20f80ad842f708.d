/root/repo/target/release/deps/guardrail_sqlexec-fb20f80ad842f708.d: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/release/deps/libguardrail_sqlexec-fb20f80ad842f708.rlib: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/release/deps/libguardrail_sqlexec-fb20f80ad842f708.rmeta: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

crates/sqlexec/src/lib.rs:
crates/sqlexec/src/ast.rs:
crates/sqlexec/src/catalog.rs:
crates/sqlexec/src/error.rs:
crates/sqlexec/src/exec.rs:
crates/sqlexec/src/optimizer.rs:
crates/sqlexec/src/parser.rs:
crates/sqlexec/src/token.rs:
