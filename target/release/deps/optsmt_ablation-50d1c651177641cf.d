/root/repo/target/release/deps/optsmt_ablation-50d1c651177641cf.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/release/deps/optsmt_ablation-50d1c651177641cf: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
