/root/repo/target/release/deps/structure_recovery-cc4914b8f9ce9eba.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/release/deps/structure_recovery-cc4914b8f9ce9eba: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
