/root/repo/target/release/deps/table8-07d74b5ffdd26523.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-07d74b5ffdd26523: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
