/root/repo/target/release/deps/fig7-45fc5651d930a427.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-45fc5651d930a427: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
