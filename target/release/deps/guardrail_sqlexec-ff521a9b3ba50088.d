/root/repo/target/release/deps/guardrail_sqlexec-ff521a9b3ba50088.d: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/release/deps/libguardrail_sqlexec-ff521a9b3ba50088.rlib: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/release/deps/libguardrail_sqlexec-ff521a9b3ba50088.rmeta: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

crates/sqlexec/src/lib.rs:
crates/sqlexec/src/ast.rs:
crates/sqlexec/src/catalog.rs:
crates/sqlexec/src/error.rs:
crates/sqlexec/src/exec.rs:
crates/sqlexec/src/optimizer.rs:
crates/sqlexec/src/parser.rs:
crates/sqlexec/src/token.rs:
