/root/repo/target/release/deps/guardrail_dsl-5c2b4406158ad59d.d: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/release/deps/libguardrail_dsl-5c2b4406158ad59d.rlib: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/release/deps/libguardrail_dsl-5c2b4406158ad59d.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ast.rs:
crates/dsl/src/error.rs:
crates/dsl/src/interp.rs:
crates/dsl/src/parser.rs:
crates/dsl/src/semantics.rs:
