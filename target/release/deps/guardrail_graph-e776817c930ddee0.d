/root/repo/target/release/deps/guardrail_graph-e776817c930ddee0.d: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

/root/repo/target/release/deps/libguardrail_graph-e776817c930ddee0.rlib: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

/root/repo/target/release/deps/libguardrail_graph-e776817c930ddee0.rmeta: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

crates/graph/src/lib.rs:
crates/graph/src/chickering.rs:
crates/graph/src/count.rs:
crates/graph/src/dag.rs:
crates/graph/src/dsep.rs:
crates/graph/src/enumerate.rs:
crates/graph/src/nodeset.rs:
crates/graph/src/pdag.rs:
