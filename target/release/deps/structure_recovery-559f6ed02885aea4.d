/root/repo/target/release/deps/structure_recovery-559f6ed02885aea4.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/release/deps/structure_recovery-559f6ed02885aea4: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
