/root/repo/target/release/deps/guardrail_pgm-b671087098864efb.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/release/deps/libguardrail_pgm-b671087098864efb.rlib: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/release/deps/libguardrail_pgm-b671087098864efb.rmeta: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
