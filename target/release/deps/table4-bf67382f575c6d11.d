/root/repo/target/release/deps/table4-bf67382f575c6d11.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-bf67382f575c6d11: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
