/root/repo/target/release/deps/table5-d7d191614ab5fde7.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d7d191614ab5fde7: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
