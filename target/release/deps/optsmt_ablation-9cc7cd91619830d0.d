/root/repo/target/release/deps/optsmt_ablation-9cc7cd91619830d0.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/release/deps/optsmt_ablation-9cc7cd91619830d0: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
