/root/repo/target/release/deps/guardrail_baselines-6a33675c06c00132.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/release/deps/libguardrail_baselines-6a33675c06c00132.rlib: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/release/deps/libguardrail_baselines-6a33675c06c00132.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
