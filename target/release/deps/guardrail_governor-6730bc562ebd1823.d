/root/repo/target/release/deps/guardrail_governor-6730bc562ebd1823.d: crates/governor/src/lib.rs

/root/repo/target/release/deps/libguardrail_governor-6730bc562ebd1823.rlib: crates/governor/src/lib.rs

/root/repo/target/release/deps/libguardrail_governor-6730bc562ebd1823.rmeta: crates/governor/src/lib.rs

crates/governor/src/lib.rs:
