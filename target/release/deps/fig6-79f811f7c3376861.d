/root/repo/target/release/deps/fig6-79f811f7c3376861.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-79f811f7c3376861: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
