/root/repo/target/release/deps/governor-720a94271d33ae73.d: crates/bench/benches/governor.rs

/root/repo/target/release/deps/governor-720a94271d33ae73: crates/bench/benches/governor.rs

crates/bench/benches/governor.rs:
