/root/repo/target/release/deps/guardrail_ml-8f18f413ee78c7fe.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libguardrail_ml-8f18f413ee78c7fe.rlib: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libguardrail_ml-8f18f413ee78c7fe.rmeta: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
