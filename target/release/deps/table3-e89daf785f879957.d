/root/repo/target/release/deps/table3-e89daf785f879957.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-e89daf785f879957: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
