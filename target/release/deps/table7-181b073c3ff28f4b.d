/root/repo/target/release/deps/table7-181b073c3ff28f4b.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-181b073c3ff28f4b: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
