/root/repo/target/release/deps/guardrail_table-8dad5f8fb8dc5ff4.d: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/release/deps/libguardrail_table-8dad5f8fb8dc5ff4.rlib: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/release/deps/libguardrail_table-8dad5f8fb8dc5ff4.rmeta: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

crates/table/src/lib.rs:
crates/table/src/column.rs:
crates/table/src/csv.rs:
crates/table/src/dictionary.rs:
crates/table/src/error.rs:
crates/table/src/row.rs:
crates/table/src/schema.rs:
crates/table/src/split.rs:
crates/table/src/table.rs:
crates/table/src/value.rs:
