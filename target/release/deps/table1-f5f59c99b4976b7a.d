/root/repo/target/release/deps/table1-f5f59c99b4976b7a.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f5f59c99b4976b7a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
