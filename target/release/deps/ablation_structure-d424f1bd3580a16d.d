/root/repo/target/release/deps/ablation_structure-d424f1bd3580a16d.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/release/deps/ablation_structure-d424f1bd3580a16d: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
