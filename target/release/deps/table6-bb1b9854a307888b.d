/root/repo/target/release/deps/table6-bb1b9854a307888b.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-bb1b9854a307888b: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
