/root/repo/target/release/deps/guardrail_bench-c22f1e26b5e9a678.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/release/deps/libguardrail_bench-c22f1e26b5e9a678.rlib: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/release/deps/libguardrail_bench-c22f1e26b5e9a678.rmeta: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
