/root/repo/target/release/deps/proptest-d7541067a3787859.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7541067a3787859.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d7541067a3787859.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
