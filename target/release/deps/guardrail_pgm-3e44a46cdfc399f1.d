/root/repo/target/release/deps/guardrail_pgm-3e44a46cdfc399f1.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/release/deps/libguardrail_pgm-3e44a46cdfc399f1.rlib: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/release/deps/libguardrail_pgm-3e44a46cdfc399f1.rmeta: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
