/root/repo/target/release/deps/table5-d586bedf336afbd3.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d586bedf336afbd3: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
