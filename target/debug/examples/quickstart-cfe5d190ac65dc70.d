/root/repo/target/debug/examples/quickstart-cfe5d190ac65dc70.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cfe5d190ac65dc70: examples/quickstart.rs

examples/quickstart.rs:
