/root/repo/target/debug/examples/baseline_comparison-6874c2f829625405.d: examples/baseline_comparison.rs

/root/repo/target/debug/examples/baseline_comparison-6874c2f829625405: examples/baseline_comparison.rs

examples/baseline_comparison.rs:
