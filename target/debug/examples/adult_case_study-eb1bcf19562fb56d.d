/root/repo/target/debug/examples/adult_case_study-eb1bcf19562fb56d.d: examples/adult_case_study.rs

/root/repo/target/debug/examples/adult_case_study-eb1bcf19562fb56d: examples/adult_case_study.rs

examples/adult_case_study.rs:
