/root/repo/target/debug/examples/hospital_ml_query-2fa9e1ab32863880.d: examples/hospital_ml_query.rs

/root/repo/target/debug/examples/hospital_ml_query-2fa9e1ab32863880: examples/hospital_ml_query.rs

examples/hospital_ml_query.rs:
