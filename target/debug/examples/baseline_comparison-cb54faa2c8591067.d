/root/repo/target/debug/examples/baseline_comparison-cb54faa2c8591067.d: examples/baseline_comparison.rs

/root/repo/target/debug/examples/baseline_comparison-cb54faa2c8591067: examples/baseline_comparison.rs

examples/baseline_comparison.rs:
