/root/repo/target/debug/examples/hospital_ml_query-dd122b06b6baebc2.d: examples/hospital_ml_query.rs

/root/repo/target/debug/examples/hospital_ml_query-dd122b06b6baebc2: examples/hospital_ml_query.rs

examples/hospital_ml_query.rs:
