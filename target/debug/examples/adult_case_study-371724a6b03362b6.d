/root/repo/target/debug/examples/adult_case_study-371724a6b03362b6.d: examples/adult_case_study.rs

/root/repo/target/debug/examples/adult_case_study-371724a6b03362b6: examples/adult_case_study.rs

examples/adult_case_study.rs:
