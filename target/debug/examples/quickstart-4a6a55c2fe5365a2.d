/root/repo/target/debug/examples/quickstart-4a6a55c2fe5365a2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4a6a55c2fe5365a2: examples/quickstart.rs

examples/quickstart.rs:
