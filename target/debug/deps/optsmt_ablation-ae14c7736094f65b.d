/root/repo/target/debug/deps/optsmt_ablation-ae14c7736094f65b.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/debug/deps/optsmt_ablation-ae14c7736094f65b: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
