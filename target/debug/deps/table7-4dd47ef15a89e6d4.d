/root/repo/target/debug/deps/table7-4dd47ef15a89e6d4.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/libtable7-4dd47ef15a89e6d4.rmeta: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
