/root/repo/target/debug/deps/sql_pipeline-02f2a1d3e60aec60.d: tests/sql_pipeline.rs

/root/repo/target/debug/deps/sql_pipeline-02f2a1d3e60aec60: tests/sql_pipeline.rs

tests/sql_pipeline.rs:
