/root/repo/target/debug/deps/guardrail_sqlexec-c8935a4d6e76b531.d: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_sqlexec-c8935a4d6e76b531.rmeta: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs Cargo.toml

crates/sqlexec/src/lib.rs:
crates/sqlexec/src/ast.rs:
crates/sqlexec/src/catalog.rs:
crates/sqlexec/src/error.rs:
crates/sqlexec/src/exec.rs:
crates/sqlexec/src/optimizer.rs:
crates/sqlexec/src/parser.rs:
crates/sqlexec/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
