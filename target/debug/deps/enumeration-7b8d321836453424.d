/root/repo/target/debug/deps/enumeration-7b8d321836453424.d: crates/bench/benches/enumeration.rs

/root/repo/target/debug/deps/enumeration-7b8d321836453424: crates/bench/benches/enumeration.rs

crates/bench/benches/enumeration.rs:
