/root/repo/target/debug/deps/ablation_structure-4a6894b23328c042.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/debug/deps/ablation_structure-4a6894b23328c042: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
