/root/repo/target/debug/deps/table3-5a414e6bb66b918c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-5a414e6bb66b918c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
