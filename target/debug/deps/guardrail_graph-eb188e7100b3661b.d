/root/repo/target/debug/deps/guardrail_graph-eb188e7100b3661b.d: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_graph-eb188e7100b3661b.rmeta: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/chickering.rs:
crates/graph/src/count.rs:
crates/graph/src/dag.rs:
crates/graph/src/dsep.rs:
crates/graph/src/enumerate.rs:
crates/graph/src/nodeset.rs:
crates/graph/src/pdag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
