/root/repo/target/debug/deps/optsmt_ablation-3ba4028dde057ebb.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/debug/deps/optsmt_ablation-3ba4028dde057ebb: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
