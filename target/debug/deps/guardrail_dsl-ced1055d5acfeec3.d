/root/repo/target/debug/deps/guardrail_dsl-ced1055d5acfeec3.d: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_dsl-ced1055d5acfeec3.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs Cargo.toml

crates/dsl/src/lib.rs:
crates/dsl/src/ast.rs:
crates/dsl/src/error.rs:
crates/dsl/src/interp.rs:
crates/dsl/src/parser.rs:
crates/dsl/src/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
