/root/repo/target/debug/deps/table1-4abdda1968338f95.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4abdda1968338f95: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
