/root/repo/target/debug/deps/table7-6c7db99c72a5cf08.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-6c7db99c72a5cf08: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
