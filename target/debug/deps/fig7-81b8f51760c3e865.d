/root/repo/target/debug/deps/fig7-81b8f51760c3e865.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-81b8f51760c3e865.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
