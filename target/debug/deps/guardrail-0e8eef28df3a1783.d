/root/repo/target/debug/deps/guardrail-0e8eef28df3a1783.d: src/bin/guardrail.rs

/root/repo/target/debug/deps/guardrail-0e8eef28df3a1783: src/bin/guardrail.rs

src/bin/guardrail.rs:
