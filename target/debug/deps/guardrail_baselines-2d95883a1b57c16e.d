/root/repo/target/debug/deps/guardrail_baselines-2d95883a1b57c16e.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/debug/deps/libguardrail_baselines-2d95883a1b57c16e.rlib: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/debug/deps/libguardrail_baselines-2d95883a1b57c16e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
