/root/repo/target/debug/deps/guardrail_core-5c88d4d04a91beea.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/libguardrail_core-5c88d4d04a91beea.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/libguardrail_core-5c88d4d04a91beea.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/guardrail.rs:
crates/core/src/numeric.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
