/root/repo/target/debug/deps/guardrail_ml-d4cba3e32d392ba2.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/guardrail_ml-d4cba3e32d392ba2: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
