/root/repo/target/debug/deps/guardrail_stats-51725b731de326bf.d: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

/root/repo/target/debug/deps/libguardrail_stats-51725b731de326bf.rmeta: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs

crates/stats/src/lib.rs:
crates/stats/src/chi2.rs:
crates/stats/src/contingency.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/independence.rs:
crates/stats/src/metrics.rs:
crates/stats/src/rank.rs:
crates/stats/src/special.rs:
