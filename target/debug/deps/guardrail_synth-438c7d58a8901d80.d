/root/repo/target/debug/deps/guardrail_synth-438c7d58a8901d80.d: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

/root/repo/target/debug/deps/guardrail_synth-438c7d58a8901d80: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

crates/synth/src/lib.rs:
crates/synth/src/cache.rs:
crates/synth/src/config.rs:
crates/synth/src/fill.rs:
crates/synth/src/mec.rs:
crates/synth/src/nontrivial.rs:
crates/synth/src/optsmt.rs:
crates/synth/src/sketch.rs:
