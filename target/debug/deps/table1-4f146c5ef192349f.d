/root/repo/target/debug/deps/table1-4f146c5ef192349f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4f146c5ef192349f.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
