/root/repo/target/debug/deps/guardrail_governor-b658285d9bfcc017.d: crates/governor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_governor-b658285d9bfcc017.rmeta: crates/governor/src/lib.rs Cargo.toml

crates/governor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
