/root/repo/target/debug/deps/fig7-4bdc550e52a92da9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-4bdc550e52a92da9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
