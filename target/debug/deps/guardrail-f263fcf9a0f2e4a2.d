/root/repo/target/debug/deps/guardrail-f263fcf9a0f2e4a2.d: src/bin/guardrail.rs

/root/repo/target/debug/deps/guardrail-f263fcf9a0f2e4a2: src/bin/guardrail.rs

src/bin/guardrail.rs:
