/root/repo/target/debug/deps/baselines_crosscheck-4fdb65d9927d94c5.d: tests/baselines_crosscheck.rs

/root/repo/target/debug/deps/baselines_crosscheck-4fdb65d9927d94c5: tests/baselines_crosscheck.rs

tests/baselines_crosscheck.rs:
