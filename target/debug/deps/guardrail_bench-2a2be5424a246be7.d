/root/repo/target/debug/deps/guardrail_bench-2a2be5424a246be7.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/guardrail_bench-2a2be5424a246be7: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
