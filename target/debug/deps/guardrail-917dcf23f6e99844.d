/root/repo/target/debug/deps/guardrail-917dcf23f6e99844.d: src/lib.rs

/root/repo/target/debug/deps/guardrail-917dcf23f6e99844: src/lib.rs

src/lib.rs:
