/root/repo/target/debug/deps/guardrail_baselines-c59de257e4ea68dd.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/debug/deps/libguardrail_baselines-c59de257e4ea68dd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
