/root/repo/target/debug/deps/ablation_structure-20567d2a1bd81438.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/debug/deps/ablation_structure-20567d2a1bd81438: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
