/root/repo/target/debug/deps/table8-7a072eee84c220a6.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-7a072eee84c220a6: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
