/root/repo/target/debug/deps/guardrail-36981b9ac466a9d5.d: src/lib.rs

/root/repo/target/debug/deps/guardrail-36981b9ac466a9d5: src/lib.rs

src/lib.rs:
