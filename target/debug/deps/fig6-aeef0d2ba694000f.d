/root/repo/target/debug/deps/fig6-aeef0d2ba694000f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-aeef0d2ba694000f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
