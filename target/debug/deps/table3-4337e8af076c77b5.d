/root/repo/target/debug/deps/table3-4337e8af076c77b5.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-4337e8af076c77b5.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
