/root/repo/target/debug/deps/guardrail_sqlexec-d76c1177ff11862e.d: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/debug/deps/libguardrail_sqlexec-d76c1177ff11862e.rlib: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/debug/deps/libguardrail_sqlexec-d76c1177ff11862e.rmeta: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

crates/sqlexec/src/lib.rs:
crates/sqlexec/src/ast.rs:
crates/sqlexec/src/catalog.rs:
crates/sqlexec/src/error.rs:
crates/sqlexec/src/exec.rs:
crates/sqlexec/src/optimizer.rs:
crates/sqlexec/src/parser.rs:
crates/sqlexec/src/token.rs:
