/root/repo/target/debug/deps/guardrail_synth-da80f7e151ac13c4.d: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

/root/repo/target/debug/deps/libguardrail_synth-da80f7e151ac13c4.rmeta: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs

crates/synth/src/lib.rs:
crates/synth/src/cache.rs:
crates/synth/src/config.rs:
crates/synth/src/fill.rs:
crates/synth/src/mec.rs:
crates/synth/src/nontrivial.rs:
crates/synth/src/optsmt.rs:
crates/synth/src/sketch.rs:
