/root/repo/target/debug/deps/numeric_guard-29dcd2b54d6646fe.d: tests/numeric_guard.rs

/root/repo/target/debug/deps/numeric_guard-29dcd2b54d6646fe: tests/numeric_guard.rs

tests/numeric_guard.rs:
