/root/repo/target/debug/deps/guardrail_core-b6a1a8f028e45d11.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/guardrail_core-b6a1a8f028e45d11: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/guardrail.rs:
crates/core/src/numeric.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
