/root/repo/target/debug/deps/sql_properties-172df0af3254f715.d: tests/sql_properties.rs

/root/repo/target/debug/deps/sql_properties-172df0af3254f715: tests/sql_properties.rs

tests/sql_properties.rs:
