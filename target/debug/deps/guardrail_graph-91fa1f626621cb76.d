/root/repo/target/debug/deps/guardrail_graph-91fa1f626621cb76.d: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

/root/repo/target/debug/deps/libguardrail_graph-91fa1f626621cb76.rmeta: crates/graph/src/lib.rs crates/graph/src/chickering.rs crates/graph/src/count.rs crates/graph/src/dag.rs crates/graph/src/dsep.rs crates/graph/src/enumerate.rs crates/graph/src/nodeset.rs crates/graph/src/pdag.rs

crates/graph/src/lib.rs:
crates/graph/src/chickering.rs:
crates/graph/src/count.rs:
crates/graph/src/dag.rs:
crates/graph/src/dsep.rs:
crates/graph/src/enumerate.rs:
crates/graph/src/nodeset.rs:
crates/graph/src/pdag.rs:
