/root/repo/target/debug/deps/guardrail-ff4383b552e857b8.d: src/bin/guardrail.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail-ff4383b552e857b8.rmeta: src/bin/guardrail.rs Cargo.toml

src/bin/guardrail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
