/root/repo/target/debug/deps/fig6-ecf102854a9bc6cf.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-ecf102854a9bc6cf.rmeta: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
