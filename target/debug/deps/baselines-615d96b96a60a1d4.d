/root/repo/target/debug/deps/baselines-615d96b96a60a1d4.d: crates/bench/benches/baselines.rs

/root/repo/target/debug/deps/baselines-615d96b96a60a1d4: crates/bench/benches/baselines.rs

crates/bench/benches/baselines.rs:
