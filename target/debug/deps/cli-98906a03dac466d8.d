/root/repo/target/debug/deps/cli-98906a03dac466d8.d: tests/cli.rs

/root/repo/target/debug/deps/cli-98906a03dac466d8: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_guardrail=/root/repo/target/debug/guardrail
