/root/repo/target/debug/deps/guardrail_pgm-c1177ad87c6e1a1a.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/debug/deps/libguardrail_pgm-c1177ad87c6e1a1a.rmeta: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
