/root/repo/target/debug/deps/guardrail_pgm-8d3a42bcbe082f69.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/debug/deps/libguardrail_pgm-8d3a42bcbe082f69.rlib: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/debug/deps/libguardrail_pgm-8d3a42bcbe082f69.rmeta: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
