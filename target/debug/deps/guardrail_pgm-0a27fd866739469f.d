/root/repo/target/debug/deps/guardrail_pgm-0a27fd866739469f.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_pgm-0a27fd866739469f.rmeta: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs Cargo.toml

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
