/root/repo/target/debug/deps/guardrail_baselines-02cc9b756997217b.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

/root/repo/target/debug/deps/guardrail_baselines-02cc9b756997217b: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
