/root/repo/target/debug/deps/structure_recovery-c7be970df38f2431.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/debug/deps/structure_recovery-c7be970df38f2431: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
