/root/repo/target/debug/deps/sql_pipeline-853ee0bb753d4d2d.d: tests/sql_pipeline.rs

/root/repo/target/debug/deps/sql_pipeline-853ee0bb753d4d2d: tests/sql_pipeline.rs

tests/sql_pipeline.rs:
