/root/repo/target/debug/deps/guardrail_dsl-dc4b2073e0936583.d: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/debug/deps/libguardrail_dsl-dc4b2073e0936583.rmeta: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ast.rs:
crates/dsl/src/error.rs:
crates/dsl/src/interp.rs:
crates/dsl/src/parser.rs:
crates/dsl/src/semantics.rs:
