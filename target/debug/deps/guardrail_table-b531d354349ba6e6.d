/root/repo/target/debug/deps/guardrail_table-b531d354349ba6e6.d: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/debug/deps/libguardrail_table-b531d354349ba6e6.rlib: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/debug/deps/libguardrail_table-b531d354349ba6e6.rmeta: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

crates/table/src/lib.rs:
crates/table/src/column.rs:
crates/table/src/csv.rs:
crates/table/src/dictionary.rs:
crates/table/src/error.rs:
crates/table/src/row.rs:
crates/table/src/schema.rs:
crates/table/src/split.rs:
crates/table/src/table.rs:
crates/table/src/value.rs:
