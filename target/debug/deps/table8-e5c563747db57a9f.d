/root/repo/target/debug/deps/table8-e5c563747db57a9f.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-e5c563747db57a9f: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
