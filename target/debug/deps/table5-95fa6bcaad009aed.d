/root/repo/target/debug/deps/table5-95fa6bcaad009aed.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-95fa6bcaad009aed: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
