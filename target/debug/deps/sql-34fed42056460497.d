/root/repo/target/debug/deps/sql-34fed42056460497.d: crates/bench/benches/sql.rs

/root/repo/target/debug/deps/sql-34fed42056460497: crates/bench/benches/sql.rs

crates/bench/benches/sql.rs:
