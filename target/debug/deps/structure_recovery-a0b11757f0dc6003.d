/root/repo/target/debug/deps/structure_recovery-a0b11757f0dc6003.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/debug/deps/structure_recovery-a0b11757f0dc6003: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
