/root/repo/target/debug/deps/guardrail_core-e08f2ef4cbcf90c8.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/libguardrail_core-e08f2ef4cbcf90c8.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/guardrail.rs:
crates/core/src/numeric.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
