/root/repo/target/debug/deps/guardrail_baselines-83bbf083fa40d939.d: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_baselines-83bbf083fa40d939.rmeta: crates/baselines/src/lib.rs crates/baselines/src/ctane.rs crates/baselines/src/detect.rs crates/baselines/src/fd.rs crates/baselines/src/fdx.rs crates/baselines/src/tane.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/ctane.rs:
crates/baselines/src/detect.rs:
crates/baselines/src/fd.rs:
crates/baselines/src/fdx.rs:
crates/baselines/src/tane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
