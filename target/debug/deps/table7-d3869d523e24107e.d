/root/repo/target/debug/deps/table7-d3869d523e24107e.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-d3869d523e24107e: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
