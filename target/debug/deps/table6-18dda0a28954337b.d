/root/repo/target/debug/deps/table6-18dda0a28954337b.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-18dda0a28954337b: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
