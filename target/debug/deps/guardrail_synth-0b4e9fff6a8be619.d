/root/repo/target/debug/deps/guardrail_synth-0b4e9fff6a8be619.d: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_synth-0b4e9fff6a8be619.rmeta: crates/synth/src/lib.rs crates/synth/src/cache.rs crates/synth/src/config.rs crates/synth/src/fill.rs crates/synth/src/mec.rs crates/synth/src/nontrivial.rs crates/synth/src/optsmt.rs crates/synth/src/sketch.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/cache.rs:
crates/synth/src/config.rs:
crates/synth/src/fill.rs:
crates/synth/src/mec.rs:
crates/synth/src/nontrivial.rs:
crates/synth/src/optsmt.rs:
crates/synth/src/sketch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
