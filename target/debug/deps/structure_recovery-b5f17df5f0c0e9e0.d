/root/repo/target/debug/deps/structure_recovery-b5f17df5f0c0e9e0.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/debug/deps/structure_recovery-b5f17df5f0c0e9e0: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
