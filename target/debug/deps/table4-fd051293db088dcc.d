/root/repo/target/debug/deps/table4-fd051293db088dcc.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-fd051293db088dcc: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
