/root/repo/target/debug/deps/guardrail_bench-da5342e724096a84.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/guardrail_bench-da5342e724096a84: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
