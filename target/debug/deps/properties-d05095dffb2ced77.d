/root/repo/target/debug/deps/properties-d05095dffb2ced77.d: tests/properties.rs

/root/repo/target/debug/deps/properties-d05095dffb2ced77: tests/properties.rs

tests/properties.rs:
