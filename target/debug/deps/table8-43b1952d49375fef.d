/root/repo/target/debug/deps/table8-43b1952d49375fef.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/libtable8-43b1952d49375fef.rmeta: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
