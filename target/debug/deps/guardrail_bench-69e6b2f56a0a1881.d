/root/repo/target/debug/deps/guardrail_bench-69e6b2f56a0a1881.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/libguardrail_bench-69e6b2f56a0a1881.rlib: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/libguardrail_bench-69e6b2f56a0a1881.rmeta: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
