/root/repo/target/debug/deps/table1-70ef1e437b8420f6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-70ef1e437b8420f6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
