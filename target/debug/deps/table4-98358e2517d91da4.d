/root/repo/target/debug/deps/table4-98358e2517d91da4.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-98358e2517d91da4.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
