/root/repo/target/debug/deps/baselines_crosscheck-1cf611fbe04b56aa.d: tests/baselines_crosscheck.rs

/root/repo/target/debug/deps/baselines_crosscheck-1cf611fbe04b56aa: tests/baselines_crosscheck.rs

tests/baselines_crosscheck.rs:
