/root/repo/target/debug/deps/table3-fbc9c30dbe301a61.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-fbc9c30dbe301a61: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
