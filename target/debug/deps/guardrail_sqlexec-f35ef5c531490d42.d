/root/repo/target/debug/deps/guardrail_sqlexec-f35ef5c531490d42.d: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

/root/repo/target/debug/deps/libguardrail_sqlexec-f35ef5c531490d42.rmeta: crates/sqlexec/src/lib.rs crates/sqlexec/src/ast.rs crates/sqlexec/src/catalog.rs crates/sqlexec/src/error.rs crates/sqlexec/src/exec.rs crates/sqlexec/src/optimizer.rs crates/sqlexec/src/parser.rs crates/sqlexec/src/token.rs

crates/sqlexec/src/lib.rs:
crates/sqlexec/src/ast.rs:
crates/sqlexec/src/catalog.rs:
crates/sqlexec/src/error.rs:
crates/sqlexec/src/exec.rs:
crates/sqlexec/src/optimizer.rs:
crates/sqlexec/src/parser.rs:
crates/sqlexec/src/token.rs:
