/root/repo/target/debug/deps/table5-a3f84a43880dc776.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-a3f84a43880dc776: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
