/root/repo/target/debug/deps/validation-b9442c372610b62f.d: crates/bench/benches/validation.rs

/root/repo/target/debug/deps/validation-b9442c372610b62f: crates/bench/benches/validation.rs

crates/bench/benches/validation.rs:
