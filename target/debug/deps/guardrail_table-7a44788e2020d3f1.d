/root/repo/target/debug/deps/guardrail_table-7a44788e2020d3f1.d: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/debug/deps/libguardrail_table-7a44788e2020d3f1.rmeta: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

crates/table/src/lib.rs:
crates/table/src/column.rs:
crates/table/src/csv.rs:
crates/table/src/dictionary.rs:
crates/table/src/error.rs:
crates/table/src/row.rs:
crates/table/src/schema.rs:
crates/table/src/split.rs:
crates/table/src/table.rs:
crates/table/src/value.rs:
