/root/repo/target/debug/deps/end_to_end-ef4939cb358070dc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ef4939cb358070dc: tests/end_to_end.rs

tests/end_to_end.rs:
