/root/repo/target/debug/deps/guardrail_bench-b4885c104d35143d.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/libguardrail_bench-b4885c104d35143d.rlib: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/libguardrail_bench-b4885c104d35143d.rmeta: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
