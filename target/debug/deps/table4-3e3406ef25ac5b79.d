/root/repo/target/debug/deps/table4-3e3406ef25ac5b79.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-3e3406ef25ac5b79: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
