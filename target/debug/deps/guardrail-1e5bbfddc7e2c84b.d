/root/repo/target/debug/deps/guardrail-1e5bbfddc7e2c84b.d: src/lib.rs

/root/repo/target/debug/deps/libguardrail-1e5bbfddc7e2c84b.rlib: src/lib.rs

/root/repo/target/debug/deps/libguardrail-1e5bbfddc7e2c84b.rmeta: src/lib.rs

src/lib.rs:
