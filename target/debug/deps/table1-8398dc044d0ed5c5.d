/root/repo/target/debug/deps/table1-8398dc044d0ed5c5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-8398dc044d0ed5c5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
