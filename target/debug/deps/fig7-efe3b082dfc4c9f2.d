/root/repo/target/debug/deps/fig7-efe3b082dfc4c9f2.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-efe3b082dfc4c9f2: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
