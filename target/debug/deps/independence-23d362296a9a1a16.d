/root/repo/target/debug/deps/independence-23d362296a9a1a16.d: crates/bench/benches/independence.rs

/root/repo/target/debug/deps/independence-23d362296a9a1a16: crates/bench/benches/independence.rs

crates/bench/benches/independence.rs:
