/root/repo/target/debug/deps/end_to_end-e819832892036115.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e819832892036115: tests/end_to_end.rs

tests/end_to_end.rs:
