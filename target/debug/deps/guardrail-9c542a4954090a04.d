/root/repo/target/debug/deps/guardrail-9c542a4954090a04.d: src/lib.rs

/root/repo/target/debug/deps/libguardrail-9c542a4954090a04.rmeta: src/lib.rs

src/lib.rs:
