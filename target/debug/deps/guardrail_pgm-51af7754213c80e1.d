/root/repo/target/debug/deps/guardrail_pgm-51af7754213c80e1.d: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

/root/repo/target/debug/deps/guardrail_pgm-51af7754213c80e1: crates/pgm/src/lib.rs crates/pgm/src/aux.rs crates/pgm/src/encode.rs crates/pgm/src/hillclimb.rs crates/pgm/src/learn.rs crates/pgm/src/oracle.rs crates/pgm/src/pc.rs crates/pgm/src/score.rs

crates/pgm/src/lib.rs:
crates/pgm/src/aux.rs:
crates/pgm/src/encode.rs:
crates/pgm/src/hillclimb.rs:
crates/pgm/src/learn.rs:
crates/pgm/src/oracle.rs:
crates/pgm/src/pc.rs:
crates/pgm/src/score.rs:
