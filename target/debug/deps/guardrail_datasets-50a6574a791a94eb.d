/root/repo/target/debug/deps/guardrail_datasets-50a6574a791a94eb.d: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

/root/repo/target/debug/deps/libguardrail_datasets-50a6574a791a94eb.rlib: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

/root/repo/target/debug/deps/libguardrail_datasets-50a6574a791a94eb.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cancer.rs:
crates/datasets/src/chaos.rs:
crates/datasets/src/inject.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/random.rs:
crates/datasets/src/sem.rs:
