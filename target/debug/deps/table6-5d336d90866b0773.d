/root/repo/target/debug/deps/table6-5d336d90866b0773.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-5d336d90866b0773: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
