/root/repo/target/debug/deps/table5-2209fef2370312a3.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/libtable5-2209fef2370312a3.rmeta: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
