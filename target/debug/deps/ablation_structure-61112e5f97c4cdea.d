/root/repo/target/debug/deps/ablation_structure-61112e5f97c4cdea.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/debug/deps/libablation_structure-61112e5f97c4cdea.rmeta: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
