/root/repo/target/debug/deps/numeric_guard-7c0daf1a4d23fe7f.d: tests/numeric_guard.rs

/root/repo/target/debug/deps/numeric_guard-7c0daf1a4d23fe7f: tests/numeric_guard.rs

tests/numeric_guard.rs:
