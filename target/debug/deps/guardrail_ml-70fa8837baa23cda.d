/root/repo/target/debug/deps/guardrail_ml-70fa8837baa23cda.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libguardrail_ml-70fa8837baa23cda.rmeta: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
