/root/repo/target/debug/deps/table7-9b1c96613c225709.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-9b1c96613c225709: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
