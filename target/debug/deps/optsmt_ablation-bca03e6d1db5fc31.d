/root/repo/target/debug/deps/optsmt_ablation-bca03e6d1db5fc31.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/debug/deps/liboptsmt_ablation-bca03e6d1db5fc31.rmeta: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
