/root/repo/target/debug/deps/cli-9ff874e1b5290747.d: tests/cli.rs

/root/repo/target/debug/deps/cli-9ff874e1b5290747: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_guardrail=/root/repo/target/debug/guardrail
