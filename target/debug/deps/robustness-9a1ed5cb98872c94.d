/root/repo/target/debug/deps/robustness-9a1ed5cb98872c94.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-9a1ed5cb98872c94: tests/robustness.rs

tests/robustness.rs:
