/root/repo/target/debug/deps/guardrail_datasets-0ab57f81001e1b4f.d: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_datasets-0ab57f81001e1b4f.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/cancer.rs:
crates/datasets/src/chaos.rs:
crates/datasets/src/inject.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/random.rs:
crates/datasets/src/sem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
