/root/repo/target/debug/deps/guardrail-4ce20999a5713779.d: src/bin/guardrail.rs

/root/repo/target/debug/deps/guardrail-4ce20999a5713779: src/bin/guardrail.rs

src/bin/guardrail.rs:
