/root/repo/target/debug/deps/synthesis-473aae3215184368.d: crates/bench/benches/synthesis.rs

/root/repo/target/debug/deps/synthesis-473aae3215184368: crates/bench/benches/synthesis.rs

crates/bench/benches/synthesis.rs:
