/root/repo/target/debug/deps/guardrail-a6683f4940763db3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail-a6683f4940763db3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
