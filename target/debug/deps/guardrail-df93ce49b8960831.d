/root/repo/target/debug/deps/guardrail-df93ce49b8960831.d: src/bin/guardrail.rs

/root/repo/target/debug/deps/libguardrail-df93ce49b8960831.rmeta: src/bin/guardrail.rs

src/bin/guardrail.rs:
