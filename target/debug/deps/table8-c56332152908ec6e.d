/root/repo/target/debug/deps/table8-c56332152908ec6e.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-c56332152908ec6e: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
