/root/repo/target/debug/deps/table6-91d027164ca7be64.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-91d027164ca7be64: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
