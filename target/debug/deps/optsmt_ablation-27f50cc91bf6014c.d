/root/repo/target/debug/deps/optsmt_ablation-27f50cc91bf6014c.d: crates/bench/src/bin/optsmt_ablation.rs

/root/repo/target/debug/deps/optsmt_ablation-27f50cc91bf6014c: crates/bench/src/bin/optsmt_ablation.rs

crates/bench/src/bin/optsmt_ablation.rs:
