/root/repo/target/debug/deps/fig6-0ff7df164add45df.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-0ff7df164add45df: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
