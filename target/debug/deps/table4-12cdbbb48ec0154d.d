/root/repo/target/debug/deps/table4-12cdbbb48ec0154d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-12cdbbb48ec0154d: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
