/root/repo/target/debug/deps/guardrail_table-d4ffed8e3b9acee7.d: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

/root/repo/target/debug/deps/guardrail_table-d4ffed8e3b9acee7: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs

crates/table/src/lib.rs:
crates/table/src/column.rs:
crates/table/src/csv.rs:
crates/table/src/dictionary.rs:
crates/table/src/error.rs:
crates/table/src/row.rs:
crates/table/src/schema.rs:
crates/table/src/split.rs:
crates/table/src/table.rs:
crates/table/src/value.rs:
