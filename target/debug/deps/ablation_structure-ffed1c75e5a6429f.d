/root/repo/target/debug/deps/ablation_structure-ffed1c75e5a6429f.d: crates/bench/src/bin/ablation_structure.rs

/root/repo/target/debug/deps/ablation_structure-ffed1c75e5a6429f: crates/bench/src/bin/ablation_structure.rs

crates/bench/src/bin/ablation_structure.rs:
