/root/repo/target/debug/deps/properties-6d1c4cd04c70a13b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6d1c4cd04c70a13b: tests/properties.rs

tests/properties.rs:
