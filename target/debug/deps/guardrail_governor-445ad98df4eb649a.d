/root/repo/target/debug/deps/guardrail_governor-445ad98df4eb649a.d: crates/governor/src/lib.rs

/root/repo/target/debug/deps/libguardrail_governor-445ad98df4eb649a.rmeta: crates/governor/src/lib.rs

crates/governor/src/lib.rs:
