/root/repo/target/debug/deps/table6-12f446980a6128f0.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/libtable6-12f446980a6128f0.rmeta: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
