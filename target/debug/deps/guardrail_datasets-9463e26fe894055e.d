/root/repo/target/debug/deps/guardrail_datasets-9463e26fe894055e.d: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

/root/repo/target/debug/deps/libguardrail_datasets-9463e26fe894055e.rmeta: crates/datasets/src/lib.rs crates/datasets/src/cancer.rs crates/datasets/src/chaos.rs crates/datasets/src/inject.rs crates/datasets/src/paper.rs crates/datasets/src/random.rs crates/datasets/src/sem.rs

crates/datasets/src/lib.rs:
crates/datasets/src/cancer.rs:
crates/datasets/src/chaos.rs:
crates/datasets/src/inject.rs:
crates/datasets/src/paper.rs:
crates/datasets/src/random.rs:
crates/datasets/src/sem.rs:
