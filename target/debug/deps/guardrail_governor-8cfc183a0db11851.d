/root/repo/target/debug/deps/guardrail_governor-8cfc183a0db11851.d: crates/governor/src/lib.rs

/root/repo/target/debug/deps/guardrail_governor-8cfc183a0db11851: crates/governor/src/lib.rs

crates/governor/src/lib.rs:
