/root/repo/target/debug/deps/table5-b6a9f40df43c29ec.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-b6a9f40df43c29ec: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
