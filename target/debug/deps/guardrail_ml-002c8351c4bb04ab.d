/root/repo/target/debug/deps/guardrail_ml-002c8351c4bb04ab.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_ml-002c8351c4bb04ab.rmeta: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
