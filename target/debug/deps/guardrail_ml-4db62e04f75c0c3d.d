/root/repo/target/debug/deps/guardrail_ml-4db62e04f75c0c3d.d: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libguardrail_ml-4db62e04f75c0c3d.rlib: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libguardrail_ml-4db62e04f75c0c3d.rmeta: crates/ml/src/lib.rs crates/ml/src/ensemble.rs crates/ml/src/features.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/ensemble.rs:
crates/ml/src/features.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
