/root/repo/target/debug/deps/guardrail_stats-e937df8ee7b85e6a.d: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_stats-e937df8ee7b85e6a.rmeta: crates/stats/src/lib.rs crates/stats/src/chi2.rs crates/stats/src/contingency.rs crates/stats/src/descriptive.rs crates/stats/src/independence.rs crates/stats/src/metrics.rs crates/stats/src/rank.rs crates/stats/src/special.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/chi2.rs:
crates/stats/src/contingency.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/independence.rs:
crates/stats/src/metrics.rs:
crates/stats/src/rank.rs:
crates/stats/src/special.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
