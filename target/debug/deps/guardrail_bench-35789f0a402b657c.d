/root/repo/target/debug/deps/guardrail_bench-35789f0a402b657c.d: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

/root/repo/target/debug/deps/libguardrail_bench-35789f0a402b657c.rmeta: crates/bench/src/lib.rs crates/bench/src/config.rs crates/bench/src/prep.rs crates/bench/src/printing.rs crates/bench/src/queries.rs crates/bench/src/reference.rs

crates/bench/src/lib.rs:
crates/bench/src/config.rs:
crates/bench/src/prep.rs:
crates/bench/src/printing.rs:
crates/bench/src/queries.rs:
crates/bench/src/reference.rs:
