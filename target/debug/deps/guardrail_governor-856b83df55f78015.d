/root/repo/target/debug/deps/guardrail_governor-856b83df55f78015.d: crates/governor/src/lib.rs

/root/repo/target/debug/deps/libguardrail_governor-856b83df55f78015.rlib: crates/governor/src/lib.rs

/root/repo/target/debug/deps/libguardrail_governor-856b83df55f78015.rmeta: crates/governor/src/lib.rs

crates/governor/src/lib.rs:
