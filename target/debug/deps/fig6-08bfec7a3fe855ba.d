/root/repo/target/debug/deps/fig6-08bfec7a3fe855ba.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-08bfec7a3fe855ba: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
