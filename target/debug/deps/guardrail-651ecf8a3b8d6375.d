/root/repo/target/debug/deps/guardrail-651ecf8a3b8d6375.d: src/bin/guardrail.rs

/root/repo/target/debug/deps/guardrail-651ecf8a3b8d6375: src/bin/guardrail.rs

src/bin/guardrail.rs:
