/root/repo/target/debug/deps/guardrail_dsl-df7f46b046901bba.d: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

/root/repo/target/debug/deps/guardrail_dsl-df7f46b046901bba: crates/dsl/src/lib.rs crates/dsl/src/ast.rs crates/dsl/src/error.rs crates/dsl/src/interp.rs crates/dsl/src/parser.rs crates/dsl/src/semantics.rs

crates/dsl/src/lib.rs:
crates/dsl/src/ast.rs:
crates/dsl/src/error.rs:
crates/dsl/src/interp.rs:
crates/dsl/src/parser.rs:
crates/dsl/src/semantics.rs:
