/root/repo/target/debug/deps/guardrail-c0e6fe55002d65e9.d: src/lib.rs

/root/repo/target/debug/deps/libguardrail-c0e6fe55002d65e9.rlib: src/lib.rs

/root/repo/target/debug/deps/libguardrail-c0e6fe55002d65e9.rmeta: src/lib.rs

src/lib.rs:
