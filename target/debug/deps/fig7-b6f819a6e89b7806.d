/root/repo/target/debug/deps/fig7-b6f819a6e89b7806.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b6f819a6e89b7806: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
