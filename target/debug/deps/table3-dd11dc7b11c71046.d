/root/repo/target/debug/deps/table3-dd11dc7b11c71046.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-dd11dc7b11c71046: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
