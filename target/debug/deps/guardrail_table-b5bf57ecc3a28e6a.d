/root/repo/target/debug/deps/guardrail_table-b5bf57ecc3a28e6a.d: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_table-b5bf57ecc3a28e6a.rmeta: crates/table/src/lib.rs crates/table/src/column.rs crates/table/src/csv.rs crates/table/src/dictionary.rs crates/table/src/error.rs crates/table/src/row.rs crates/table/src/schema.rs crates/table/src/split.rs crates/table/src/table.rs crates/table/src/value.rs Cargo.toml

crates/table/src/lib.rs:
crates/table/src/column.rs:
crates/table/src/csv.rs:
crates/table/src/dictionary.rs:
crates/table/src/error.rs:
crates/table/src/row.rs:
crates/table/src/schema.rs:
crates/table/src/split.rs:
crates/table/src/table.rs:
crates/table/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
