/root/repo/target/debug/deps/structure_recovery-98574e75fadf511c.d: crates/bench/src/bin/structure_recovery.rs

/root/repo/target/debug/deps/libstructure_recovery-98574e75fadf511c.rmeta: crates/bench/src/bin/structure_recovery.rs

crates/bench/src/bin/structure_recovery.rs:
