/root/repo/target/debug/deps/sql_properties-4c9326eacc0fe57a.d: tests/sql_properties.rs

/root/repo/target/debug/deps/sql_properties-4c9326eacc0fe57a: tests/sql_properties.rs

tests/sql_properties.rs:
