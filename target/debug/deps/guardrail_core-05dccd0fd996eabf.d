/root/repo/target/debug/deps/guardrail_core-05dccd0fd996eabf.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libguardrail_core-05dccd0fd996eabf.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/guardrail.rs crates/core/src/numeric.rs crates/core/src/report.rs crates/core/src/scheme.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/guardrail.rs:
crates/core/src/numeric.rs:
crates/core/src/report.rs:
crates/core/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
