/root/repo/target/debug/libguardrail_governor.rlib: /root/repo/crates/governor/src/lib.rs
