//! Offline-vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of `rand` it actually uses: [`rngs::StdRng`], [`SeedableRng`]
//! (`seed_from_u64` only), and the [`Rng`] extension methods `gen`,
//! `gen_range`, `gen_bool`, and `gen_ratio` over the integer/float types that
//! appear in this repository.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 core of upstream `rand`, so seeded streams
//! differ from upstream. Every consumer in this workspace treats seeded
//! output as "some fixed pseudo-random stream", never as a specific one, so
//! only determinism (same seed → same stream) matters, and that holds.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. Mirror of `rand_core::RngCore`, reduced to the
/// one method everything else derives from.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (mirror of `rand::SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods over [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly over `T`'s "standard" domain
    /// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator, "gen_ratio out of range");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`] (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo bias is ≤ span / 2^64, negligible for every span in
                // this workspace (and irrelevant to its statistical tests).
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type can't occur
                    // here; for 64-bit-and-below, span 0 means 2^64 values.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    ///
    /// Statistically strong, 4×u64 of state, and trivially seedable through
    /// SplitMix64 per the reference implementation's recommendation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion: decorrelates close seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_ratio_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| rng.gen_ratio(1, 50)).count();
        // E = 1000; allow generous slack.
        assert!((700..1300).contains(&hits), "hits = {hits}");
        let bools = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((11_500..13_500).contains(&bools), "bools = {bools}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let v = takes_generic(&mut rng);
        assert!(v < 10);
    }
}
