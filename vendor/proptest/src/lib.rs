//! Offline-vendored subset of the `proptest` 1.x API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it actually consumes: the [`Strategy`] trait with
//! the `prop_map` / `prop_filter` / `prop_filter_map` / `prop_flat_map` /
//! `prop_recursive` combinators, range and tuple strategies, simple
//! character-class string strategies (`"[a-z][a-z0-9_]{0,6}"`),
//! [`collection::vec`], [`sample::subsequence`], `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for this workspace:
//! - **No shrinking.** A failing case reports the generated value as-is.
//! - **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's module path and name, so failures reproduce exactly.
//! - String "regex" strategies support exactly the concatenation of
//!   character classes with optional `{m,n}` repetition that the test suite
//!   uses — not general regex syntax.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// `gen_value` returns `None` to signal a local rejection (e.g. a filter
/// that never matched); the runner retries the whole case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value, or `None` if this draw was rejected.
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `pred` holds; other draws are retried.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Combined map + filter: `f` returning `None` rejects the draw.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// produces one level of nesting from the strategy for the level below.
    /// `depth` bounds nesting; `_desired_size` and `_expected_branch_size`
    /// are accepted for upstream signature compatibility but unused (depth
    /// alone bounds output size at the scales this workspace generates).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            // Each level is a coin flip between bottoming out at a leaf and
            // recursing one level deeper — keeps sizes small without the
            // upstream size-accounting machinery.
            strat = Union::new(vec![self.clone().boxed(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases this strategy behind an `Arc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        self.0.gen_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Combinator types
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Retry locally a few times before escalating to a whole-case reject;
        // keeps sparse filters from exhausting the runner's reject budget.
        for _ in 0..32 {
            if let Some(v) = self.inner.gen_value(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        for _ in 0..32 {
            if let Some(v) = self.inner.gen_value(rng) {
                if let Some(out) = (self.f)(v) {
                    return Some(out);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Option<T::Value> {
        let first = self.inner.gen_value(rng)?;
        (self.f)(first).gen_value(rng)
    }
}

/// Uniform choice between type-erased alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, string classes, tuples
// ---------------------------------------------------------------------------

/// Marker strategy behind [`arbitrary::any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

macro_rules! any_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen())
            }
        }
    )*};
}
any_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Mirror of `proptest::arbitrary`.
pub mod arbitrary {
    use super::Any;

    /// Generates any value of `T` from its full domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

// --- string class patterns --------------------------------------------------

/// One `[class]` or `[class]{m,n}` unit of a pattern string.
struct ClassUnit {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the pattern subset used by the test suite: a concatenation of
/// character classes, each optionally followed by `{m,n}`. Panics on
/// anything else so unsupported patterns fail loudly at generation time.
fn parse_pattern(pattern: &str) -> Vec<ClassUnit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        assert_eq!(
            chars[i], '[',
            "unsupported pattern {pattern:?}: expected '[' at byte {i} \
             (vendored proptest supports only concatenated character classes)"
        );
        i += 1;
        let mut class = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            // A '-' between two class members denotes a range; first or last
            // position means a literal '-'.
            if chars[i] == '-' && !class.is_empty() && i + 1 < chars.len() && chars[i + 1] != ']' {
                let lo = *class.last().unwrap();
                let hi = chars[i + 1];
                assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                for c in (lo as u32 + 1)..=(hi as u32) {
                    class.push(char::from_u32(c).unwrap());
                }
                i += 2;
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                class.push(chars[i + 1]);
                i += 2;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
        i += 1; // skip ']'
        let (mut min, mut max) = (1, 1);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("repetition must be {{m,n}} in pattern {pattern:?}"));
            min = lo.trim().parse().expect("bad repetition lower bound");
            max = hi.trim().parse().expect("bad repetition upper bound");
            assert!(min <= max, "empty repetition in pattern {pattern:?}");
            i += close + 1;
        }
        assert!(!class.is_empty(), "empty character class in pattern {pattern:?}");
        units.push(ClassUnit { chars: class, min, max });
    }
    units
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> Option<String> {
        let mut out = String::new();
        for unit in parse_pattern(self) {
            let n = rng.gen_range(unit.min..=unit.max);
            for _ in 0..n {
                out.push(unit.chars[rng.gen_range(0..unit.chars.len())]);
            }
        }
        Some(out)
    }
}

// --- tuples ------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen_value(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

// ---------------------------------------------------------------------------
// collection / sample modules
// ---------------------------------------------------------------------------

/// Mirror of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::{Rng, SampleRange};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Clone, R: Clone> Clone for VecStrategy<S, R> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size.clone() }
        }
    }

    /// Generates vectors of `element` values with a length sampled from
    /// `size` (a `Range` or `RangeInclusive` over `usize`).
    pub fn vec<S: Strategy, R: SampleRange<usize> + Clone>(
        element: S,
        size: R,
    ) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SampleRange<usize> + Clone> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = rng.gen_range(self.size.clone());
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.gen_value(rng)?);
            }
            Some(out)
        }
    }
}

/// Mirror of `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::{Rng, SampleRange};

    /// Strategy for order-preserving subsequences of a fixed vector.
    pub struct Subsequence<T, R> {
        values: Vec<T>,
        size: R,
    }

    /// Picks a random subsequence of `values` (order preserved) whose length
    /// is drawn from `size`.
    pub fn subsequence<T: Clone, R: SampleRange<usize> + Clone>(
        values: Vec<T>,
        size: R,
    ) -> Subsequence<T, R> {
        Subsequence { values, size }
    }

    impl<T: Clone, R: SampleRange<usize> + Clone> Strategy for Subsequence<T, R> {
        type Value = Vec<T>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<T>> {
            let k = rng.gen_range(self.size.clone()).min(self.values.len());
            // Floyd's algorithm would also work; for the tiny sets in the
            // test suite a partial Fisher–Yates over indices is simplest.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            Some(chosen.into_iter().map(|i| self.values[i].clone()).collect())
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Mirror of `proptest::test_runner` — config and case errors.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case doesn't apply (e.g. `prop_assume!` failed); retried.
        Reject(String),
        /// The property is violated; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Builds a rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }
}

/// Derives a stable RNG seed from a test's fully qualified name.
pub fn seed_for_test(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drives generation and case execution for one `proptest!` test.
/// Not part of the public API surface users write against; the macros call it.
pub fn run_cases<S, F>(
    test_name: &str,
    config: test_runner::ProptestConfig,
    strategy: S,
    mut body: F,
) where
    S: Strategy,
    S::Value: fmt::Debug,
    F: FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    let mut rng = TestRng::seed_from_u64(seed_for_test(test_name));
    let mut rejects: u32 = 0;
    let max_rejects = 4096 + config.cases * 16;
    let mut passed = 0;
    while passed < config.cases {
        let value = match strategy.gen_value(&mut rng) {
            Some(v) => v,
            None => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{test_name}: too many generator rejections ({rejects}); \
                     filter is likely unsatisfiable"
                );
                continue;
            }
        };
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{test_name}: too many case rejections ({rejects}); \
                     prop_assume! is likely unsatisfiable"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed after {passed} passing case(s): {msg}\n\
                     input: {shown}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Discards the current case (retried, not failed) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config,
                strategy,
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    fn rng() -> super::TestRng {
        super::TestRng::seed_from_u64(99)
    }

    #[test]
    fn string_pattern_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-z][a-z0-9_]{0,6}", &mut r).unwrap();
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        // Escapes and literal '-'/'.' in classes.
        for _ in 0..200 {
            let s = Strategy::gen_value(&"[a-zA-Z0-9 _.-]{0,12}", &mut r).unwrap();
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn union_and_combinators() {
        let strat = prop_oneof![Just(0usize), (1usize..10).prop_map(|v| v * 100),]
            .prop_filter("nonzero-or-zero", |v| *v == 0 || *v >= 100);
        let mut r = rng();
        let mut saw_zero = false;
        let mut saw_big = false;
        for _ in 0..100 {
            match Strategy::gen_value(&strat, &mut r).unwrap() {
                0 => saw_zero = true,
                v if v >= 100 => saw_big = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(saw_zero && saw_big);
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut r = rng();
        let base = vec![1, 2, 3, 4, 5, 6, 7];
        for _ in 0..100 {
            let sub = Strategy::gen_value(&super::sample::subsequence(base.clone(), 0..=7), &mut r)
                .unwrap();
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "{sub:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in proptest::collection::vec(0i32..50, 0..8), flag in any::<bool>()) {
            prop_assume!(v.len() != 7);
            prop_assert!(v.iter().all(|x| (0..50).contains(x)));
            if flag {
                prop_assert_eq!(v.len(), v.clone().len());
            }
        }
    }

    // `use proptest::collection` path inside this crate's own tests:
    use crate as proptest;
}
