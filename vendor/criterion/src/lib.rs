//! Offline-vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal wall-clock harness exposing the surface its benches use:
//! [`Criterion`], [`Criterion::benchmark_group`] / `sample_size` /
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`] with [`BatchSize`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike upstream there is no statistical analysis, outlier detection, or
//! HTML report — each benchmark is warmed up, timed over an adaptive
//! iteration count, and its mean/min per-iteration time printed. That is
//! enough to compare hot-path variants in this repository (e.g. governor
//! overhead), which is all the workspace asks of it.
//!
//! Setting `CRITERION_JSON=<path>` additionally appends one JSON object per
//! benchmark (name, mean/min per-iteration nanoseconds, sample count) to
//! `<path>`, one per line, so CI runs can archive machine-readable timings.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. `sample_size` scales it down so
/// expensive benches (sample_size 10) don't dominate the run.
const BASE_MEASURE: Duration = Duration::from_millis(300);

/// Top-level harness handle; one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales measurement time down for
    /// expensive benches, mirroring how upstream treats small sample sizes).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; here it's a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Parameter-only form, for groups whose name already names the function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Mirrors upstream's `BatchSize`. The vendored harness times every
/// routine call individually, so the hint carries no behavioural weight —
/// it exists so benches written against real criterion compile unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; upstream batches many per allocation.
    SmallInput,
    /// Inputs are expensive; upstream batches few per allocation.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Passed to the closure under measurement; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`].
pub struct Bencher {
    /// (iterations, elapsed) samples collected so far.
    samples: Vec<(u64, Duration)>,
    measure_time: Duration,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so each sample batch is
    /// long enough for the clock to resolve.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: find an iteration count taking ≥ ~1ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };

        // Measurement: fixed wall-clock budget split into batches.
        let batches = 10u64;
        let total_iters = ((self.measure_time.as_secs_f64() / per_iter.max(1e-12)) as u64)
            .clamp(batches, 1 << 24);
        let per_batch = (total_iters / batches).max(1);
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push((per_batch, start.elapsed()));
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding `setup` from
    /// the measurement — the API for stateful routines whose per-call
    /// precondition (an appended batch, a dirty table) must be rebuilt
    /// outside the clock.
    ///
    /// Unlike [`iter`](Self::iter), every routine call is timed
    /// individually, so this suits routines long enough for the OS clock to
    /// resolve (≳ a few microseconds); `iter` remains the right tool for
    /// nanosecond-scale routines.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up + calibration: one untimed-setup/timed-routine round.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed().as_secs_f64();

        // Measurement: fixed wall-clock budget split into batches; each
        // batch accumulates routine-only time across its iterations.
        let batches = 10u64;
        let total_iters = ((self.measure_time.as_secs_f64() / per_iter.max(1e-12)) as u64)
            .clamp(batches, 1 << 16);
        let per_batch = (total_iters / batches).max(1);
        for _ in 0..batches {
            let mut elapsed = Duration::ZERO;
            for _ in 0..per_batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            self.samples.push((per_batch, elapsed));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Small sample sizes signal an expensive bench: shrink the budget the
    // same way callers expect `group.sample_size(10)` to speed things up.
    let measure_time = BASE_MEASURE.mul_f64((sample_size as f64 / 100.0).clamp(0.05, 1.0));
    let mut bencher = Bencher { samples: Vec::new(), measure_time };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples: Bencher::iter never called)");
        return;
    }
    let per_iter: Vec<f64> =
        bencher.samples.iter().map(|(n, d)| d.as_secs_f64() / *n as f64).collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{name:<48} time: [mean {} min {}]", format_time(mean), format_time(min));
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = json_record(name, mean, min, bencher.samples.len());
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = written {
                eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}");
            }
        }
    }
}

/// One benchmark result as a single-line JSON object. Times are reported in
/// nanoseconds per iteration to keep the values integral-friendly.
fn json_record(name: &str, mean_secs: f64, min_secs: f64, samples: usize) -> String {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{samples}}}",
        mean_secs * 1e9,
        min_secs * 1e9
    )
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n.wrapping_mul(3))
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_runs_setup_once_per_routine_call() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut setups = 0u64;
        let mut calls = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |input| {
                    calls += 1;
                    black_box(input * 3)
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, calls, "every routine call gets exactly one fresh input");
        assert!(calls > 0);
    }

    #[test]
    fn json_record_is_valid_single_line_json() {
        let line = json_record("group/bench \"q\"\\", 1234.5e-9, 1000.0e-9, 10);
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            "{\"name\":\"group/bench \\\"q\\\"\\\\\",\"mean_ns\":1234.5,\"min_ns\":1000.0,\"samples\":10}"
        );
    }
}
