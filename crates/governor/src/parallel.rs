//! The workspace's parallel execution model.
//!
//! Every parallel hot path in the pipeline (PC's per-level CI tests, per-DAG
//! and per-statement sketch fills, chunked bulk detection) goes through the
//! same primitive: an order-preserving scoped-thread map. Centralizing it
//! here keeps three invariants uniform across crates:
//!
//! * **Determinism** — results are written into pre-assigned slots and
//!   merged in input order, so the output is identical for any worker count.
//! * **Cooperative budgets** — workers share the caller's [`Budget`] (an
//!   `Arc`-backed atomic), so a deadline, work cap, or cancellation trips
//!   mid-stage no matter which thread is charging.
//! * **Panic propagation** — `std::thread::scope` re-raises worker panics
//!   when the scope closes instead of poisoning a queue.
//!
//! [`Budget`]: crate::Budget

use std::num::NonZeroUsize;

/// Worker-count policy for parallel stages.
///
/// The pipeline treats this as a *maximum*: a stage never spawns more
/// workers than it has independent items.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Run on the calling thread with no spawning at all. Equivalent to
    /// `Threads(1)` in results (which is guaranteed anyway), but also avoids
    /// thread-spawn overhead — useful for tiny inputs and comparisons.
    Sequential,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// Convenience constructor: `threads(0)` and `threads(1)` both mean
    /// sequential execution.
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Sequential,
        }
    }

    /// Number of workers to use for `items` independent work items.
    pub fn workers_for(self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.get(),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
            }
        };
        cap.min(items).max(1)
    }
}

/// Maps `f` over `items` on up to [`Parallelism::workers_for`] scoped
/// threads, preserving input order in the output.
///
/// Items are dealt to workers in contiguous chunks; each result is written
/// into its item's slot, so the returned vector is bit-identical to the
/// sequential `items.iter().map(f).collect()` for any worker count (provided
/// `f` itself is deterministic per item). With one worker the map runs on
/// the calling thread.
pub fn parallel_map<T: Sync, R: Send>(
    parallelism: Parallelism,
    items: &[T],
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<R> {
    let workers = parallelism.workers_for(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = results
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .map(|(slot_chunk, item_chunk)| {
                scope.spawn(move || {
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload is re-raised verbatim
        // (the scope's implicit join would replace it with a generic one).
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// [`parallel_map`] over the chunks of an index range `0..len`: calls
/// `f(start..end)` for consecutive sub-ranges of at most `chunk_len` indices
/// and returns the per-chunk results in range order.
///
/// This is the shape bulk row scans want (detection, rectification): `f`
/// produces a per-chunk accumulator the caller merges in order, which keeps
/// the merged output identical to a single sequential scan.
pub fn parallel_chunks<R: Send>(
    parallelism: Parallelism,
    len: usize,
    chunk_len: usize,
    f: &(impl Fn(std::ops::Range<usize>) -> R + Sync),
) -> Vec<R> {
    assert!(chunk_len > 0, "chunk_len must be positive");
    if len == 0 {
        return Vec::new();
    }
    let ranges: Vec<std::ops::Range<usize>> = (0..len.div_ceil(chunk_len))
        .map(|i| (i * chunk_len)..((i + 1) * chunk_len).min(len))
        .collect();
    parallel_map(parallelism, &ranges, &|r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for p in [
            Parallelism::Sequential,
            Parallelism::Auto,
            Parallelism::threads(2),
            Parallelism::threads(7),
            Parallelism::threads(256),
        ] {
            assert_eq!(parallel_map(p, &items, &|&x| x * x), expected, "{p:?}");
        }
    }

    #[test]
    fn workers_never_exceed_items() {
        assert_eq!(Parallelism::threads(8).workers_for(3), 3);
        assert_eq!(Parallelism::Sequential.workers_for(100), 1);
        assert_eq!(Parallelism::threads(8).workers_for(0), 1);
        assert!(Parallelism::Auto.workers_for(usize::MAX) >= 1);
    }

    #[test]
    fn threads_constructor_normalizes() {
        assert_eq!(Parallelism::threads(0), Parallelism::Sequential);
        assert_eq!(Parallelism::threads(1), Parallelism::Sequential);
        assert_eq!(Parallelism::threads(6).workers_for(100), 6);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<u32> = parallel_map(Parallelism::Auto, &[] as &[u32], &|&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_ranges_cover_exactly() {
        let chunks = parallel_chunks(Parallelism::threads(3), 10, 4, &|r| r);
        assert_eq!(chunks, vec![0..4, 4..8, 8..10]);
        assert!(parallel_chunks(Parallelism::Auto, 0, 4, &|r| r).is_empty());
    }

    #[test]
    fn shared_budget_trips_across_workers() {
        use crate::Budget;
        let budget = Budget::with_work_cap(50);
        let items: Vec<u32> = (0..100).collect();
        let results = parallel_map(Parallelism::threads(4), &items, &|_| budget.charge(1).is_ok());
        let ok = results.iter().filter(|&&ok| ok).count();
        assert!(ok <= 50, "only 50 units were chargeable, {ok} charges succeeded");
        assert!(budget.work_done() >= 50);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items = [1u32, 2, 3, 4];
        parallel_map(Parallelism::threads(2), &items, &|&x| {
            if x == 3 {
                panic!("worker boom");
            }
            x
        });
    }
}
