//! Unified resource governor for anytime synthesis.
//!
//! Guardrail's pipeline (PC → MEC enumeration → sketch filling) is
//! super-exponential in the worst case. Instead of three unrelated ad-hoc
//! caps scattered across crates, every unbounded loop charges a single
//! [`Budget`]: a wall-clock deadline (monotonic clock), a work-unit counter,
//! and a cooperative [`CancellationToken`].
//!
//! Exhaustion is **not an error**. A stage that runs out of budget stops at
//! a consistent point and reports [`StageStatus::Degraded`]; callers keep
//! the best result found so far. End-to-end entry points aggregate statuses
//! into a [`DegradationReport`] so downstream consumers (CLI, bench
//! binaries) can tell a complete run from a truncated one.
//!
//! # Charging discipline
//!
//! `charge(units)` both counts work and checks the deadline, so its cost is
//! one `Instant::now()` call. Hot loops amortise this by charging in batches
//! (e.g. one charge per 4096 rows, per CI test, or per enumerated DAG) —
//! see `Budget::charge` docs. `check()` ticks the deadline and cancellation
//! without consuming work units; recursive searches call it on interior
//! nodes so a deadline can interrupt the search between results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;

pub use parallel::{parallel_chunks, parallel_map, Parallelism};

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget stopped a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The work-unit cap was consumed.
    WorkCapReached,
    /// The [`CancellationToken`] was triggered.
    Cancelled,
}

impl fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExhaustionReason::DeadlineExpired => write!(f, "deadline expired"),
            ExhaustionReason::WorkCapReached => write!(f, "work cap reached"),
            ExhaustionReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Returned by [`Budget::charge`] / [`Budget::check`] when the budget is
/// spent. Carries the work accounted to the budget that tripped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// What limit tripped.
    pub reason: ExhaustionReason,
    /// Work units recorded on the tripping budget at that moment.
    pub work_done: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget exhausted ({}) after {} work units", self.reason, self.work_done)
    }
}

impl std::error::Error for Exhausted {}

/// Cooperative cancellation flag. Clones share the flag; any clone can
/// cancel, and every [`Budget`] holding the token observes it on the next
/// `charge`/`check`.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

struct BudgetInner {
    /// Absolute deadline on the monotonic clock, if any.
    deadline: Option<Instant>,
    /// Maximum work units chargeable to this budget, if any.
    work_cap: Option<u64>,
    work_done: AtomicU64,
    cancel: CancellationToken,
    /// Stage budgets chain to their parent: charging a child also charges
    /// every ancestor, so a stage cap can never exceed the global budget.
    parent: Option<Arc<BudgetInner>>,
}

impl BudgetInner {
    fn try_consume(&self, units: u64, now: &mut Option<Instant>) -> Result<(), Exhausted> {
        if self.cancel.is_cancelled() {
            return Err(self.exhausted(ExhaustionReason::Cancelled));
        }
        if let Some(deadline) = self.deadline {
            let t = *now.get_or_insert_with(Instant::now);
            if t >= deadline {
                return Err(self.exhausted(ExhaustionReason::DeadlineExpired));
            }
        }
        if units > 0 {
            let done = self.work_done.fetch_add(units, Ordering::Relaxed) + units;
            if let Some(cap) = self.work_cap {
                if done > cap {
                    // Leave the counter past the cap: concurrent chargers all
                    // observe exhaustion, and `work_done` reports real work.
                    return Err(self.exhausted(ExhaustionReason::WorkCapReached));
                }
            }
        } else if let Some(cap) = self.work_cap {
            // A pure check (`charge(0)`) trips on a saturated cap: no further
            // work can be charged, so loops should stop expanding now.
            if self.work_done.load(Ordering::Relaxed) >= cap {
                return Err(self.exhausted(ExhaustionReason::WorkCapReached));
            }
        }
        Ok(())
    }

    fn exhausted(&self, reason: ExhaustionReason) -> Exhausted {
        Exhausted { reason, work_done: self.work_done.load(Ordering::Relaxed) }
    }
}

/// An anytime computation budget: optional wall-clock deadline, optional
/// work-unit cap, and a cancellation token.
///
/// `Budget` is cheap to clone (clones share state) and safe to share across
/// threads. Stage-scoped sub-limits are expressed as [child](Budget::child)
/// budgets: a child has its own work cap but charges its ancestors too, and
/// inherits the tightest deadline and the cancellation token, so no stage
/// can outlive the budget that contains it.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field("work_cap", &self.inner.work_cap)
            .field("work_done", &self.work_done())
            .field("cancelled", &self.inner.cancel.is_cancelled())
            .finish()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    fn build(deadline: Option<Instant>, work_cap: Option<u64>) -> Self {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline,
                work_cap,
                work_done: AtomicU64::new(0),
                cancel: CancellationToken::new(),
                parent: None,
            }),
        }
    }

    /// No deadline, no work cap, not cancelled: every charge succeeds.
    pub fn unlimited() -> Self {
        Budget::build(None, None)
    }

    /// Budget that expires `timeout` from now (monotonic clock).
    ///
    /// Timeouts are saturating: a `Duration::ZERO` (or otherwise already
    /// expired) deadline trips the very next `charge`/`check` with a typed
    /// [`Exhausted`], and an absurdly large timeout (e.g. `Duration::MAX`
    /// from unvalidated client input) is clamped to [`MAX_TIMEOUT`] instead
    /// of overflowing `Instant` arithmetic into *no deadline at all* — a
    /// client must never be able to request an unbounded run by accident.
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget::build(Some(deadline_after(timeout)), None)
    }

    /// Budget capped at `cap` work units, with no deadline. Deterministic —
    /// useful for reproducible degradation in tests.
    pub fn with_work_cap(cap: u64) -> Self {
        Budget::build(None, Some(cap))
    }

    /// Budget with both a deadline and a work cap. The deadline saturates
    /// exactly as in [`Budget::with_deadline`].
    pub fn with_deadline_and_work_cap(timeout: Duration, cap: u64) -> Self {
        Budget::build(Some(deadline_after(timeout)), Some(cap))
    }

    /// The cancellation token observed by this budget (and its children).
    /// Clone it out and call [`CancellationToken::cancel`] from anywhere.
    pub fn cancellation_token(&self) -> CancellationToken {
        self.inner.cancel.clone()
    }

    /// A stage-scoped child: its own `work_cap` (None = uncapped locally),
    /// chained to `self` so the child's work also charges this budget and
    /// this budget's deadline/cancellation still apply.
    pub fn child(&self, work_cap: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(BudgetInner {
                deadline: None, // parent's deadline is checked via the chain
                work_cap,
                work_done: AtomicU64::new(0),
                cancel: self.inner.cancel.clone(),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Records `units` of work and checks every limit (cap, deadline,
    /// cancellation) on this budget and its ancestors.
    ///
    /// Cost is one `Instant::now()` when any budget in the chain has a
    /// deadline; hot loops should charge in batches (rows per chunk, one
    /// unit per CI test / DAG) rather than per element.
    pub fn charge(&self, units: u64) -> Result<(), Exhausted> {
        // Resolve the clock at most once even across the ancestor chain.
        let mut now = None;
        let mut cur: Option<&BudgetInner> = Some(&self.inner);
        while let Some(inner) = cur {
            inner.try_consume(units, &mut now)?;
            cur = inner.parent.as_deref();
        }
        Ok(())
    }

    /// Checks deadline/cancellation/cap without consuming work units.
    /// Recursive searches call this on interior nodes.
    pub fn check(&self) -> Result<(), Exhausted> {
        self.charge(0)
    }

    /// Work units charged to this budget so far (including its children's).
    pub fn work_done(&self) -> u64 {
        self.inner.work_done.load(Ordering::Relaxed)
    }

    /// Time left until the tightest deadline in this budget's ancestor
    /// chain: `None` when no deadline exists anywhere, `Some(ZERO)` once a
    /// deadline has passed (saturating — never underflows). Servers use
    /// this to size `RETRY_AFTER` hints and to refuse work whose deadline
    /// already expired without running it.
    pub fn remaining(&self) -> Option<Duration> {
        let mut tightest: Option<Instant> = None;
        let mut cur: Option<&BudgetInner> = Some(&self.inner);
        while let Some(inner) = cur {
            if let Some(d) = inner.deadline {
                tightest = Some(tightest.map_or(d, |t| t.min(d)));
            }
            cur = inner.parent.as_deref();
        }
        tightest.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether this budget (or an ancestor) can never trip: no deadline, no
    /// cap, and an untriggered token. Lets callers skip degraded-path
    /// bookkeeping entirely on the default configuration.
    pub fn is_unlimited(&self) -> bool {
        let mut cur: Option<&BudgetInner> = Some(&self.inner);
        while let Some(inner) = cur {
            if inner.deadline.is_some() || inner.work_cap.is_some() || inner.cancel.is_cancelled() {
                return false;
            }
            cur = inner.parent.as_deref();
        }
        true
    }
}

/// Largest timeout [`Budget::with_deadline`] accepts before clamping
/// (~100 years): far beyond any real run, small enough that
/// `Instant + timeout` can never overflow into "no deadline".
pub const MAX_TIMEOUT: Duration = Duration::from_secs(100 * 365 * 24 * 60 * 60);

/// Absolute deadline `timeout` from now, saturating at [`MAX_TIMEOUT`].
///
/// `Instant::checked_add` returns `None` on overflow; mapping that `None`
/// to "no deadline" (as a naive implementation would) turns the *largest*
/// requested timeout into the *loosest* possible budget. Clamping first
/// keeps the monotonicity a deadline must have: more timeout never means
/// less enforcement.
fn deadline_after(timeout: Duration) -> Instant {
    let now = Instant::now();
    now.checked_add(timeout.min(MAX_TIMEOUT))
        // Unreachable on real platforms (Instant has centuries of headroom);
        // an immediate deadline is the fail-safe direction if it ever isn't.
        .unwrap_or(now)
}

/// How a pipeline stage ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageStatus {
    /// The stage ran to completion; its result is exact.
    Complete,
    /// The stage ran out of budget and returned its best partial result.
    Degraded(Degradation),
}

impl StageStatus {
    /// Builds a `Degraded` status for `stage` from a budget error. Every
    /// degradation bumps the `governor.degradations` trace counter, so an
    /// armed recorder sees budget cuts inline with the stage spans.
    pub fn degraded(stage: &'static str, err: Exhausted) -> Self {
        guardrail_obs::count("governor.degradations", 1);
        StageStatus::Degraded(Degradation { stage, reason: err.reason, work_done: err.work_done })
    }

    /// True for [`StageStatus::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, StageStatus::Complete)
    }
}

/// One degraded stage: where, why, and how much work was done first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degradation {
    /// Pipeline stage name, e.g. `"pc"`, `"mec_enumeration"`, `"fill"`.
    pub stage: &'static str,
    /// What limit tripped.
    pub reason: ExhaustionReason,
    /// Work units the stage completed before stopping.
    pub work_done: u64,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} after {} work units", self.stage, self.reason, self.work_done)
    }
}

/// Aggregate degradation across an end-to-end run. Empty means every stage
/// completed; results are exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Degraded stages in pipeline order. Empty = fully complete run.
    pub stages: Vec<Degradation>,
}

impl DegradationReport {
    /// A report with no degradations.
    pub fn complete() -> Self {
        Self::default()
    }

    /// Whether every stage completed.
    pub fn is_complete(&self) -> bool {
        self.stages.is_empty()
    }

    /// Folds a stage status into the report.
    pub fn record(&mut self, status: StageStatus) {
        if let StageStatus::Degraded(d) = status {
            self.stages.push(d);
        }
    }

    /// Appends another report's degradations.
    pub fn merge(&mut self, other: DegradationReport) {
        self.stages.extend(other.stages);
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.stages.is_empty() {
            return write!(f, "complete (no degradation)");
        }
        write!(f, "degraded: ")?;
        for (i, d) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..10_000 {
            b.charge(1_000_000).unwrap();
        }
        b.check().unwrap();
    }

    #[test]
    fn work_cap_trips_at_boundary() {
        let b = Budget::with_work_cap(10);
        assert!(!b.is_unlimited());
        b.charge(10).unwrap(); // exactly at cap is fine
        let err = b.charge(1).unwrap_err();
        assert_eq!(err.reason, ExhaustionReason::WorkCapReached);
        assert!(err.work_done >= 10);
        // A saturated cap also trips pure checks: nothing more can run.
        assert_eq!(b.check().unwrap_err().reason, ExhaustionReason::WorkCapReached);
        // An unsaturated cap does not.
        let fresh = Budget::with_work_cap(10);
        fresh.charge(9).unwrap();
        fresh.check().unwrap();
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let b = Budget::with_deadline(Duration::from_millis(5));
        b.check().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let err = b.check().unwrap_err();
        assert_eq!(err.reason, ExhaustionReason::DeadlineExpired);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert_eq!(b.check().unwrap_err().reason, ExhaustionReason::DeadlineExpired);
        // Work is refused too, not just pure checks.
        assert_eq!(b.charge(1).unwrap_err().reason, ExhaustionReason::DeadlineExpired);
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn huge_deadline_saturates_instead_of_disabling_enforcement() {
        // A client-supplied Duration::MAX must clamp to a real (far-future)
        // deadline, not overflow Instant arithmetic into "unlimited".
        for timeout in [Duration::MAX, MAX_TIMEOUT, MAX_TIMEOUT.saturating_add(Duration::MAX)] {
            let b = Budget::with_deadline(timeout);
            assert!(!b.is_unlimited(), "{timeout:?} must keep a deadline");
            b.check().unwrap(); // ...but obviously not trip now
            let rem = b.remaining().expect("deadline exists");
            assert!(rem > Duration::ZERO && rem <= MAX_TIMEOUT);
        }
        let capped = Budget::with_deadline_and_work_cap(Duration::MAX, 5);
        assert!(!capped.is_unlimited());
        capped.charge(5).unwrap();
        assert_eq!(capped.charge(1).unwrap_err().reason, ExhaustionReason::WorkCapReached);
    }

    #[test]
    fn remaining_reports_tightest_deadline_in_chain() {
        assert_eq!(Budget::unlimited().remaining(), None);
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Some(10));
        let rem = child.remaining().expect("inherits parent deadline");
        assert!(rem <= Duration::from_secs(3600) && rem > Duration::from_secs(3500));
        // An expired budget saturates to zero rather than underflowing.
        let expired = Budget::with_deadline(Duration::ZERO);
        assert_eq!(expired.child(None).remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_observed_by_clones_and_children() {
        let b = Budget::unlimited();
        let child = b.child(Some(1_000));
        let token = b.cancellation_token();
        child.charge(1).unwrap();
        token.cancel();
        assert_eq!(b.check().unwrap_err().reason, ExhaustionReason::Cancelled);
        assert_eq!(child.check().unwrap_err().reason, ExhaustionReason::Cancelled);
        assert!(!b.is_unlimited());
    }

    #[test]
    fn child_charges_propagate_to_parent() {
        let parent = Budget::with_work_cap(100);
        let child = parent.child(Some(1_000)); // local cap looser than parent
        child.charge(60).unwrap();
        assert_eq!(parent.work_done(), 60);
        // Parent's cap trips even though the child's own cap has room.
        let err = child.charge(60).unwrap_err();
        assert_eq!(err.reason, ExhaustionReason::WorkCapReached);
    }

    #[test]
    fn child_cap_is_local() {
        let parent = Budget::unlimited();
        let a = parent.child(Some(5));
        let b = parent.child(Some(5));
        a.charge(5).unwrap();
        assert_eq!(a.charge(1).unwrap_err().reason, ExhaustionReason::WorkCapReached);
        // Sibling has its own cap; parent is uncapped. The rejected charge
        // stopped at the tripping child, so the parent never saw it.
        b.charge(5).unwrap();
        assert_eq!(parent.work_done(), 10);
    }

    #[test]
    fn unlimited_child_of_unlimited_is_unlimited() {
        let parent = Budget::unlimited();
        assert!(parent.child(None).is_unlimited());
        assert!(!parent.child(Some(3)).is_unlimited());
        let capped = Budget::with_work_cap(1);
        assert!(!capped.child(None).is_unlimited());
    }

    #[test]
    fn concurrent_charging_is_safe_and_cap_respected() {
        let b = Budget::with_work_cap(10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    let mut ok = 0u64;
                    while b.charge(1).is_ok() {
                        ok += 1;
                    }
                    ok
                });
            }
        });
        // All 8 workers stopped; total successful work is at most the cap.
        assert!(b.work_done() >= 10_000);
    }

    #[test]
    fn report_formatting_and_merge() {
        let mut report = DegradationReport::complete();
        assert!(report.is_complete());
        assert_eq!(report.to_string(), "complete (no degradation)");
        report.record(StageStatus::Complete);
        assert!(report.is_complete());
        report.record(StageStatus::degraded(
            "mec_enumeration",
            Exhausted { reason: ExhaustionReason::WorkCapReached, work_done: 4096 },
        ));
        let mut other = DegradationReport::complete();
        other.record(StageStatus::degraded(
            "fill",
            Exhausted { reason: ExhaustionReason::DeadlineExpired, work_done: 123 },
        ));
        report.merge(other);
        assert!(!report.is_complete());
        assert_eq!(report.stages.len(), 2);
        let s = report.to_string();
        assert!(s.contains("mec_enumeration: work cap reached after 4096 work units"), "{s}");
        assert!(s.contains("fill: deadline expired after 123 work units"), "{s}");
    }
}
