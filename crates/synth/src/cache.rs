//! Statement-level concretization cache (§7, optimization 2).
//!
//! Alg. 2 synthesizes one program per DAG in the MEC, but different DAGs
//! share most parent sets — re-filling `GIVEN Pa ON a` for every DAG would
//! repeat the grouping scan. The cache keys on `(given, on)` and memoizes the
//! fill result (including the `⊥` outcome), and is shared across worker
//! threads when parallel synthesis is enabled.

use crate::fill::FilledStatement;
use crate::sketch::StatementSketch;
use std::collections::HashMap;
use std::sync::Mutex;

/// Hit/miss counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that required a fill.
    pub misses: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo table from statement sketches to fill outcomes.
#[derive(Debug, Default)]
pub struct StatementCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<StatementSketch, Option<FilledStatement>>,
    stats: CacheStats,
}

impl StatementCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized fill for `sketch`, computing it with `fill` on a
    /// miss. The `Option` is the fill outcome (`None` = `⊥`), memoized in
    /// both cases.
    pub fn get_or_fill<F>(&self, sketch: &StatementSketch, fill: F) -> Option<FilledStatement>
    where
        F: FnOnce() -> Option<FilledStatement>,
    {
        match self.try_get_or_fill(sketch, || Ok::<_, std::convert::Infallible>(fill())) {
            Ok(outcome) => outcome,
            Err(never) => match never {},
        }
    }

    /// Fallible [`get_or_fill`](Self::get_or_fill) for budget-governed
    /// fills: a fill aborted by exhaustion propagates its error and is *not*
    /// memoized (an aborted scan says nothing about the sketch), so a later
    /// run with budget left can still fill it.
    pub fn try_get_or_fill<F, E>(
        &self,
        sketch: &StatementSketch,
        fill: F,
    ) -> Result<Option<FilledStatement>, E>
    where
        F: FnOnce() -> Result<Option<FilledStatement>, E>,
    {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = inner.map.get(sketch).cloned() {
                inner.stats.hits += 1;
                return Ok(hit);
            }
            inner.stats.misses += 1;
        }
        // Fill outside the lock: concurrent misses on the same key may
        // duplicate work but never block each other on a long scan.
        let result = fill()?;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.entry(sketch.clone()).or_insert_with(|| result.clone());
        Ok(result)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// Number of memoized sketches.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// `true` when nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill::fill_statement_sketch;
    use guardrail_table::Table;

    fn table() -> Table {
        Table::from_csv_str("a,b\n0,x\n0,x\n1,y\n").unwrap()
    }

    #[test]
    fn memoizes_fills_and_bottoms() {
        let t = table();
        let cache = StatementCache::new();
        let sketch = StatementSketch::new(vec![0], 1);

        let first = cache.get_or_fill(&sketch, || fill_statement_sketch(&t, &sketch, 0.0));
        assert!(first.is_some());
        let mut called = false;
        let second = cache.get_or_fill(&sketch, || {
            called = true;
            None
        });
        assert!(!called, "second lookup must hit the cache");
        assert_eq!(second.unwrap().statement, first.unwrap().statement);

        // ⊥ results are memoized too.
        let noisy = StatementSketch::new(vec![1], 0);
        let bottom = cache.get_or_fill(&noisy, || None);
        assert!(bottom.is_none());
        let mut called = false;
        cache.get_or_fill(&noisy, || {
            called = true;
            None
        });
        assert!(!called);

        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 2, misses: 2 });
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_sketches_do_not_collide() {
        let cache = StatementCache::new();
        let a = StatementSketch::new(vec![0], 1);
        let b = StatementSketch::new(vec![0, 2], 1);
        cache.get_or_fill(&a, || None);
        let mut called = false;
        cache.get_or_fill(&b, || {
            called = true;
            None
        });
        assert!(called, "different given-set is a different key");
    }

    #[test]
    fn empty_cache_stats() {
        let cache = StatementCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
