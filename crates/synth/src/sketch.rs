//! The sketch language (Fig. 3 of the paper).

use guardrail_graph::Dag;
use guardrail_table::Schema;
use std::fmt;

/// `GIVEN a⁺ ON a HAVING □`: a statement with its branches left as a hole.
///
/// Attributes are column indices into the dataset being synthesized against;
/// sketches are an internal artifact of synthesis, unlike [`guardrail_dsl`]
/// programs which name attributes portably.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StatementSketch {
    /// Determinant attribute columns (sorted, deduplicated).
    pub given: Vec<usize>,
    /// Dependent attribute column.
    pub on: usize,
}

impl StatementSketch {
    /// Builds a sketch, normalizing the determinant set.
    ///
    /// # Panics
    /// Panics if `given` is empty or contains `on`.
    pub fn new(mut given: Vec<usize>, on: usize) -> Self {
        assert!(!given.is_empty(), "GIVEN clause cannot be empty");
        given.sort_unstable();
        given.dedup();
        assert!(!given.contains(&on), "dependent attribute cannot determine itself");
        Self { given, on }
    }

    /// Renders the sketch with schema names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        SketchDisplay { sketch: self, schema }
    }
}

struct SketchDisplay<'a> {
    sketch: &'a StatementSketch,
    schema: &'a Schema,
}

impl fmt::Display for SketchDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |i: usize| self.schema.field(i).map(|x| x.name()).unwrap_or("?");
        write!(f, "GIVEN ")?;
        for (k, &g) in self.sketch.given.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            f.write_str(name(g))?;
        }
        write!(f, " ON {} HAVING \u{25A1}", name(self.sketch.on))
    }
}

/// A program sketch: one statement sketch per constrained attribute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramSketch {
    /// Statement sketches in attribute order.
    pub statements: Vec<StatementSketch>,
}

impl ProgramSketch {
    /// Reads a sketch off a DAG's parent sets: every node with a non-empty
    /// parent set yields `GIVEN Pa(a) ON a HAVING □` (§4.2's
    /// statement ↔ SEM-function correspondence).
    pub fn from_dag(dag: &Dag) -> Self {
        let mut statements = Vec::new();
        for v in 0..dag.num_nodes() {
            let parents: Vec<usize> = dag.parents(v).iter().collect();
            if !parents.is_empty() {
                statements.push(StatementSketch::new(parents, v));
            }
        }
        Self { statements }
    }

    /// Number of statement sketches.
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// `true` for the empty sketch.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::{DataType, Schema};

    #[test]
    fn sketch_from_chain_dag() {
        // zip → city → state.
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sketch = ProgramSketch::from_dag(&dag);
        assert_eq!(sketch.len(), 2);
        assert_eq!(sketch.statements[0], StatementSketch::new(vec![0], 1));
        assert_eq!(sketch.statements[1], StatementSketch::new(vec![1], 2));
    }

    #[test]
    fn multi_parent_sketch() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let sketch = ProgramSketch::from_dag(&dag);
        assert_eq!(sketch.statements, vec![StatementSketch::new(vec![0, 1], 2)]);
    }

    #[test]
    fn empty_dag_empty_sketch() {
        assert!(ProgramSketch::from_dag(&Dag::new(4)).is_empty());
    }

    #[test]
    fn normalization() {
        let s = StatementSketch::new(vec![3, 1, 3], 0);
        assert_eq!(s.given, vec![1, 3]);
    }

    #[test]
    fn display_uses_names() {
        let schema = Schema::from_pairs([("zip", DataType::Int), ("city", DataType::Str)]).unwrap();
        let s = StatementSketch::new(vec![0], 1);
        assert_eq!(s.display(&schema).to_string(), "GIVEN zip ON city HAVING \u{25A1}");
    }

    #[test]
    #[should_panic(expected = "determine itself")]
    fn self_dependence_rejected() {
        StatementSketch::new(vec![0, 1], 1);
    }
}
