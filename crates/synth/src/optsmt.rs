//! The sketch-free "OptSMT-style" baseline (§3.1 and §8.3).
//!
//! The paper implements a νZ-based synthesizer that encodes every row as a
//! soft constraint and searches the unsketched program space; it generates
//! tens of millions of clauses and times out even on the 4-attribute
//! dataset. We reproduce that negative result with an honest cost model: the
//! baseline enumerates **every** candidate statement sketch (all
//! `(determinant set, dependent)` pairs up to `max_given_size`) and accounts
//! one *constraint* per (candidate branch × covered row) — the unit of work
//! an OptSMT encoding pays per soft clause. The run's [`Budget`] plays the
//! role of the wall-clock timeout: constraints are charged as work units, so
//! either a work cap (the classic "constraint budget") or a deadline trips
//! the search into [`OptSmtOutcome::Timeout`].
//!
//! On tiny inputs the search completes and yields the loss-minimal program;
//! on realistic schemas the budget trips first, which is the paper's point.

use crate::fill::{fill_statement_sketch, FilledStatement};
use crate::sketch::StatementSketch;
use guardrail_dsl::ast::Program;
use guardrail_governor::Budget;
use guardrail_table::Table;

/// Stage name for the baseline's constraint generation.
pub const OPTSMT_STAGE: &str = "optsmt_constraints";

/// The constraint cap standing in for the paper's 24-hour timeout; pair it
/// with [`Budget::with_work_cap`] for the classic configuration.
pub const DEFAULT_CONSTRAINT_CAP: u64 = 5_000_000;

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct OptSmtConfig {
    /// Noise tolerance, as in the main synthesizer.
    pub epsilon: f64,
    /// Largest determinant set enumerated.
    pub max_given_size: usize,
}

impl Default for OptSmtConfig {
    fn default() -> Self {
        Self { epsilon: 0.02, max_given_size: 3 }
    }
}

/// What the baseline produced.
#[derive(Debug, Clone)]
pub enum OptSmtOutcome {
    /// The search completed within budget.
    Solved {
        /// Best program found (max coverage per dependent, ε-valid).
        program: Program,
        /// Coverage of the returned program.
        coverage: f64,
        /// Constraints generated during the search.
        constraints: u64,
        /// Candidate sketches enumerated.
        candidates: u64,
    },
    /// The constraint budget was exhausted — the paper's observed outcome.
    Timeout {
        /// Constraints generated before giving up.
        constraints: u64,
        /// Candidates processed before giving up.
        candidates: u64,
        /// Total size of the candidate space that *would* have been explored.
        search_space: u64,
    },
}

/// Number of candidate statement sketches for `attrs` attributes with
/// determinant sets of size `1..=max_given`: `n · Σ_k C(n−1, k)`.
pub fn candidate_space(attrs: usize, max_given: usize) -> u64 {
    let mut per_dependent = 0u64;
    for k in 1..=max_given.min(attrs - 1) {
        per_dependent = per_dependent.saturating_add(binomial(attrs - 1, k));
    }
    (attrs as u64).saturating_mul(per_dependent)
}

fn binomial(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    result
}

/// Runs the sketch-free baseline under `budget` (one work unit per generated
/// constraint).
pub fn optsmt_synthesize(table: &Table, config: &OptSmtConfig, budget: &Budget) -> OptSmtOutcome {
    let attrs = table.num_columns();
    let rows = table.num_rows() as u64;
    let search_space = candidate_space(attrs, config.max_given_size);

    let mut smt_span = guardrail_obs::span(OPTSMT_STAGE);
    smt_span.arg("search_space", search_space);
    let mut constraints = 0u64;
    let mut candidates = 0u64;
    // Best ε-valid statement per dependent, by coverage.
    let mut best: Vec<Option<FilledStatement>> = vec![None; attrs];

    for (on, slot) in best.iter_mut().enumerate() {
        let others: Vec<usize> = (0..attrs).filter(|&a| a != on).collect();
        for size in 1..=config.max_given_size.min(others.len()) {
            for combo in combinations(&others, size) {
                candidates += 1;
                let sketch = StatementSketch::new(combo, on);
                let filled = fill_statement_sketch(table, &sketch, config.epsilon);
                // Cost model: every candidate branch contributes one soft
                // clause per covered row; candidates that fill to ⊥ still
                // paid for the grouping scan (one clause per row).
                let branch_cost = filled
                    .as_ref()
                    .map(|f| (f.statement.branches.len() as u64).saturating_mul(f.support as u64))
                    .unwrap_or(0);
                let cost = rows.saturating_add(branch_cost);
                constraints = constraints.saturating_add(cost);
                if budget.charge(cost).is_err() {
                    smt_span.arg("candidates", candidates);
                    smt_span.arg("constraints", constraints);
                    smt_span.arg("timeout", 1);
                    return OptSmtOutcome::Timeout { constraints, candidates, search_space };
                }
                if let Some(f) = filled {
                    let better = match &*slot {
                        None => true,
                        Some(cur) => f.coverage > cur.coverage,
                    };
                    if better {
                        *slot = Some(f);
                    }
                }
            }
        }
    }

    smt_span.arg("candidates", candidates);
    smt_span.arg("constraints", constraints);
    let chosen: Vec<FilledStatement> = best.into_iter().flatten().collect();
    let coverage = if chosen.is_empty() {
        0.0
    } else {
        chosen.iter().map(|f| f.coverage).sum::<f64>() / chosen.len() as f64
    };
    let program = Program { statements: chosen.into_iter().map(|f| f.statement).collect() };
    OptSmtOutcome::Solved { program, coverage, constraints, candidates }
}

/// All `size`-subsets of `items`, in lexicographic order.
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    if size > items.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_table() -> Table {
        Table::from_csv_str("a,b\n0,x\n0,x\n1,y\n1,y\n").unwrap()
    }

    #[test]
    fn solves_tiny_instance() {
        let budget = Budget::with_work_cap(DEFAULT_CONSTRAINT_CAP);
        match optsmt_synthesize(&tiny_table(), &OptSmtConfig::default(), &budget) {
            OptSmtOutcome::Solved { program, coverage, constraints, candidates } => {
                assert!(coverage > 0.99);
                assert!(!program.statements.is_empty());
                assert!(constraints > 0);
                assert_eq!(candidates, 2); // a→b and b→a
            }
            OptSmtOutcome::Timeout { .. } => panic!("tiny instance must solve"),
        }
    }

    #[test]
    fn times_out_under_budget() {
        let out =
            optsmt_synthesize(&tiny_table(), &OptSmtConfig::default(), &Budget::with_work_cap(3));
        match out {
            OptSmtOutcome::Timeout { constraints, search_space, .. } => {
                assert!(constraints > 3);
                assert_eq!(search_space, 2);
            }
            OptSmtOutcome::Solved { .. } => panic!("budget of 3 cannot complete"),
        }
    }

    #[test]
    fn candidate_space_blows_up_combinatorially() {
        // 4 attrs: 4 · (C(3,1)+C(3,2)+C(3,3)) = 4·7 = 28.
        assert_eq!(candidate_space(4, 3), 28);
        // 15 attrs (Adult): 15 · (14 + 91 + 364) = 7035.
        assert_eq!(candidate_space(15, 3), 7035);
        // 40 attrs (Cylinder Bands): 40 · (39 + 741 + 9139) = 396,760
        // candidate *sketches*, each multiplied by ~#configs branches × rows
        // of clauses in a real encoding.
        assert_eq!(candidate_space(40, 3), 396_760);
        assert!(candidate_space(40, 5) > 25_000_000);
    }

    #[test]
    fn sketchfree_search_finds_both_orientations_symmetric() {
        // The baseline has no MEC guidance: with a = b exactly it keeps one
        // statement per dependent, i.e. both a→b and b→a (the saturated
        // program p₂ failure mode of Example 3.1).
        match optsmt_synthesize(&tiny_table(), &OptSmtConfig::default(), &Budget::unlimited()) {
            OptSmtOutcome::Solved { program, .. } => {
                assert_eq!(program.statements.len(), 2, "{program}");
            }
            _ => panic!("must solve"),
        }
    }
}
