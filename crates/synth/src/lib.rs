//! Sketch-based program synthesis (§3–§4 of the paper).
//!
//! The synthesis problem — find an ε-valid, maximal-coverage program of the
//! DSL from noisy data — is split into two stages exactly as in the paper:
//!
//! 1. **Sketch learning** ([`guardrail-pgm`]): learn the CPDAG of the data's
//!    Markov equivalence class; each DAG in the class induces a program
//!    sketch `{ GIVEN Pa(a) ON a HAVING □ }` ([`sketch`]).
//! 2. **Synthesis from sketch** ([`fill`], Alg. 1): for each statement
//!    sketch, enumerate the warranted conditions (observed determinant
//!    valuations), pick the loss-minimizing literal per condition, and keep
//!    the ε-valid branches.
//!
//! [`mec`] implements Alg. 2: enumerate the DAGs of the MEC, synthesize a
//! concrete program per DAG (deduplicated through the statement-level
//! [`cache`] of §7), and return the program with the highest coverage.
//!
//! [`optsmt`] is the scalability baseline of §8.3: a sketch-free enumerative
//! synthesizer with explicit constraint accounting that demonstrates the
//! search-space blow-up the MEC restriction avoids.
//!
//! [`nontrivial`] provides the statistical LNT/GNT checks of Defs. 4.1–4.2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod fill;
pub mod mec;
pub mod nontrivial;
pub mod optsmt;
pub mod sketch;

pub use cache::{CacheStats, StatementCache};
pub use config::SynthesisConfig;
pub use fill::{
    fill_program_sketch, fill_statement_sketch, fill_statement_sketch_governed, FilledStatement,
    FILL_STAGE,
};
pub use mec::{
    synthesize, synthesize_from_cpdag, synthesize_from_cpdag_governed, synthesize_governed,
    SynthesisOutcome,
};
pub use optsmt::{
    optsmt_synthesize, OptSmtConfig, OptSmtOutcome, DEFAULT_CONSTRAINT_CAP, OPTSMT_STAGE,
};
pub use sketch::{ProgramSketch, StatementSketch};
