//! Statistical LNT / GNT checks (Defs. 4.1 and 4.2).
//!
//! A statement sketch is **locally non-trivial** when its dependent attribute
//! is statistically dependent on its determinant set; a program sketch is
//! **globally non-trivial** when every statement stays non-trivial after
//! conditioning on the determinant attributes of the other statements —
//! i.e. each statement contributes information the rest of the program does
//! not already carry (ruling out `Stmt₄ = GIVEN PostalCode ON State` from
//! Example 3.1/4.1).
//!
//! Theorem 4.1 guarantees sketches read off a faithful PGM are GNT, so the
//! synthesis pipeline never *needs* these checks; they exist as a validation
//! surface (tests assert the theorem empirically) and for auditing
//! hand-written sketches.

use crate::sketch::{ProgramSketch, StatementSketch};
use guardrail_graph::NodeSet;
use guardrail_pgm::{DataOracle, EncodedData, IndependenceOracle};

/// Local non-triviality (Def. 4.1): `a_j ⫫̸ a_k` for the determinant set
/// `a_k`, judged by a G² test at level `alpha`.
///
/// Multi-attribute determinant sets are tested jointly by conditioning-free
/// dependence against each member: the sketch is LNT when the dependent is
/// marginally dependent on at least one determinant (a necessary condition
/// that is also sufficient under faithfulness, since an edge implies
/// dependence).
pub fn is_locally_nontrivial(data: &EncodedData, sketch: &StatementSketch, alpha: f64) -> bool {
    let oracle = DataOracle::new(data).with_alpha(alpha);
    sketch.given.iter().any(|&k| !oracle.independent(sketch.on, k, NodeSet::EMPTY))
}

/// Global non-triviality (Def. 4.2), statistical reading: for every
/// statement `s` and every other statement `s'`, the dependence of `s` must
/// survive conditioning on `s'`'s determinant set
/// (`a_j ⫫̸ a_k | a_z`, Theorem 4.1's reformulation).
///
/// Conditioning sets are capped at `max_cond` attributes (sparse data cannot
/// support deeper tests); untestably sparse conditionings count in the
/// sketch's favor, mirroring the PC oracle's conservatism.
pub fn is_globally_nontrivial(
    data: &EncodedData,
    sketch: &ProgramSketch,
    alpha: f64,
    max_cond: usize,
) -> bool {
    if !sketch.statements.iter().all(|s| is_locally_nontrivial(data, s, alpha)) {
        return false;
    }
    let oracle = DataOracle::new(data).with_alpha(alpha);
    for (i, s) in sketch.statements.iter().enumerate() {
        for (j, other) in sketch.statements.iter().enumerate() {
            if i == j {
                continue;
            }
            // a_z: the other statement's determinant attributes, minus any
            // attribute of s itself.
            let mut z = NodeSet::EMPTY;
            for &a in &other.given {
                if a != s.on && !s.given.contains(&a) {
                    z.insert(a);
                }
            }
            if z.is_empty() || z.len() > max_cond {
                continue;
            }
            let survives = s.given.iter().any(|&k| !oracle.independent(s.on, k, z));
            if !survives {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// zip → city → state chain data (codes), with light noise.
    fn chain_data(n: usize) -> EncodedData {
        let mut rng = xorshift(77);
        let mut zip = Vec::new();
        let mut city = Vec::new();
        let mut state = Vec::new();
        for _ in 0..n {
            let z = (rng() % 6) as u32;
            let c = if rng() % 50 == 0 { (rng() % 3) as u32 } else { z / 2 };
            let s = if rng() % 50 == 0 { (rng() % 2) as u32 } else { u32::from(c == 2) };
            zip.push(z);
            city.push(c);
            state.push(s);
        }
        EncodedData::from_parts(
            vec![zip, city, state],
            vec![6, 3, 2],
            vec!["zip".into(), "city".into(), "state".into()],
        )
    }

    #[test]
    fn lnt_detects_dependence_and_independence() {
        let data = chain_data(5000);
        assert!(is_locally_nontrivial(&data, &StatementSketch::new(vec![0], 1), 0.05));
        assert!(is_locally_nontrivial(&data, &StatementSketch::new(vec![1], 2), 0.05));
        // zip is *marginally* dependent on state (through city), so that
        // sketch is LNT too — LNT alone cannot rule it out…
        assert!(is_locally_nontrivial(&data, &StatementSketch::new(vec![0], 2), 0.05));
    }

    #[test]
    fn gnt_rules_out_redundant_statement() {
        // …but GNT does: GIVEN zip ON state vanishes given city (Example 4.1).
        let data = chain_data(8000);
        let succinct = ProgramSketch {
            statements: vec![StatementSketch::new(vec![0], 1), StatementSketch::new(vec![1], 2)],
        };
        assert!(is_globally_nontrivial(&data, &succinct, 0.05, 3));

        let redundant = ProgramSketch {
            statements: vec![
                StatementSketch::new(vec![0], 1),
                StatementSketch::new(vec![1], 2),
                StatementSketch::new(vec![0], 2), // zip ⫫ state | city
            ],
        };
        assert!(!is_globally_nontrivial(&data, &redundant, 0.05, 3));
    }

    #[test]
    fn lnt_rejects_pure_noise() {
        let mut rng = xorshift(5);
        let n = 4000;
        let a: Vec<u32> = (0..n).map(|_| (rng() % 4) as u32).collect();
        let b: Vec<u32> = (0..n).map(|_| (rng() % 4) as u32).collect();
        let data = EncodedData::from_parts(vec![a, b], vec![4, 4], vec!["a".into(), "b".into()]);
        assert!(!is_locally_nontrivial(&data, &StatementSketch::new(vec![0], 1), 0.01));
    }

    #[test]
    fn theorem_4_1_holds_empirically() {
        // The sketch read off the true DAG's parent sets is GNT.
        let data = chain_data(8000);
        let from_truth = ProgramSketch {
            statements: vec![StatementSketch::new(vec![0], 1), StatementSketch::new(vec![1], 2)],
        };
        assert!(is_globally_nontrivial(&data, &from_truth, 0.05, 3));
    }
}
