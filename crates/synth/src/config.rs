//! Synthesis configuration.

use guardrail_governor::Parallelism;
use guardrail_pgm::LearnConfig;

/// End-to-end synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisConfig {
    /// Branch noise tolerance ε (Eqn. 3). The paper recommends 0.01–0.05
    /// (Fig. 7); 0.02 is our default.
    pub epsilon: f64,
    /// Structure-learning parameters (sampler, α, PC depth).
    pub learn: LearnConfig,
    /// MEC enumeration cap (Alg. 2's "maximal enumeration of DAGs"),
    /// enforced as a child work cap of the run's [`Budget`]. The paper
    /// observes MEC sizes up to 216 on its 12 datasets; 4096 leaves ample
    /// headroom while bounding pathological inputs.
    ///
    /// [`Budget`]: guardrail_governor::Budget
    pub max_dags: usize,
    /// Share statement fills across DAGs (§7's statement-level cache).
    pub use_cache: bool,
    /// Worker-count policy for the synthesis hot paths: per-DAG program
    /// fills when the MEC has several members, per-statement sketch fills
    /// when it does not. Results are identical for any worker count.
    pub parallelism: Parallelism,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.02,
            learn: LearnConfig::default(),
            max_dags: 4096,
            use_cache: true,
            parallelism: Parallelism::Auto,
        }
    }
}

impl SynthesisConfig {
    /// Overrides ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0,1)");
        self.epsilon = epsilon;
        self
    }

    /// Overrides the worker-count policy for every pipeline stage this config
    /// reaches (structure learning *and* synthesis).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self.learn.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = SynthesisConfig::default();
        assert!((0.01..=0.05).contains(&c.epsilon));
        assert!(c.use_cache);
        assert_eq!(c.max_dags, 4096);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_bounds() {
        SynthesisConfig::default().with_epsilon(1.0);
    }
}
