//! Alg. 2: optimal program synthesis from the MEC.
//!
//! ```text
//! for each DAG G in the (budgeted) MEC enumeration:
//!     sketch  ← parent sets of G           (ProgramSketch::from_dag)
//!     program ← fill sketch per Alg. 1     (deduplicated via the cache)
//! return the program with the highest coverage
//! ```
//!
//! Per-DAG fills share the statement cache (§7) because DAGs in one MEC
//! differ only in reversible-edge orientation — most parent sets repeat.
//! The per-DAG work is spread over worker threads via the governor's
//! [`parallel_map`] (the cache is `Sync`); a singleton MEC parallelizes over
//! its statements instead so the worker pool is never idle.
//!
//! [`parallel_map`]: guardrail_governor::parallel_map

use crate::cache::{CacheStats, StatementCache};
use crate::config::SynthesisConfig;
use crate::fill::{
    fill_sketch_statements_governed, fill_statement_sketch_governed, FilledStatement,
};
use crate::sketch::ProgramSketch;
use guardrail_dsl::ast::Program;
use guardrail_governor::{parallel_map, Budget, DegradationReport, Parallelism, StageStatus};
use guardrail_graph::{enumerate_extensions, Dag, Pdag};
use guardrail_obs::{self as obs, PipelineReport, StageReport};
use guardrail_pgm::{learn_cpdag_governed, StatsCacheStats};
use guardrail_table::Table;
use std::time::Instant;

/// Result of an end-to-end synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The max-coverage ε-valid program `p*` found within budget.
    pub program: Program,
    /// Coverage of `p*` (average statement coverage).
    pub coverage: f64,
    /// The learned CPDAG.
    pub cpdag: Pdag,
    /// Number of DAGs enumerated from the MEC.
    pub mec_size: usize,
    /// Whether enumeration hit its cap or the run's budget.
    pub truncated: bool,
    /// The DAG whose sketch produced `p*` (`None` when the MEC is empty).
    pub chosen_dag: Option<Dag>,
    /// Statement-cache counters for the run.
    pub cache_stats: CacheStats,
    /// Sufficient-statistics cache counters from structure learning (zeros
    /// when synthesis started from a pre-learned CPDAG).
    pub oracle_cache: StatsCacheStats,
    /// Per-statement fill statistics of the winning program.
    pub statements: Vec<FilledStatement>,
    /// Which pipeline stages (if any) ran out of budget. An exhausted run is
    /// not an error: `program` is the best result found so far.
    pub degradation: DegradationReport,
    /// Deterministic stage-tree report of the run — wall times, work units,
    /// cache ratios, and degradations — built from the pipeline's own
    /// timings whether or not a tracing recorder is armed.
    pub report: PipelineReport,
}

/// Learns a CPDAG from `table` and synthesizes the optimal program (sketch
/// learning + Alg. 2).
pub fn synthesize(table: &Table, config: &SynthesisConfig) -> SynthesisOutcome {
    synthesize_governed(table, config, &Budget::unlimited())
}

/// Budgeted [`synthesize`]: structure learning, MEC enumeration, and sketch
/// fills all charge `budget`, and each stage degrades to its best partial
/// result on exhaustion (recorded in
/// [`degradation`](SynthesisOutcome::degradation)).
pub fn synthesize_governed(
    table: &Table,
    config: &SynthesisConfig,
    budget: &Budget,
) -> SynthesisOutcome {
    let run_clock = Instant::now();
    let work_before = budget.work_done();
    let mut run_span = obs::span("synthesis");
    run_span.arg("rows", table.num_rows() as u64);

    let mut degradation = DegradationReport::complete();
    let learn_clock = Instant::now();
    let learned = learn_cpdag_governed(table, &config.learn, budget);
    let learn_ns = learn_clock.elapsed().as_nanos() as u64;
    degradation.record(learned.status);

    let mut outcome = synthesize_from_cpdag_governed(table, &learned.cpdag, config, budget);
    degradation.merge(std::mem::replace(&mut outcome.degradation, DegradationReport::complete()));
    outcome.oracle_cache = learned.cache_stats;

    // Re-root the report: structure learning first, then the stages the
    // from-CPDAG pass already timed, all under one `synthesis` node.
    let cs = learned.cache_stats;
    let learn_stage = StageReport::new("structure_learning")
        .wall_ns(learn_ns)
        .metric("ci_cache_hits", cs.result_hits)
        .metric("ci_cache_misses", cs.result_misses)
        .metric("ci_cache_hit_rate", percent(cs.result_hits, cs.result_misses))
        .metric("pack_extensions", cs.pack_extensions);
    let mut root = StageReport::new("synthesis").child(learn_stage);
    root.children.append(&mut outcome.report.stages);
    root.wall_ns = run_clock.elapsed().as_nanos() as u64;
    root.metrics.push(("work_units".into(), (budget.work_done() - work_before).to_string()));
    outcome.report = PipelineReport::new().stage(root);
    outcome.report.degradations = degradation.stages.iter().map(|d| d.to_string()).collect();
    outcome.degradation = degradation;
    run_span.arg("work_units", budget.work_done() - work_before);
    outcome
}

/// Renders a hit/miss pair as a percentage (`"—"` when nothing was
/// counted).
fn percent(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        return "—".into();
    }
    format!("{:.1}%", hits as f64 * 100.0 / total as f64)
}

/// Alg. 2 proper: synthesis given an already-learned CPDAG.
pub fn synthesize_from_cpdag(
    table: &Table,
    cpdag: &Pdag,
    config: &SynthesisConfig,
) -> SynthesisOutcome {
    synthesize_from_cpdag_governed(table, cpdag, config, &Budget::unlimited())
}

/// Budgeted [`synthesize_from_cpdag`].
pub fn synthesize_from_cpdag_governed(
    table: &Table,
    cpdag: &Pdag,
    config: &SynthesisConfig,
    budget: &Budget,
) -> SynthesisOutcome {
    let mut degradation = DegradationReport::complete();
    // Enumeration runs under a child cap so `max_dags` bounds the MEC even
    // on an otherwise unlimited budget (one work unit per accepted DAG).
    let enum_clock = Instant::now();
    let mut enum_span = obs::span("mec_enumeration");
    let enum_budget = budget.child(Some(config.max_dags as u64));
    let (dags, enum_status) = enumerate_extensions(cpdag, &enum_budget);
    let truncated = !enum_status.is_complete();
    enum_span.arg("dags", dags.len() as u64);
    enum_span.arg("truncated", truncated as u64);
    drop(enum_span);
    let enum_ns = enum_clock.elapsed().as_nanos() as u64;
    degradation.record(enum_status);
    let cache = StatementCache::new();

    // With several DAGs the outer map saturates the workers; a singleton MEC
    // hands the parallelism down to its statements instead. Never both, so
    // thread counts stay bounded by the configured policy.
    let stmt_parallelism =
        if dags.len() <= 1 { config.parallelism } else { Parallelism::Sequential };

    let fill_dag = |dag: &Dag| -> (f64, Vec<FilledStatement>, StageStatus) {
        let sketch = ProgramSketch::from_dag(dag);
        // Anytime: exhausted statements are skipped, completed ones kept —
        // the argmax below still sees a valid (partial) candidate program.
        let (filled, skipped, status) =
            fill_sketch_statements_governed(&sketch, stmt_parallelism, |s| {
                if config.use_cache {
                    cache.try_get_or_fill(s, || {
                        fill_statement_sketch_governed(table, s, config.epsilon, budget)
                    })
                } else {
                    fill_statement_sketch_governed(table, s, config.epsilon, budget)
                }
            });
        // Budget-skipped statements count as zeros in the average, so a
        // partial fill never scores above the complete fill of the same DAG
        // (⊥ statements stay excluded, exactly as in an unbudgeted run).
        let coverage = if filled.is_empty() {
            0.0
        } else {
            filled.iter().map(|f| f.coverage).sum::<f64>() / (filled.len() + skipped) as f64
        };
        (coverage, filled, status)
    };

    let fill_clock = Instant::now();
    let mut fill_span = obs::span("sketch_fill");
    let results: Vec<(f64, Vec<FilledStatement>, StageStatus)> =
        parallel_map(config.parallelism, &dags, &fill_dag);
    fill_span.arg("dags", dags.len() as u64);
    fill_span.arg("cache_hits", cache.stats().hits as u64);
    fill_span.arg("cache_misses", cache.stats().misses as u64);
    drop(fill_span);
    let fill_ns = fill_clock.elapsed().as_nanos() as u64;

    // The budget is shared, so once it exhausts every remaining fill trips
    // on it; reporting the first degraded fill covers the stage.
    if let Some((_, _, status)) = results.iter().find(|(_, _, s)| !s.is_complete()) {
        degradation.record(status.clone());
    }

    // argmax coverage; ties break toward more statements (a program that
    // constrains more attributes at equal coverage has strictly more
    // discriminative power), then toward the first in enumeration order.
    let best = results
        .iter()
        .enumerate()
        .max_by(|(ia, (ca, fa, _)), (ib, (cb, fb, _))| {
            ca.partial_cmp(cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(fa.len().cmp(&fb.len()))
                .then(ib.cmp(ia))
        })
        .map(|(i, _)| i);

    let (coverage, statements, chosen_dag) = match best {
        Some(i) => {
            let (c, f, _) = results[i].clone();
            (c, f, Some(dags[i].clone()))
        }
        None => (0.0, Vec::new(), None),
    };
    let program = Program { statements: statements.iter().map(|f| f.statement.clone()).collect() };

    let cache_stats = cache.stats();
    let enum_stage = StageReport::new("mec_enumeration")
        .wall_ns(enum_ns)
        .metric("dags", dags.len() as u64)
        .metric("truncated", truncated as u64);
    let fill_stage = StageReport::new("sketch_fill")
        .wall_ns(fill_ns)
        .metric("statements", statements.len() as u64)
        .metric("stmt_cache_hits", cache_stats.hits as u64)
        .metric("stmt_cache_misses", cache_stats.misses as u64)
        .metric("stmt_cache_hit_rate", percent(cache_stats.hits as u64, cache_stats.misses as u64));
    let mut report = PipelineReport::new().stage(enum_stage).stage(fill_stage);
    report.degradations = degradation.stages.iter().map(|d| d.to_string()).collect();

    SynthesisOutcome {
        program,
        coverage,
        cpdag: cpdag.clone(),
        mec_size: dags.len(),
        truncated,
        chosen_dag,
        cache_stats,
        oracle_cache: StatsCacheStats::default(),
        statements,
        degradation,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_datasets::{cancer_network, random_sem, RandomSemConfig};
    use guardrail_pgm::{LearnConfig, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_table(rows: usize) -> Table {
        // zip → city → state with tiny noise, via a hand-built SEM.
        use guardrail_datasets::{DiscreteSem, NodeFunction};
        use guardrail_graph::Dag;
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sem = DiscreteSem::new(
            dag,
            vec![6, 3, 2],
            vec!["zip".into(), "city".into(), "state".into()],
            vec![
                NodeFunction::Root { probs: vec![1.0 / 6.0; 6] },
                NodeFunction::Deterministic { table: vec![0, 0, 1, 1, 2, 2], noise: 0.01 },
                NodeFunction::Deterministic { table: vec![0, 0, 1], noise: 0.01 },
            ],
        );
        let mut rng = StdRng::seed_from_u64(42);
        sem.sample(rows, &mut rng)
    }

    fn config() -> SynthesisConfig {
        SynthesisConfig {
            learn: LearnConfig { aux_pairs: 20_000, ..LearnConfig::default() },
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn synthesizes_chain_structure() {
        let table = chain_table(4000);
        let outcome = synthesize(&table, &config());
        assert!(!outcome.program.statements.is_empty(), "no program synthesized");
        assert!(outcome.coverage > 0.9, "coverage = {}", outcome.coverage);
        // The winning program's statements must reflect the chain: city is
        // explained by zip (or vice versa), state by city — never state
        // directly from zip (GNT would be violated).
        for s in &outcome.program.statements {
            assert!(
                !(s.given == vec!["zip".to_string()] && s.on == "state"),
                "non-succinct statement GIVEN zip ON state synthesized"
            );
        }
        assert!(outcome.mec_size >= 1);
    }

    #[test]
    fn detects_injected_errors_end_to_end() {
        let table = chain_table(3000);
        let outcome = synthesize(&table, &config());
        let mut dirty = table.clone();
        // Corrupt city on row 7.
        let bad = dirty.get(7, 1).map(|v| match v {
            guardrail_table::Value::Int(i) => guardrail_table::Value::Int((i + 1) % 3),
            other => other,
        });
        dirty.set(7, 1, bad.unwrap()).unwrap();
        let compiled = outcome.program.compile_for(&dirty).unwrap();
        let rows = compiled.violating_rows(&dirty);
        assert!(rows.contains(&7), "corrupted row not flagged: {rows:?}");
    }

    #[test]
    fn cache_is_effective_across_mec() {
        let table = chain_table(2000);
        let outcome = synthesize(&table, &config());
        if outcome.mec_size > 1 {
            assert!(
                outcome.cache_stats.hits > 0,
                "MEC of size {} produced no cache hits",
                outcome.mec_size
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let table = chain_table(1500);
        let seq = synthesize(&table, &config().with_parallelism(Parallelism::Sequential));
        for threads in [2, 4, 16] {
            let par = synthesize(&table, &config().with_parallelism(Parallelism::threads(threads)));
            assert_eq!(seq.program, par.program, "{threads} threads");
            assert_eq!(seq.coverage, par.coverage, "{threads} threads");
        }
        let nocache = synthesize(&table, &SynthesisConfig { use_cache: false, ..config() });
        assert_eq!(seq.program, nocache.program);
    }

    #[test]
    fn unlimited_budget_matches_ungoverned() {
        let table = chain_table(1000);
        let a = synthesize(&table, &config());
        let b = synthesize_governed(&table, &config(), &Budget::unlimited());
        assert_eq!(a.program, b.program);
        assert_eq!(a.coverage, b.coverage);
        assert!(b.degradation.is_complete());
        assert!(!b.truncated);
    }

    #[test]
    fn zero_budget_degrades_to_valid_outcome() {
        let table = chain_table(500);
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let outcome = synthesize_governed(&table, &config(), &budget);
        assert!(!outcome.degradation.is_complete());
        // No DAG survives a dead budget, so the anytime result is empty —
        // but it is a result, not a panic or an error.
        assert!(outcome.program.statements.is_empty());
        assert_eq!(outcome.coverage, 0.0);
    }

    #[test]
    fn work_capped_budget_yields_subset_quality() {
        // At a fixed CPDAG, a budget can only drop DAGs from the argmax or
        // truncate fills (scored with skipped statements as zeros), so the
        // degraded coverage never exceeds the unbudgeted optimum.
        let table = chain_table(1500);
        let cpdag = guardrail_pgm::learn_cpdag(&table, &config().learn);
        let full = synthesize_from_cpdag(&table, &cpdag, &config());
        for cap in [1, 10, 1000, 100_000] {
            let degraded = synthesize_from_cpdag_governed(
                &table,
                &cpdag,
                &config(),
                &Budget::with_work_cap(cap),
            );
            assert!(
                degraded.coverage <= full.coverage + 1e-12,
                "cap {cap}: degraded coverage {} > full {}",
                degraded.coverage,
                full.coverage
            );
        }
    }

    #[test]
    fn cancer_network_synthesis() {
        let sem = cancer_network(0.97);
        let mut rng = StdRng::seed_from_u64(9);
        let table = sem.sample(6000, &mut rng);
        let outcome = synthesize(&table, &config());
        // The near-deterministic symptom links (cancer → xray, cancer → dysp)
        // should be discovered.
        let constrained: Vec<&str> =
            outcome.program.statements.iter().map(|s| s.on.as_str()).collect();
        assert!(
            constrained.contains(&"xray") || constrained.contains(&"dysp"),
            "no symptom constraint found; got {constrained:?}"
        );
    }

    #[test]
    fn random_sem_synthesis_is_deterministic() {
        let sem = random_sem(&RandomSemConfig { attrs: 6, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(3);
        let table = sem.sample(2000, &mut rng);
        let a = synthesize(&table, &config());
        let b = synthesize(&table, &config());
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn identity_sampler_option_works() {
        let table = chain_table(3000);
        let cfg = SynthesisConfig {
            learn: LearnConfig { sampler: Sampler::Identity, ..LearnConfig::default() },
            ..SynthesisConfig::default()
        };
        let outcome = synthesize(&table, &cfg);
        // Low-cardinality chain is learnable even on raw data.
        assert!(outcome.coverage > 0.5, "coverage = {}", outcome.coverage);
    }
}
