//! Alg. 1: filling program sketches.
//!
//! For one statement sketch `GIVEN det ON dep HAVING □`:
//!
//! 1. The **warranted conditions** `C = comb(det)` are the determinant
//!    valuations actually observed in the data (a single grouping pass; the
//!    unobserved part of the Cartesian product can never produce an ε-valid
//!    branch since its support is zero).
//! 2. For each condition, the loss-minimizing literal `l* = argmin_l
//!    L(b*[l], D)` is the **mode** of the dependent attribute within the
//!    group — computed from the same grouping pass.
//! 3. A branch is kept iff it is ε-valid: `loss ≤ |D^b| · ε`.

use crate::sketch::{ProgramSketch, StatementSketch};
use guardrail_dsl::ast::{Branch, Condition, Program, Statement};
use guardrail_governor::{parallel_map, Budget, Exhausted, Parallelism, StageStatus};
use guardrail_obs as obs;
use guardrail_table::{Table, NULL_CODE};
use std::collections::HashMap;

/// Stage name reported when a fill runs out of budget.
pub const FILL_STAGE: &str = "sketch_fill";

/// Rows grouped per budget charge: fine enough that a deadline interrupts a
/// scan within microseconds, coarse enough that the atomic is off the
/// per-row hot path.
const CHARGE_CHUNK: u64 = 4096;

/// A concretized statement together with its quality statistics.
#[derive(Debug, Clone)]
pub struct FilledStatement {
    /// The AST statement (attribute names resolved from the table schema).
    pub statement: Statement,
    /// `|D^s|`: rows covered by the kept branches.
    pub support: usize,
    /// Total loss of the kept branches.
    pub loss: usize,
    /// `cov(s, D) = |D^s| / |D|`.
    pub coverage: f64,
}

/// Fills one statement sketch (Alg. 1, `FillStmtSketch`). Returns `None`
/// (the algorithm's `⊥`) when no branch is ε-valid.
pub fn fill_statement_sketch(
    table: &Table,
    sketch: &StatementSketch,
    epsilon: f64,
) -> Option<FilledStatement> {
    match fill_statement_sketch_governed(table, sketch, epsilon, &Budget::unlimited()) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("unlimited budget never exhausts"),
    }
}

/// Budgeted [`fill_statement_sketch`]: one work unit per row grouped,
/// charged in chunks of [`CHARGE_CHUNK`]. On exhaustion the partial scan is
/// discarded (granularity is the whole statement — callers keep previously
/// filled statements and degrade).
pub fn fill_statement_sketch_governed(
    table: &Table,
    sketch: &StatementSketch,
    epsilon: f64,
    budget: &Budget,
) -> Result<Option<FilledStatement>, Exhausted> {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0,1)");
    let n = table.num_rows();
    if n == 0 {
        return Ok(None);
    }
    let mut fill_span = obs::span("fill_statement");
    fill_span.arg("rows", n as u64);
    let det_cols: Vec<&[u32]> = sketch
        .given
        .iter()
        .map(|&c| table.column(c).expect("sketch column in range").codes())
        .collect();
    let dep_codes = table.column(sketch.on).expect("sketch column in range").codes();

    // Single grouping pass: determinant valuation → dependent-code counts.
    // Keys pack determinant codes mixed-radix into a u128 when the key space
    // fits; adversarially wide / high-cardinality schemas overflow u128, so
    // those fall back to hashing the code vectors directly — slower, but
    // graceful instead of panicking on hostile input.
    let cards: Vec<u128> = sketch
        .given
        .iter()
        .map(|&c| table.column(c).expect("in range").distinct_count() as u128 + 1)
        .collect();
    let packable = cards.iter().try_fold(1u128, |acc, &c| acc.checked_mul(c)).is_some();

    // Groups as (determinant codes, dependent counts), sorted for
    // deterministic branch order. Lexicographic order of the code vectors
    // equals numeric order of the packed keys (same most-significant-first
    // radix), so both paths produce identical programs.
    let mut pending: u64 = 0;
    let mut ordered: Vec<(Vec<u32>, HashMap<u32, u32>)> = if packable {
        let mut groups: HashMap<u128, HashMap<u32, u32>> = HashMap::new();
        'rows: for row in 0..n {
            pending += 1;
            if pending == CHARGE_CHUNK {
                budget.charge(pending)?;
                pending = 0;
            }
            let mut key: u128 = 0;
            for (col, &card) in det_cols.iter().zip(&cards) {
                let code = col[row];
                if code == NULL_CODE {
                    continue 'rows; // conditions never assert over missing cells
                }
                // In range: every code < card and Π cards fits in u128.
                key = key * card + code as u128;
            }
            *groups.entry(key).or_default().entry(dep_codes[row]).or_default() += 1;
        }
        groups
            .into_iter()
            .map(|(key, counts)| {
                // Decode the determinant valuation back out of the packed key.
                let mut codes = vec![0u32; cards.len()];
                let mut rem = key;
                for (slot, &card) in codes.iter_mut().zip(&cards).rev() {
                    *slot = (rem % card) as u32;
                    rem /= card;
                }
                (codes, counts)
            })
            .collect()
    } else {
        let mut groups: HashMap<Vec<u32>, HashMap<u32, u32>> = HashMap::new();
        'rows: for row in 0..n {
            pending += 1;
            if pending == CHARGE_CHUNK {
                budget.charge(pending)?;
                pending = 0;
            }
            let mut codes = Vec::with_capacity(det_cols.len());
            for col in &det_cols {
                let code = col[row];
                if code == NULL_CODE {
                    continue 'rows;
                }
                codes.push(code);
            }
            *groups.entry(codes).or_default().entry(dep_codes[row]).or_default() += 1;
        }
        groups.into_iter().collect()
    };
    if pending > 0 {
        budget.charge(pending)?;
    }
    ordered.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
    let candidate_groups = ordered.len();
    fill_span.arg("candidate_groups", candidate_groups as u64);

    let schema = table.schema();
    let name = |i: usize| schema.field(i).expect("in range").name().to_string();
    let mut branches = Vec::new();
    let mut support = 0usize;
    let mut total_loss = 0usize;
    for (codes, counts) in ordered {
        let group_size: u32 = counts.values().sum();
        // Best-fit literal: the dependent mode (ties toward the lower code
        // for determinism). Skip groups whose mode is a missing value.
        let (&mode, &mode_count) = counts
            .iter()
            .max_by(|(ca, na), (cb, nb)| na.cmp(nb).then(cb.cmp(ca)))
            .expect("group is non-empty");
        if mode == NULL_CODE {
            continue;
        }
        let loss = (group_size - mode_count) as usize;
        if (loss as f64) > (group_size as f64) * epsilon {
            continue; // not ε-valid
        }
        let mut conjuncts = Vec::with_capacity(sketch.given.len());
        for (&col, &code) in sketch.given.iter().zip(&codes) {
            let value = table.column(col).expect("in range").dictionary().decode(code);
            conjuncts.push((name(col), value));
        }
        let literal = table.column(sketch.on).expect("in range").dictionary().decode(mode);
        branches.push(Branch {
            condition: Condition::new(conjuncts),
            target: name(sketch.on),
            literal,
        });
        support += group_size as usize;
        total_loss += loss;
    }

    fill_span.arg("branches_kept", branches.len() as u64);
    fill_span.arg("branches_pruned", (candidate_groups - branches.len()) as u64);
    if branches.is_empty() {
        return Ok(None);
    }
    let statement = Statement {
        given: sketch.given.iter().map(|&c| name(c)).collect(),
        on: name(sketch.on),
        branches,
    };
    debug_assert!(statement.validate().is_ok());
    Ok(Some(FilledStatement {
        statement,
        support,
        loss: total_loss,
        coverage: support as f64 / n as f64,
    }))
}

/// Fills every statement of `sketch` with `fill_one` across worker threads,
/// merging in statement order. Returns the filled statements, the number of
/// statements skipped by budget exhaustion, and the stage status (the first
/// exhaustion in statement order, when any).
///
/// Statements read only the immutable table, so they are independent work
/// items; the shared [`Budget`] inside `fill_one` is the only cross-thread
/// state (an atomic work counter, charged cooperatively). The merge keeps
/// every completed fill — each is bit-identical to what an unbudgeted run
/// would produce — and counts exhausted statements as skipped, so a degraded
/// program scores with those statements as zeros and can never outrank the
/// complete fill of the same sketch.
pub fn fill_sketch_statements_governed<F>(
    sketch: &ProgramSketch,
    parallelism: Parallelism,
    fill_one: F,
) -> (Vec<FilledStatement>, usize, StageStatus)
where
    F: Fn(&StatementSketch) -> Result<Option<FilledStatement>, Exhausted> + Sync,
{
    let outcomes = parallel_map(parallelism, &sketch.statements, &|s| fill_one(s));
    let mut filled = Vec::new();
    let mut skipped = 0usize;
    let mut status = StageStatus::Complete;
    for outcome in outcomes {
        match outcome {
            Ok(Some(f)) => filled.push(f),
            Ok(None) => {} // ⊥: a completed verdict, not a skip
            Err(e) => {
                skipped += 1;
                if status.is_complete() {
                    status = StageStatus::degraded(FILL_STAGE, e);
                }
            }
        }
    }
    (filled, skipped, status)
}

/// Fills a whole program sketch (Alg. 1). Statements that fill to `⊥` are
/// dropped; returns the concrete program and per-statement statistics.
pub fn fill_program_sketch(
    table: &Table,
    sketch: &ProgramSketch,
    epsilon: f64,
) -> (Program, Vec<FilledStatement>) {
    let mut filled = Vec::new();
    for s in &sketch.statements {
        if let Some(f) = fill_statement_sketch(table, s, epsilon) {
            filled.push(f);
        }
    }
    let program = Program { statements: filled.iter().map(|f| f.statement.clone()).collect() };
    (program, filled)
}

/// Coverage of a filled program: the average statement coverage (§2.2),
/// zero for the empty program.
pub fn filled_coverage(filled: &[FilledStatement]) -> f64 {
    if filled.is_empty() {
        return 0.0;
    }
    filled.iter().map(|f| f.coverage).sum::<f64>() / filled.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::Value;

    fn zip_city_table() -> Table {
        Table::from_csv_str(
            "zip,city\n\
             94704,Berkeley\n94704,Berkeley\n94704,Berkeley\n94704,Berkeley\n\
             94704,gibbon\n\
             97201,Portland\n97201,Portland\n97201,Portland\n",
        )
        .unwrap()
    }

    #[test]
    fn fills_noisy_fd() {
        let t = zip_city_table();
        let sketch = StatementSketch::new(vec![0], 1);
        let f = fill_statement_sketch(&t, &sketch, 0.25).unwrap();
        assert_eq!(f.statement.branches.len(), 2);
        assert_eq!(f.support, 8);
        assert_eq!(f.loss, 1);
        assert!((f.coverage - 1.0).abs() < 1e-12);
        // Branch literals are the group modes.
        let lits: Vec<&Value> = f.statement.branches.iter().map(|b| &b.literal).collect();
        assert!(lits.contains(&&Value::from("Berkeley")));
        assert!(lits.contains(&&Value::from("Portland")));
    }

    #[test]
    fn strict_epsilon_drops_noisy_branch() {
        let t = zip_city_table();
        let sketch = StatementSketch::new(vec![0], 1);
        // Berkeley group has loss 1/5 = 0.2 > ε = 0.1 → dropped;
        // Portland group is clean → kept.
        let f = fill_statement_sketch(&t, &sketch, 0.1).unwrap();
        assert_eq!(f.statement.branches.len(), 1);
        assert_eq!(f.statement.branches[0].literal, Value::from("Portland"));
        assert_eq!(f.support, 3);
        assert_eq!(f.loss, 0);
    }

    #[test]
    fn returns_bottom_when_nothing_valid() {
        // Dependent is uniform noise: every 4-row group splits 2/2 at best.
        let t = Table::from_csv_str("a,b\n0,x\n0,y\n1,x\n1,y\n").unwrap();
        let sketch = StatementSketch::new(vec![0], 1);
        assert!(fill_statement_sketch(&t, &sketch, 0.25).is_none());
        // ε = 0.5 tolerates a 50% loss → branches appear.
        assert!(fill_statement_sketch(&t, &sketch, 0.5).is_some());
    }

    #[test]
    fn multi_determinant_conditions() {
        let t =
            Table::from_csv_str("a,b,c\n0,0,x\n0,0,x\n0,1,y\n0,1,y\n1,0,y\n1,0,y\n1,1,x\n1,1,x\n")
                .unwrap();
        // c = XOR(a, b): needs both determinants.
        let xor = StatementSketch::new(vec![0, 1], 2);
        let f = fill_statement_sketch(&t, &xor, 0.0).unwrap();
        assert_eq!(f.statement.branches.len(), 4);
        assert_eq!(f.loss, 0);
        for b in &f.statement.branches {
            assert_eq!(b.condition.conjuncts().len(), 2);
        }
        // A single determinant explains nothing (every group splits 50/50).
        assert!(fill_statement_sketch(&t, &StatementSketch::new(vec![0], 2), 0.3).is_none());
    }

    #[test]
    fn null_determinants_are_skipped() {
        let t = Table::from_csv_str("a,b\n0,x\n,y\n0,x\n").unwrap();
        let sketch = StatementSketch::new(vec![0], 1);
        let f = fill_statement_sketch(&t, &sketch, 0.0).unwrap();
        // Only the two non-null `a` rows participate.
        assert_eq!(f.support, 2);
        assert_eq!(f.statement.branches.len(), 1);
    }

    #[test]
    fn null_mode_groups_are_dropped() {
        let t = Table::from_csv_str("a,b\n0,\n0,\n0,x\n1,y\n").unwrap();
        let sketch = StatementSketch::new(vec![0], 1);
        let f = fill_statement_sketch(&t, &sketch, 0.5).unwrap();
        // Group a=0 has mode NULL → dropped; only a=1 branch remains.
        assert_eq!(f.statement.branches.len(), 1);
        assert_eq!(f.statement.branches[0].literal, Value::from("y"));
    }

    #[test]
    fn empty_table_fills_to_bottom() {
        let t = Table::from_csv_str("a,b\n").unwrap();
        assert!(fill_statement_sketch(&t, &StatementSketch::new(vec![0], 1), 0.1).is_none());
    }

    #[test]
    fn program_sketch_fill_drops_bottom_statements() {
        let t = Table::from_csv_str("a,b,c\n0,x,0\n0,x,1\n1,y,0\n1,y,1\n").unwrap();
        let sketch = ProgramSketch {
            statements: vec![
                StatementSketch::new(vec![0], 1), // b = f(a): deterministic
                StatementSketch::new(vec![0], 2), // c ⫫ a: fills to ⊥
            ],
        };
        let (program, filled) = fill_program_sketch(&t, &sketch, 0.1);
        assert_eq!(program.statements.len(), 1);
        assert_eq!(filled.len(), 1);
        assert_eq!(program.statements[0].on, "b");
        assert!((filled_coverage(&filled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_determinant_key_overflow_falls_back_gracefully() {
        // 48 determinant columns with 8 distinct values each: the mixed-radix
        // key space is 9^48 ≫ u128::MAX, which the packed path cannot
        // represent. The vector-key fallback must fill it without panicking.
        let cols = 48usize;
        let mut header: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
        header.push("dep".into());
        let mut csv = header.join(",");
        csv.push('\n');
        for row in 0..32 {
            let v = row % 8;
            let mut cells: Vec<String> = (0..cols).map(|c| ((v + c) % 8).to_string()).collect();
            cells.push(format!("d{v}"));
            csv.push_str(&cells.join(","));
            csv.push('\n');
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let sketch = StatementSketch::new((0..cols).collect(), cols);
        let f = fill_statement_sketch(&t, &sketch, 0.0).unwrap();
        assert_eq!(f.statement.branches.len(), 8);
        assert_eq!(f.loss, 0);
        assert_eq!(f.support, 32);
    }

    #[test]
    fn exhausted_budget_aborts_fill() {
        use guardrail_governor::{Budget, ExhaustionReason};
        let t = zip_city_table();
        let sketch = StatementSketch::new(vec![0], 1);
        // 8 rows to scan; a 2-unit cap trips on the first (batched) charge.
        let err = fill_statement_sketch_governed(&t, &sketch, 0.25, &Budget::with_work_cap(2))
            .unwrap_err();
        assert_eq!(err.reason, ExhaustionReason::WorkCapReached);
        // An ample cap completes and matches the ungoverned fill.
        let governed =
            fill_statement_sketch_governed(&t, &sketch, 0.25, &Budget::with_work_cap(100))
                .unwrap()
                .unwrap();
        let plain = fill_statement_sketch(&t, &sketch, 0.25).unwrap();
        assert_eq!(governed.statement, plain.statement);
    }

    #[test]
    fn filled_program_detects_errors_via_dsl() {
        let t = zip_city_table();
        let sketch = ProgramSketch { statements: vec![StatementSketch::new(vec![0], 1)] };
        let (program, _) = fill_program_sketch(&t, &sketch, 0.25);
        let compiled = program.compile_for(&t).unwrap();
        assert_eq!(compiled.violating_rows(&t), vec![4]); // the gibbon row
    }
}
