//! Functional dependency representation.

use std::fmt;

/// A (possibly approximate) functional dependency `lhs → rhs` over column
/// indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant columns (sorted).
    pub lhs: Vec<usize>,
    /// Dependent column.
    pub rhs: usize,
}

impl Fd {
    /// Builds an FD, normalizing the LHS.
    pub fn new(mut lhs: Vec<usize>, rhs: usize) -> Self {
        lhs.sort_unstable();
        lhs.dedup();
        assert!(!lhs.contains(&rhs), "trivial FD");
        Self { lhs, rhs }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "->{}", self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_display() {
        let fd = Fd::new(vec![3, 1, 3], 0);
        assert_eq!(fd.lhs, vec![1, 3]);
        assert_eq!(fd.to_string(), "1,3->0");
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn trivial_rejected() {
        Fd::new(vec![0, 1], 1);
    }
}
