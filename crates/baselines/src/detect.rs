//! FD/CFD-violation error detection.
//!
//! The baselines discover constraints on a clean split; this module applies
//! them to an error-injected split. An FD `X → A` is violated by a *pair*
//! of rows agreeing on `X` and differing on `A`; a row is flagged when it
//! participates in any violating pair — which flags **every** row of a
//! non-unanimous group, since each pairs with some disagreeing row. This is
//! the standard FD-violation semantics and is exactly the localization
//! weakness §2.2 of the paper attributes to FDs ("FD itself is not capable
//! of localizing row-level errors"); the minority-vote heuristic is
//! provided separately as [`detect_fd_violations_minority`] for ablation.
//! A constant CFD flags pattern-matching rows that violate its consequent
//! (CFDs, having a constant RHS, can localize).

use crate::ctane::Cfd;
use crate::fd::Fd;
use guardrail_table::{Table, NULL_CODE};
use std::collections::HashMap;

/// Rows of `table` flagged by at least one FD under pair-violation
/// semantics: every row of a group with conflicting dependent values
/// (sorted, distinct).
pub fn detect_fd_violations(table: &Table, fds: &[Fd]) -> Vec<usize> {
    detect_fd_violations_impl(table, fds, false)
}

/// Minority-vote variant: within each conflicting group only the rows
/// deviating from the group's majority dependent value are flagged. This
/// grants FDs the row-level localization they do not natively have; kept as
/// an ablation of the detection semantics.
pub fn detect_fd_violations_minority(table: &Table, fds: &[Fd]) -> Vec<usize> {
    detect_fd_violations_impl(table, fds, true)
}

fn detect_fd_violations_impl(table: &Table, fds: &[Fd], minority_only: bool) -> Vec<usize> {
    let n = table.num_rows();
    let mut flagged = vec![false; n];
    for fd in fds {
        let lhs_cols: Vec<&[u32]> =
            fd.lhs.iter().map(|&c| table.column(c).expect("in range").codes()).collect();
        let rhs = table.column(fd.rhs).expect("in range").codes();
        let cards: Vec<u128> = fd
            .lhs
            .iter()
            .map(|&c| table.column(c).expect("in range").distinct_count() as u128 + 1)
            .collect();
        // Group rows by LHS valuation.
        let mut groups: HashMap<u128, Vec<u32>> = HashMap::new();
        'rows: for row in 0..n {
            let mut key = 0u128;
            for (col, &card) in lhs_cols.iter().zip(&cards) {
                let code = col[row];
                if code == NULL_CODE {
                    continue 'rows;
                }
                key = key * card + code as u128;
            }
            groups.entry(key).or_default().push(row as u32);
        }
        for rows in groups.values() {
            if rows.len() < 2 {
                continue;
            }
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &r in rows {
                *counts.entry(rhs[r as usize]).or_default() += 1;
            }
            if counts.len() < 2 {
                continue;
            }
            if minority_only {
                let (&mode, _) = counts
                    .iter()
                    .max_by(|(ca, na), (cb, nb)| na.cmp(nb).then(cb.cmp(ca)))
                    .expect("non-empty");
                for &r in rows {
                    if rhs[r as usize] != mode {
                        flagged[r as usize] = true;
                    }
                }
            } else {
                // Pair semantics: everyone in a conflicting group is part of
                // some violating pair.
                for &r in rows {
                    flagged[r as usize] = true;
                }
            }
        }
    }
    (0..n).filter(|&r| flagged[r]).collect()
}

/// Rows of `table` flagged by at least one constant CFD (sorted, distinct).
pub fn detect_cfd_violations(table: &Table, cfds: &[Cfd]) -> Vec<usize> {
    let n = table.num_rows();
    let mut flagged = vec![false; n];
    for cfd in cfds {
        // Resolve pattern/consequent values against this table's dictionaries.
        let pattern: Option<Vec<(usize, u32)>> = cfd
            .pattern
            .iter()
            .map(|(c, v)| {
                table.column(*c).expect("in range").dictionary().lookup(v).map(|code| (*c, code))
            })
            .collect();
        let Some(pattern) = pattern else { continue };
        let consequent =
            table.column(cfd.target).expect("in range").dictionary().lookup(&cfd.consequent);
        let target = table.column(cfd.target).expect("in range").codes();
        for row in 0..n {
            let matches = pattern
                .iter()
                .all(|&(c, code)| table.column(c).expect("in range").code(row) == code);
            if !matches {
                continue;
            }
            let ok = consequent.map(|c| target[row] == c).unwrap_or(false);
            if !ok {
                flagged[row] = true;
            }
        }
    }
    (0..n).filter(|&r| flagged[r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::Value;

    #[test]
    fn fd_pair_semantics_flags_whole_conflicting_group() {
        let t = Table::from_csv_str("a,b\n0,x\n0,x\n0,x\n0,z\n1,y\n1,y\n").unwrap();
        // Every a=0 row participates in a violating pair with row 3; the
        // unanimous a=1 group is untouched.
        let flagged = detect_fd_violations(&t, &[Fd::new(vec![0], 1)]);
        assert_eq!(flagged, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fd_minority_variant_localizes() {
        let t = Table::from_csv_str("a,b\n0,x\n0,x\n0,x\n0,z\n1,y\n1,y\n").unwrap();
        assert_eq!(detect_fd_violations_minority(&t, &[Fd::new(vec![0], 1)]), vec![3]);
        // Group splits 2/1: only the minority row.
        let t = Table::from_csv_str("a,b\n0,x\n0,x\n0,y\n").unwrap();
        assert_eq!(detect_fd_violations_minority(&t, &[Fd::new(vec![0], 1)]), vec![2]);
    }

    #[test]
    fn clean_data_flags_nothing() {
        let t = Table::from_csv_str("a,b\n0,x\n0,x\n1,y\n1,y\n").unwrap();
        assert!(detect_fd_violations(&t, &[Fd::new(vec![0], 1)]).is_empty());
    }

    #[test]
    fn composite_lhs_detection() {
        let t = Table::from_csv_str("a,b,c\n0,0,0\n0,0,0\n0,0,9\n1,1,0\n1,1,0\n").unwrap();
        let flagged = detect_fd_violations(&t, &[Fd::new(vec![0, 1], 2)]);
        assert_eq!(flagged, vec![0, 1, 2], "whole (0,0) group conflicts");
        assert_eq!(detect_fd_violations_minority(&t, &[Fd::new(vec![0, 1], 2)]), vec![2]);
    }

    #[test]
    fn cfd_flags_pattern_violations() {
        let t = Table::from_csv_str("country,code\nUS,1\nUS,1\nUS,44\nUK,44\n").unwrap();
        let cfd = Cfd {
            pattern: vec![(0, Value::from("US"))],
            target: 1,
            consequent: Value::Int(1),
            support: 3,
            confidence: 1.0,
        };
        assert_eq!(detect_cfd_violations(&t, &[cfd]), vec![2]);
    }

    #[test]
    fn cfd_with_unknown_pattern_value_is_inert() {
        let t = Table::from_csv_str("country,code\nUK,44\n").unwrap();
        let cfd = Cfd {
            pattern: vec![(0, Value::from("Atlantis"))],
            target: 1,
            consequent: Value::Int(0),
            support: 10,
            confidence: 1.0,
        };
        assert!(detect_cfd_violations(&t, &[cfd]).is_empty());
    }
}
