//! FDX: statistical FD discovery (Zhang et al. [43]).
//!
//! FDX models the auxiliary binary distribution (Def. 4.5) with a **linear**
//! structural equation model and reads FDs off the estimated autoregressive
//! structure. Our implementation follows that recipe:
//!
//! 1. sample the auxiliary indicator matrix with the circular-shift trick;
//! 2. estimate its covariance and invert it (graphical-model estimation —
//!    the precision matrix's nonzeros are the conditional dependencies under
//!    the linearity assumption);
//! 3. keep attribute pairs whose partial correlation exceeds a threshold;
//! 4. orient each kept pair by match-rate asymmetry: for a true FD `A → B`,
//!    matching `A`-values force matching `B`-values, so
//!    `P(𝕀_B = 1) ≥ P(𝕀_A = 1)`; orient from the lower-match-rate attribute
//!    to the higher.
//!
//! §6 of the Guardrail paper argues the linear-additive assumption is wrong
//! for binary indicators, and Table 3 shows the consequences: an
//! ill-conditioned inversion on dataset #3 (surfaced here as
//! [`BaselineError::Numerical`]) and degenerate all-rows-flagged behavior.
//! Both failure modes are reproduced faithfully rather than patched.

use crate::fd::Fd;
use crate::BaselineError;
use guardrail_pgm::{auxiliary_sample, EncodedData};
use guardrail_stats::descriptive::{covariance_matrix, invert_matrix};
use guardrail_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FDX configuration.
#[derive(Debug, Clone, Copy)]
pub struct FdxConfig {
    /// Target auxiliary pair count.
    pub aux_pairs: usize,
    /// Partial-correlation magnitude needed to keep an edge.
    pub tau: f64,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for FdxConfig {
    fn default() -> Self {
        Self { aux_pairs: 20_000, tau: 0.12, seed: 0xFD }
    }
}

/// Runs FDX on `table`, returning single-attribute FDs.
pub fn fdx_discover(table: &Table, config: &FdxConfig) -> Result<Vec<Fd>, BaselineError> {
    let encoded = EncodedData::from_table(table);
    let d = encoded.num_attrs();
    if encoded.num_rows() < 2 || d < 2 {
        return Ok(Vec::new());
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let aux = auxiliary_sample(&encoded, config.aux_pairs, &mut rng);
    let n = aux.num_rows();

    // Row-major n × d matrix of indicators.
    let mut data = vec![0.0f64; n * d];
    for (j, col) in (0..d).map(|j| (j, aux.column(j))) {
        for i in 0..n {
            data[i * d + j] = col[i] as f64;
        }
    }
    let cov = covariance_matrix(&data, n, d);
    // Constant indicator columns (key-like attributes whose values never
    // repeat, so 𝕀 ≡ 0, or constant attributes) carry no signal; FDX drops
    // them from the linear model. What it cannot survive is *collinearity*
    // among the remaining indicators — e.g. bijectively dependent attributes
    // with identical indicator vectors — which leaves Σ singular: the
    // paper's dataset #3 failure mode.
    let active: Vec<usize> = (0..d).filter(|&i| cov[i * d + i] >= 1e-9).collect();
    if active.len() < 2 {
        return Err(BaselineError::Numerical(
            "fewer than two non-degenerate indicator columns".into(),
        ));
    }
    let k = active.len();
    let mut sub = vec![0.0; k * k];
    for (ri, &i) in active.iter().enumerate() {
        for (rj, &j) in active.iter().enumerate() {
            sub[ri * k + rj] = cov[i * d + j];
        }
    }
    // Light ridge regularization (as in regularized graphical estimation);
    // exact or near-exact collinearity still surfaces as an exploding
    // precision matrix, which is the genuine failure condition.
    let ridge = 1e-6 * sub.iter().step_by(k + 1).sum::<f64>() / k as f64;
    for i in 0..k {
        sub[i * k + i] += ridge;
    }
    let theta_sub = invert_matrix(&sub, k)
        .ok_or_else(|| BaselineError::Numerical("ill-conditioned covariance inversion".into()))?;
    let magnitude = theta_sub.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if magnitude > 1e7 {
        return Err(BaselineError::Numerical(format!(
            "collinear indicators: precision magnitude {magnitude:.1e}"
        )));
    }
    // Re-embed into d × d with zeros for dropped columns.
    let mut theta = vec![0.0; d * d];
    for (ri, &i) in active.iter().enumerate() {
        for (rj, &j) in active.iter().enumerate() {
            theta[i * d + j] = theta_sub[ri * k + rj];
        }
    }
    // Guard against a numerically garbage inverse (huge entries mean the
    // ridge did not save us).
    if theta.iter().any(|x| !x.is_finite()) {
        return Err(BaselineError::Numerical("non-finite precision matrix".into()));
    }

    // Match rates for orientation.
    let match_rate: Vec<f64> =
        (0..d).map(|j| aux.column(j).iter().map(|&b| b as f64).sum::<f64>() / n as f64).collect();

    let mut fds = Vec::new();
    for i in 0..d {
        for j in (i + 1)..d {
            let denom = (theta[i * d + i] * theta[j * d + j]).sqrt();
            if denom <= 0.0 || !denom.is_finite() {
                continue;
            }
            let pcorr = -theta[i * d + j] / denom;
            if pcorr.abs() < config.tau {
                continue;
            }
            // Orient low match rate → high match rate (determinant has more
            // distinct structure, dependent is implied).
            let (from, to) = if match_rate[i] <= match_rate[j] { (i, j) } else { (j, i) };
            fds.push(Fd::new(vec![from], to));
        }
    }
    Ok(fds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_table(n: usize) -> Table {
        // zip → city → state (deterministic), plus an independent column
        // (hash-mixed so it shares no modular structure with zip).
        let mut csv = String::from("zip,city,state,noise\n");
        for i in 0..n {
            let zip = i % 6;
            let city = zip / 2;
            let state = usize::from(city == 2);
            let noise = (i.wrapping_mul(2654435761) >> 13) % 4;
            csv.push_str(&format!("{zip},c{city},s{state},n{noise}\n"));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    #[test]
    fn discovers_chain_edges_and_orientation() {
        let fds = fdx_discover(&chain_table(2000), &FdxConfig::default()).unwrap();
        assert!(fds.contains(&Fd::new(vec![0], 1)), "zip→city missing: {fds:?}");
        assert!(fds.contains(&Fd::new(vec![1], 2)), "city→state missing: {fds:?}");
        // No FD involving the noise column.
        assert!(fds.iter().all(|fd| fd.rhs != 3 && !fd.lhs.contains(&3)), "{fds:?}");
    }

    #[test]
    fn ill_conditioned_failure_mode() {
        // Two all-distinct columns: both indicators are constant zero under
        // every shift, the covariance is singular, and FDX dies — the
        // paper's dataset #3 behavior.
        let mut csv = String::from("id1,id2\n");
        for i in 0..300 {
            csv.push_str(&format!("u{i},v{i}\n"));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let out = fdx_discover(&t, &FdxConfig::default());
        assert!(matches!(out, Err(BaselineError::Numerical(_))), "{out:?}");
    }

    #[test]
    fn independent_columns_yield_no_fds() {
        // Independently seeded generators: the columns share no structure.
        use rand::{Rng, SeedableRng};
        let mut ra = rand::rngs::StdRng::seed_from_u64(11);
        let mut rb = rand::rngs::StdRng::seed_from_u64(47);
        let mut csv = String::from("a,b\n");
        for _ in 0usize..1500 {
            let a = ra.gen_range(0u8..5);
            let b = rb.gen_range(0u8..4);
            csv.push_str(&format!("{a},{b}\n"));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let fds = fdx_discover(&t, &FdxConfig::default()).unwrap();
        assert!(fds.is_empty(), "{fds:?}");
    }

    #[test]
    fn tiny_inputs_degrade_gracefully() {
        let t = Table::from_csv_str("a,b\n1,2\n").unwrap();
        assert_eq!(fdx_discover(&t, &FdxConfig::default()).unwrap(), Vec::new());
    }
}
