//! TANE: level-wise discovery of (approximate) functional dependencies.
//!
//! Faithful to Huhtala et al. [19]:
//!
//! * rows are grouped into **stripped partitions** `π̂_X` (equivalence
//!   classes of size ≥ 2 under the values of attribute set `X`);
//! * candidate levels walk the attribute lattice bottom-up, joining
//!   prefix-blocks and pruning with the `C⁺` candidate-RHS sets;
//! * an FD `X∖{A} → A` is emitted when its **g₃ error** — the minimum
//!   fraction of rows to delete for the FD to hold exactly — is at most
//!   `epsilon`;
//! * partition products use the probe-table algorithm, so each level is
//!   linear in the data.
//!
//! A candidate budget bounds the lattice blow-up on wide schemas; exceeding
//! it returns [`BaselineError::ResourceExhausted`] (the paper's "–" entries
//! for TANE on datasets #3 and #11).

use crate::fd::Fd;
use crate::BaselineError;
use guardrail_table::Table;
use std::collections::{HashMap, HashSet};

/// TANE configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaneConfig {
    /// g₃-error threshold for approximate FDs (0 = exact FDs only).
    pub epsilon: f64,
    /// Largest LHS size considered (lattice level − 1).
    pub max_lhs: usize,
    /// Abort when a level holds more candidates than this.
    pub max_candidates: usize,
}

impl Default for TaneConfig {
    fn default() -> Self {
        Self { epsilon: 0.02, max_lhs: 3, max_candidates: 20_000 }
    }
}

/// A stripped partition: equivalence classes with ≥ 2 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Partition {
    classes: Vec<Vec<u32>>,
    /// Total rows across classes (`‖π̂‖` in TANE notation is `classes.len()`;
    /// this is the row mass used by the error formula).
    rows: usize,
}

impl Partition {
    fn from_codes(codes: &[u32]) -> Self {
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, &c) in codes.iter().enumerate() {
            groups.entry(c).or_default().push(i as u32);
        }
        let mut classes: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        classes.sort(); // deterministic order
        let rows = classes.iter().map(|c| c.len()).sum();
        Self { classes, rows }
    }

    /// Probe-table partition product `π̂_X · π̂_Y` (TANE §4.3).
    fn product(&self, other: &Partition, n: usize) -> Partition {
        let mut probe: Vec<i32> = vec![-1; n];
        for (ci, class) in self.classes.iter().enumerate() {
            for &row in class {
                probe[row as usize] = ci as i32;
            }
        }
        let mut buckets: HashMap<(i32, usize), Vec<u32>> = HashMap::new();
        for (cj, class) in other.classes.iter().enumerate() {
            for &row in class {
                let ci = probe[row as usize];
                if ci >= 0 {
                    buckets.entry((ci, cj)).or_default().push(row);
                }
            }
        }
        let mut classes: Vec<Vec<u32>> = buckets.into_values().filter(|g| g.len() >= 2).collect();
        classes.sort();
        let rows = classes.iter().map(|c| c.len()).sum();
        Partition { classes, rows }
    }

    /// g₃ error of `X → A` given `π̂_X = self` and `π̂_{X∪A} = refined`:
    /// for each class of `π̂_X`, all but the largest co-class of `π̂_{X∪A}`
    /// must be deleted.
    fn g3_error(&self, refined: &Partition, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        // Map row → size of its class in the refined partition (singletons
        // count 1).
        let mut refined_size: Vec<u32> = vec![1; n];
        for class in &refined.classes {
            for &row in class {
                refined_size[row as usize] = class.len() as u32;
            }
        }
        let mut keep = 0usize;
        let mut covered = 0usize;
        for class in &self.classes {
            let max = class.iter().map(|&r| refined_size[r as usize]).max().unwrap_or(1);
            keep += max as usize;
            covered += class.len();
        }
        // Rows in singleton X-classes trivially satisfy the FD.
        let violations = covered - keep.min(covered);
        violations as f64 / n as f64
    }
}

type AttrSet = u64;

fn set_members(set: AttrSet) -> Vec<usize> {
    (0..64).filter(|&i| set & (1 << i) != 0).collect()
}

/// Runs TANE on `table`. Returns discovered (approximate) minimal FDs.
pub fn tane_discover(table: &Table, config: &TaneConfig) -> Result<Vec<Fd>, BaselineError> {
    let n_attrs = table.num_columns();
    assert!(n_attrs <= 63, "TANE attr-set bitmask supports ≤ 63 columns");
    let n = table.num_rows();
    if n == 0 {
        return Ok(Vec::new());
    }

    let full: AttrSet = (1 << n_attrs) - 1;
    let mut partitions: HashMap<AttrSet, Partition> = HashMap::new();
    for a in 0..n_attrs {
        partitions
            .insert(1 << a, Partition::from_codes(table.column(a).expect("in range").codes()));
    }

    // C⁺(X) sets; level-1 initialization.
    let mut cplus: HashMap<AttrSet, AttrSet> = HashMap::new();
    let mut level: Vec<AttrSet> = (0..n_attrs).map(|a| 1 << a).collect();
    for &x in &level {
        cplus.insert(x, full);
    }

    let mut fds = Vec::new();
    let mut total_candidates = level.len();

    for depth in 1..=config.max_lhs + 1 {
        if depth > 1 {
            // compute_dependencies
        }
        // --- compute dependencies on the current level (X has |X| = depth) ---
        if depth >= 2 {
            for &x in &level {
                let candidates = *cplus.get(&x).unwrap_or(&0) & x;
                for a in set_members(candidates) {
                    let lhs_set = x & !(1 << a);
                    let (pi_lhs, pi_x) = (
                        partitions.get(&lhs_set).expect("parent partition").clone(),
                        partitions.get(&x).expect("level partition").clone(),
                    );
                    let error = pi_lhs.g3_error(&pi_x, n);
                    if error <= config.epsilon {
                        fds.push(Fd::new(set_members(lhs_set), a));
                        let entry = cplus.entry(x).or_insert(full);
                        *entry &= !(1 << a);
                        if error == 0.0 {
                            // Exact FD: prune every B ∈ R∖X from C⁺(X).
                            *entry &= x;
                        }
                    }
                }
            }
            // prune
            level.retain(|x| *cplus.get(x).unwrap_or(&0) != 0);
        }

        if depth > config.max_lhs {
            break;
        }

        // --- generate next level (prefix-block join + subset check) ---
        let current: HashSet<AttrSet> = level.iter().copied().collect();
        let mut next: Vec<AttrSet> = Vec::new();
        let mut seen: HashSet<AttrSet> = HashSet::new();
        let sorted_level = {
            let mut l = level.clone();
            l.sort_unstable();
            l
        };
        for (i, &x) in sorted_level.iter().enumerate() {
            for &y in &sorted_level[i + 1..] {
                let union = x | y;
                if (union.count_ones() as usize) != depth + 1 || seen.contains(&union) {
                    continue;
                }
                // All |union|-1 subsets must be in the current level.
                let ok = set_members(union).iter().all(|&a| current.contains(&(union & !(1 << a))));
                if !ok {
                    continue;
                }
                seen.insert(union);
                next.push(union);
                total_candidates += 1;
                if total_candidates > config.max_candidates {
                    return Err(BaselineError::ResourceExhausted {
                        candidates: total_candidates,
                        budget: config.max_candidates,
                    });
                }
                // Partition product and C⁺ via intersection of parents.
                let px = partitions.get(&x).expect("level partition");
                let py = partitions.get(&y).expect("level partition");
                partitions.insert(union, px.product(py, n));
                let c = set_members(union)
                    .iter()
                    .map(|&a| *cplus.get(&(union & !(1 << a))).unwrap_or(&0))
                    .fold(full, |acc, s| acc & s);
                cplus.insert(union, c);
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }

    Ok(fds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_basics() {
        let p = Partition::from_codes(&[0, 0, 1, 1, 2]);
        assert_eq!(p.classes.len(), 2); // singleton stripped
        assert_eq!(p.rows, 4);
    }

    #[test]
    fn partition_product() {
        let a = Partition::from_codes(&[0, 0, 0, 1, 1, 1]);
        let b = Partition::from_codes(&[0, 0, 1, 1, 0, 0]);
        let prod = a.product(&b, 6);
        // classes: {0,1}, {4,5}; row 2 and 3 become singletons.
        assert_eq!(prod.classes.len(), 2);
        assert_eq!(prod.rows, 4);
    }

    #[test]
    fn discovers_exact_fd() {
        // b = f(a), c random-ish.
        let t = Table::from_csv_str("a,b,c\n0,x,0\n0,x,1\n1,y,0\n1,y,1\n2,x,0\n2,x,1\n").unwrap();
        let fds = tane_discover(&t, &TaneConfig::default()).unwrap();
        assert!(fds.contains(&Fd::new(vec![0], 1)), "a→b missing from {fds:?}");
        assert!(!fds.contains(&Fd::new(vec![0], 2)), "a→c is not an FD");
    }

    #[test]
    fn approximate_fd_with_epsilon() {
        // a→b holds except one row out of 10 covered rows.
        let t =
            Table::from_csv_str("a,b\n0,x\n0,x\n0,x\n0,x\n0,z\n1,y\n1,y\n1,y\n1,y\n1,y\n").unwrap();
        let strict = tane_discover(&t, &TaneConfig { epsilon: 0.0, ..Default::default() }).unwrap();
        // a→b has one violating row, so it needs ε ≥ 0.1 (note b→a *does*
        // hold exactly here: z only ever co-occurs with a=0).
        assert!(!strict.contains(&Fd::new(vec![0], 1)));
        assert!(strict.contains(&Fd::new(vec![1], 0)));
        let loose = tane_discover(&t, &TaneConfig { epsilon: 0.15, ..Default::default() }).unwrap();
        assert!(loose.contains(&Fd::new(vec![0], 1)));
    }

    #[test]
    fn discovers_composite_lhs() {
        // c = XOR(a, b): only {a,b} → c.
        let t =
            Table::from_csv_str("a,b,c\n0,0,0\n0,0,0\n0,1,1\n0,1,1\n1,0,1\n1,0,1\n1,1,0\n1,1,0\n")
                .unwrap();
        let fds = tane_discover(&t, &TaneConfig { epsilon: 0.0, ..Default::default() }).unwrap();
        assert!(fds.contains(&Fd::new(vec![0, 1], 2)), "{fds:?}");
        assert!(!fds.contains(&Fd::new(vec![0], 2)));
    }

    #[test]
    fn minimality_pruning() {
        // b = f(a) exactly; {a,c} → b must not be emitted (non-minimal).
        let t = Table::from_csv_str("a,b,c\n0,x,0\n0,x,1\n1,y,0\n1,y,1\n").unwrap();
        let fds = tane_discover(&t, &TaneConfig { epsilon: 0.0, ..Default::default() }).unwrap();
        assert!(fds.contains(&Fd::new(vec![0], 1)));
        assert!(!fds.iter().any(|fd| fd.rhs == 1 && fd.lhs.len() > 1), "{fds:?}");
    }

    #[test]
    fn budget_exhaustion() {
        // 12 attributes of noise: level 2 already exceeds a budget of 20.
        let mut csv = (0..12).map(|i| format!("a{i}")).collect::<Vec<_>>().join(",");
        csv.push('\n');
        for r in 0..20 {
            let row: Vec<String> = (0..12).map(|c| ((r * 7 + c * 3) % 5).to_string()).collect();
            csv.push_str(&(row.join(",") + "\n"));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let out = tane_discover(&t, &TaneConfig { max_candidates: 20, ..Default::default() });
        assert!(matches!(out, Err(BaselineError::ResourceExhausted { .. })));
    }

    #[test]
    fn empty_table() {
        let t = Table::from_csv_str("a,b\n").unwrap();
        assert_eq!(tane_discover(&t, &TaneConfig::default()).unwrap(), Vec::new());
    }
}
