//! CTANE: conditional functional dependency discovery.
//!
//! Fan et al. [9] extend TANE's lattice to (attribute, pattern) pairs. Two
//! fragments are implemented:
//!
//! * **constant CFDs** ([`ctane_discover`]): rules `(X = t_p) → (A = a)`
//!   where `t_p` fixes a constant for every LHS attribute; discovery is
//!   level-wise over LHS size with support and confidence thresholds, with
//!   minimality pruning.
//! * **variable CFDs** ([`ctane_discover_variable`]): pattern-scoped FDs
//!   `(C = c : X → A)` — the dependency `X → A` holds (approximately) on
//!   the subset of rows where the single-attribute condition `C = c`
//!   matches, but not necessarily globally.
//!
//! The paper's Table 3 shows CTANE overfitting — many highly specific rules
//! that flag clean rows. That behavior emerges here naturally from
//! low-support constant patterns.

use crate::fd::Fd;
use crate::BaselineError;
use guardrail_table::{Table, Value, NULL_CODE};
use std::collections::HashMap;

/// A constant conditional FD: `⋀ (col = value) → target = consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfd {
    /// LHS pattern: `(column, constant)` pairs (sorted by column).
    pub pattern: Vec<(usize, Value)>,
    /// RHS column.
    pub target: usize,
    /// RHS constant.
    pub consequent: Value,
    /// Rows matching the pattern.
    pub support: usize,
    /// Fraction of matching rows satisfying the consequent.
    pub confidence: f64,
}

/// CTANE configuration.
#[derive(Debug, Clone, Copy)]
pub struct CtaneConfig {
    /// Minimum pattern support (absolute row count).
    pub min_support: usize,
    /// Minimum confidence for a rule.
    pub min_confidence: f64,
    /// Largest LHS pattern size.
    pub max_lhs: usize,
    /// Candidate budget; exceeded → [`BaselineError::ResourceExhausted`].
    pub max_candidates: usize,
}

impl Default for CtaneConfig {
    fn default() -> Self {
        Self { min_support: 6, min_confidence: 0.95, max_lhs: 2, max_candidates: 200_000 }
    }
}

/// Discovers constant CFDs on `table`.
pub fn ctane_discover(table: &Table, config: &CtaneConfig) -> Result<Vec<Cfd>, BaselineError> {
    let n_attrs = table.num_columns();
    let n = table.num_rows();
    let mut rules: Vec<Cfd> = Vec::new();
    let mut candidates = 0usize;

    // Level 1: single-attribute patterns, grouped in one pass per column.
    // pattern_rows: pattern (as sorted (col,code) vec) → row list.
    type PatternRows = Vec<(Vec<(usize, u32)>, Vec<u32>)>;
    let mut frontier: PatternRows = Vec::new();
    for col in 0..n_attrs {
        let codes = table.column(col).expect("in range").codes();
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for (row, &c) in codes.iter().enumerate() {
            if c != NULL_CODE {
                groups.entry(c).or_default().push(row as u32);
            }
        }
        let mut ordered: Vec<(u32, Vec<u32>)> = groups.into_iter().collect();
        ordered.sort_unstable_by_key(|(c, _)| *c);
        for (code, rows) in ordered {
            if rows.len() >= config.min_support {
                frontier.push((vec![(col, code)], rows));
            }
        }
    }

    for _level in 1..=config.max_lhs {
        // Emit rules from the current frontier.
        for (pattern, rows) in &frontier {
            candidates += 1;
            if candidates > config.max_candidates {
                return Err(BaselineError::ResourceExhausted {
                    candidates,
                    budget: config.max_candidates,
                });
            }
            for target in 0..n_attrs {
                if pattern.iter().any(|&(c, _)| c == target) {
                    continue;
                }
                let codes = table.column(target).expect("in range").codes();
                let mut counts: HashMap<u32, usize> = HashMap::new();
                for &r in rows {
                    let c = codes[r as usize];
                    if c != NULL_CODE {
                        *counts.entry(c).or_default() += 1;
                    }
                }
                let total: usize = counts.values().sum();
                if total < config.min_support {
                    continue;
                }
                let (&mode, &mode_count) =
                    match counts.iter().max_by(|(ca, na), (cb, nb)| na.cmp(nb).then(cb.cmp(ca))) {
                        Some(m) => m,
                        None => continue,
                    };
                let confidence = mode_count as f64 / total as f64;
                if confidence < config.min_confidence {
                    continue;
                }
                let consequent = table.column(target).expect("in range").dictionary().decode(mode);
                // Minimality: skip if a sub-pattern already implies the same.
                let implied = rules.iter().any(|r| {
                    r.target == target
                        && r.consequent == consequent
                        && r.pattern.iter().all(|p| {
                            pattern.iter().any(|&(c, code)| {
                                c == p.0
                                    && table.column(c).expect("in range").dictionary().decode(code)
                                        == p.1
                            })
                        })
                });
                if implied {
                    continue;
                }
                rules.push(Cfd {
                    pattern: pattern
                        .iter()
                        .map(|&(c, code)| {
                            (c, table.column(c).expect("in range").dictionary().decode(code))
                        })
                        .collect(),
                    target,
                    consequent,
                    support: total,
                    confidence,
                });
            }
        }

        // Extend the frontier: pattern ∪ {(col, code)} for later columns.
        let mut next = Vec::new();
        for (pattern, rows) in &frontier {
            let last_col = pattern.last().expect("non-empty").0;
            for col in (last_col + 1)..n_attrs {
                let codes = table.column(col).expect("in range").codes();
                let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
                for &r in rows {
                    let c = codes[r as usize];
                    if c != NULL_CODE {
                        groups.entry(c).or_default().push(r);
                    }
                }
                let mut ordered: Vec<(u32, Vec<u32>)> = groups.into_iter().collect();
                ordered.sort_unstable_by_key(|(c, _)| *c);
                for (code, sub) in ordered {
                    if sub.len() >= config.min_support {
                        let mut p = pattern.clone();
                        p.push((col, code));
                        next.push((p, sub));
                        candidates += 1;
                        if candidates > config.max_candidates {
                            return Err(BaselineError::ResourceExhausted {
                                candidates,
                                budget: config.max_candidates,
                            });
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    let _ = n;
    Ok(rules)
}

/// A variable CFD: the FD `fd` holds on the rows matching `condition`.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableCfd {
    /// The scoping condition `(column, constant)`.
    pub condition: (usize, Value),
    /// The pattern-scoped dependency.
    pub fd: Fd,
    /// Rows matching the condition.
    pub support: usize,
    /// g₃-style error of the FD within the scope.
    pub error: f64,
}

/// Discovers variable CFDs `(C = c : X → A)` with single-attribute scopes
/// and single-attribute LHS, keeping only dependencies that hold within
/// their scope (error ≤ `epsilon`) but **not** globally — globally-holding
/// FDs belong to TANE's output, not a conditional tableau.
pub fn ctane_discover_variable(
    table: &Table,
    config: &CtaneConfig,
    epsilon: f64,
) -> Result<Vec<VariableCfd>, BaselineError> {
    let n_attrs = table.num_columns();
    let mut out = Vec::new();
    let mut candidates = 0usize;

    // Precompute which global FDs already hold (scoped versions are then
    // redundant).
    let mut global: Vec<Vec<bool>> = vec![vec![false; n_attrs]; n_attrs];
    for (lhs, row) in global.iter_mut().enumerate() {
        for (rhs, cell) in row.iter_mut().enumerate() {
            if lhs != rhs {
                let rows: Vec<u32> = (0..table.num_rows() as u32).collect();
                *cell = scoped_fd_error(table, lhs, rhs, &rows) <= epsilon;
            }
        }
    }

    for cond_col in 0..n_attrs {
        let codes = table.column(cond_col).expect("in range").codes();
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for (row, &c) in codes.iter().enumerate() {
            if c != NULL_CODE {
                groups.entry(c).or_default().push(row as u32);
            }
        }
        let mut ordered: Vec<(u32, Vec<u32>)> = groups.into_iter().collect();
        ordered.sort_unstable_by_key(|(c, _)| *c);
        for (code, rows) in ordered {
            if rows.len() < config.min_support {
                continue;
            }
            for (lhs, global_row) in global.iter().enumerate() {
                for (rhs, &holds_globally) in global_row.iter().enumerate() {
                    if lhs == rhs || lhs == cond_col || rhs == cond_col || holds_globally {
                        continue;
                    }
                    candidates += 1;
                    if candidates > config.max_candidates {
                        return Err(BaselineError::ResourceExhausted {
                            candidates,
                            budget: config.max_candidates,
                        });
                    }
                    let error = scoped_fd_error(table, lhs, rhs, &rows);
                    if error <= epsilon {
                        out.push(VariableCfd {
                            condition: (
                                cond_col,
                                table.column(cond_col).expect("in range").dictionary().decode(code),
                            ),
                            fd: Fd::new(vec![lhs], rhs),
                            support: rows.len(),
                            error,
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// g₃-style error of `lhs → rhs` restricted to `rows`: fraction of rows that
/// must be removed for the FD to hold exactly on the scope.
fn scoped_fd_error(table: &Table, lhs: usize, rhs: usize, rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let lhs_codes = table.column(lhs).expect("in range").codes();
    let rhs_codes = table.column(rhs).expect("in range").codes();
    let mut groups: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
    for &r in rows {
        let l = lhs_codes[r as usize];
        if l == NULL_CODE {
            continue;
        }
        *groups.entry(l).or_default().entry(rhs_codes[r as usize]).or_default() += 1;
    }
    let mut keep = 0u32;
    let mut total = 0u32;
    for counts in groups.values() {
        keep += counts.values().copied().max().unwrap_or(0);
        total += counts.values().sum::<u32>();
    }
    if total == 0 {
        0.0
    } else {
        (total - keep) as f64 / total as f64
    }
}

/// Rows flagged by variable CFDs: within each rule's scope, rows deviating
/// from their LHS-group's majority RHS value.
pub fn detect_variable_cfd_violations(table: &Table, rules: &[VariableCfd]) -> Vec<usize> {
    let n = table.num_rows();
    let mut flagged = vec![false; n];
    for rule in rules {
        let (cond_col, cond_val) = &rule.condition;
        let Some(cond_code) =
            table.column(*cond_col).expect("in range").dictionary().lookup(cond_val)
        else {
            continue;
        };
        let cond_codes = table.column(*cond_col).expect("in range").codes();
        let scope: Vec<u32> =
            (0..n as u32).filter(|&r| cond_codes[r as usize] == cond_code).collect();
        let lhs = rule.fd.lhs[0];
        let rhs = rule.fd.rhs;
        let lhs_codes = table.column(lhs).expect("in range").codes();
        let rhs_codes = table.column(rhs).expect("in range").codes();
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for &r in &scope {
            let l = lhs_codes[r as usize];
            if l != NULL_CODE {
                groups.entry(l).or_default().push(r);
            }
        }
        for rows in groups.values() {
            if rows.len() < 2 {
                continue;
            }
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &r in rows {
                *counts.entry(rhs_codes[r as usize]).or_default() += 1;
            }
            if counts.len() < 2 {
                continue;
            }
            let (&mode, _) = counts
                .iter()
                .max_by(|(ca, na), (cb, nb)| na.cmp(nb).then(cb.cmp(ca)))
                .expect("non-empty");
            for &r in rows {
                if rhs_codes[r as usize] != mode {
                    flagged[r as usize] = true;
                }
            }
        }
    }
    (0..n).filter(|&r| flagged[r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_conditional_rule() {
        // country→code only holds conditionally: within country=US, area
        // determines nothing, but country=US always has code=1.
        let mut csv = String::from("country,code\n");
        for _ in 0..20 {
            csv.push_str("US,1\n");
            csv.push_str("UK,44\n");
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let rules = ctane_discover(&t, &CtaneConfig::default()).unwrap();
        assert!(
            rules.iter().any(|r| {
                r.pattern == vec![(0, Value::from("US"))]
                    && r.target == 1
                    && r.consequent == Value::Int(1)
                    && r.confidence == 1.0
            }),
            "{rules:?}"
        );
    }

    #[test]
    fn support_threshold_filters_rare_patterns() {
        let mut csv = String::from("a,b\n");
        for _ in 0..10 {
            csv.push_str("x,1\n");
        }
        csv.push_str("rare,9\n");
        let t = Table::from_csv_str(&csv).unwrap();
        let rules =
            ctane_discover(&t, &CtaneConfig { min_support: 5, ..Default::default() }).unwrap();
        assert!(rules.iter().all(|r| r.pattern[0].1 != Value::from("rare")));
    }

    #[test]
    fn confidence_threshold() {
        let mut csv = String::from("a,b\n");
        for i in 0..20 {
            csv.push_str(&format!("x,{}\n", if i < 13 { 1 } else { 2 }));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let strict =
            ctane_discover(&t, &CtaneConfig { min_confidence: 0.9, ..Default::default() }).unwrap();
        assert!(strict.iter().all(|r| r.target != 1));
        let loose =
            ctane_discover(&t, &CtaneConfig { min_confidence: 0.6, ..Default::default() }).unwrap();
        assert!(loose.iter().any(|r| r.target == 1 && r.consequent == Value::Int(1)));
    }

    #[test]
    fn minimality_suppresses_subsumed_rules() {
        let mut csv = String::from("a,b,c\n");
        for i in 0..30 {
            csv.push_str(&format!("x,{},1\n", i % 3));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let rules = ctane_discover(&t, &CtaneConfig::default()).unwrap();
        // (a=x)→c=1 subsumes (a=x ∧ b=_)→c=1.
        let about_c: Vec<_> = rules.iter().filter(|r| r.target == 2).collect();
        assert!(about_c.iter().all(|r| r.pattern.len() == 1), "{about_c:?}");
    }

    #[test]
    fn variable_cfd_found_only_where_conditional() {
        // Within country=US: area → city holds; within country=UK it does
        // not; globally it does not. Expect the scoped rule only.
        let mut csv = String::from("country,area,city\n");
        for _ in 0..15 {
            csv.push_str("US,1,NYC\nUS,2,LA\n");
            csv.push_str("UK,1,London\nUK,1,Leeds\n"); // area 1 ambiguous in UK
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let rules = ctane_discover_variable(&t, &CtaneConfig::default(), 0.0).unwrap();
        assert!(
            rules.iter().any(|r| r.condition == (0, Value::from("US"))
                && r.fd == Fd::new(vec![1], 2)
                && r.error == 0.0),
            "{rules:?}"
        );
        assert!(
            !rules
                .iter()
                .any(|r| r.condition == (0, Value::from("UK")) && r.fd == Fd::new(vec![1], 2)),
            "{rules:?}"
        );
    }

    #[test]
    fn globally_holding_fds_are_excluded_from_variable_rules() {
        // b = f(a) globally: no scoped version should be reported.
        let mut csv = String::from("c,a,b\n");
        for i in 0..40 {
            csv.push_str(&format!("{},{},{}\n", i % 2, i % 3, (i % 3) * 10));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let rules = ctane_discover_variable(&t, &CtaneConfig::default(), 0.0).unwrap();
        assert!(
            rules.iter().all(|r| !(r.fd == Fd::new(vec![1], 2))),
            "global FD leaked into the tableau: {rules:?}"
        );
    }

    #[test]
    fn variable_cfd_detection_flags_scoped_minority() {
        let mut csv = String::from("country,area,city\n");
        for _ in 0..15 {
            csv.push_str("US,1,NYC\nUS,2,LA\nUK,1,London\nUK,1,Leeds\n");
        }
        // Corrupt one scoped row: US area 1 should be NYC.
        csv.push_str("US,1,Boston\n");
        let t = Table::from_csv_str(&csv).unwrap();
        let clean_scope = Table::from_csv_str(&csv.replace("US,1,Boston\n", "")).unwrap();
        let rules = ctane_discover_variable(&clean_scope, &CtaneConfig::default(), 0.0).unwrap();
        let flagged = detect_variable_cfd_violations(&t, &rules);
        assert_eq!(flagged, vec![60], "{flagged:?}");
    }

    #[test]
    fn budget_exhaustion() {
        let mut csv = String::from("a,b,c,d\n");
        for i in 0..200 {
            csv.push_str(&format!("{},{},{},{}\n", i % 10, i % 9, i % 8, i % 7));
        }
        let t = Table::from_csv_str(&csv).unwrap();
        let out = ctane_discover(
            &t,
            &CtaneConfig { max_candidates: 10, min_support: 2, ..Default::default() },
        );
        assert!(matches!(out, Err(BaselineError::ResourceExhausted { .. })));
    }
}
