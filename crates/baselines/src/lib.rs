//! FD-discovery baselines for the Table 3 comparison.
//!
//! * [`tane`] — TANE [19]: level-wise lattice search with stripped
//!   partitions, C⁺ pruning, and g₃-error approximate dependencies.
//! * [`ctane`] — CTANE [9]: conditional FD discovery with constant pattern
//!   tableaux (support/confidence thresholded).
//! * [`fdx`] — FDX [43]: statistical FD discovery on the auxiliary binary
//!   distribution via precision-matrix estimation — including its documented
//!   failure modes (ill-conditioned inversion, all-rows-flagged collapse).
//! * [`fd`] / [`detect`] — the shared FD representation and the
//!   majority-vote violation detector used to score all baselines on error
//!   detection.
//!
//! All discovery functions are fallible: resource exhaustion and numerical
//! failure map to [`BaselineError`], which the harness renders as the
//! paper's "–" table entries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctane;
pub mod detect;
pub mod fd;
pub mod fdx;
pub mod tane;

pub use ctane::{
    ctane_discover, ctane_discover_variable, detect_variable_cfd_violations, Cfd, CtaneConfig,
    VariableCfd,
};
pub use detect::{detect_cfd_violations, detect_fd_violations, detect_fd_violations_minority};
pub use fd::Fd;
pub use fdx::{fdx_discover, FdxConfig};
pub use tane::{tane_discover, TaneConfig};

/// Why a baseline failed to produce constraints (rendered as "–" in Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Candidate lattice outgrew the configured budget (TANE/CTANE on wide
    /// schemas — the paper's out-of-memory case).
    ResourceExhausted {
        /// Candidates generated before giving up.
        candidates: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A numerical step failed (FDX's ill-conditioned matrix inversion on
    /// dataset #3).
    Numerical(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::ResourceExhausted { candidates, budget } => {
                write!(f, "candidate lattice exhausted budget ({candidates} > {budget})")
            }
            BaselineError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}
