//! Named tables and models.

use guardrail_ml::Classifier;
use guardrail_table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// A shareable fitted model.
pub type ModelRef = Arc<dyn Classifier + Send + Sync>;

/// The executor's name resolution context: registered tables and ML models.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    models: HashMap<String, ModelRef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Registers (or replaces) a model.
    pub fn add_model(&mut self, name: impl Into<String>, model: ModelRef) {
        self.models.insert(name.into(), model);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a model.
    pub fn model(&self, name: &str) -> Option<&ModelRef> {
        self.models.get(name)
    }

    /// Registered table names (sorted).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Materializes `query` and registers its result as table `name`.
    ///
    /// This is the paper's §7 workaround for multi-table workloads: "one can
    /// use the materialized views to pre-compute the results and use our
    /// query executor over multiple tables". The view is computed once, with
    /// the catalog's current contents and no guardrail interception.
    pub fn add_materialized_view(
        &mut self,
        name: impl Into<String>,
        query: &str,
    ) -> Result<(), crate::error::SqlError> {
        let result = crate::exec::Executor::new(self).run(query)?;
        self.tables.insert(name.into(), result.table);
        Ok(())
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("models", &self.models.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_ml::NaiveBayes;

    #[test]
    fn materialized_view_roundtrip() {
        let mut c = Catalog::new();
        c.add_table("people", Table::from_csv_str("city,age\nA,30\nA,40\nB,50\n").unwrap());
        c.add_materialized_view(
            "city_stats",
            "SELECT city, AVG(age) AS avg_age FROM people GROUP BY city ORDER BY city",
        )
        .unwrap();
        let view = c.table("city_stats").unwrap();
        assert_eq!(view.num_rows(), 2);
        assert_eq!(view.get(0, 1).unwrap().as_f64(), Some(35.0));
        // Views are queryable like base tables.
        let out = crate::exec::Executor::new(&c)
            .run("SELECT avg_age FROM city_stats WHERE city = 'B'")
            .unwrap();
        assert_eq!(out.table.get(0, 0).unwrap().as_f64(), Some(50.0));
        // Bad view queries surface errors.
        assert!(c.add_materialized_view("bad", "SELECT x FROM nope").is_err());
    }

    #[test]
    fn registration_and_lookup() {
        let mut c = Catalog::new();
        let t = Table::from_csv_str("a,label\n1,x\n2,y\n").unwrap();
        let model = NaiveBayes::fit(&t, 1);
        c.add_table("t", t);
        c.add_model("m", Arc::new(model));
        assert!(c.table("t").is_some());
        assert!(c.table("nope").is_none());
        assert!(c.model("m").is_some());
        assert_eq!(c.table_names(), vec!["t"]);
    }
}
