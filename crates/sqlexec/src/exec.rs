//! The query executor.

use crate::ast::{AggFunc, BinOp, Expr, Query, SortOrder};
use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::optimizer::split_pushdown;
use crate::parser::parse_query;
use guardrail_core::{ErrorScheme, Guardrail, RowOutcome};
use guardrail_table::{Row, Table, TableBuilder, Value};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Per-query execution statistics (the Table 6 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Rows in the base table.
    pub rows_scanned: usize,
    /// Rows surviving pushed-down predicates (== `rows_scanned` when no
    /// predicate was pushable).
    pub rows_after_pushdown: usize,
    /// Rows vetted by the guardrail before inference.
    pub rows_vetted: usize,
    /// Model invocations performed.
    pub predictions: usize,
    /// Nanoseconds spent in Guardrail row vetting.
    pub guardrail_nanos: u128,
    /// Nanoseconds spent in ML inference.
    pub inference_nanos: u128,
    /// Constraint violations encountered.
    pub violations: usize,
    /// Program statements served by the legacy row-at-a-time interpreter
    /// during batched vetting (decision-table key space past the engine's
    /// enumeration cap). Zero when every statement ran vectorized, and on
    /// the per-row fallback path (which never compiles an engine).
    pub engine_fallback_statements: usize,
}

impl fmt::Display for ExecutionStats {
    /// `EXPLAIN ANALYZE`-style rendering, one stage per line (the format
    /// [`Executor::explain_analyze`] appends below the plan).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Execution: scanned {} rows, {} after pushdown",
            self.rows_scanned, self.rows_after_pushdown
        )?;
        writeln!(
            f,
            "  Guardrail: vetted {} rows, {} violations, {:.3} ms ({} legacy-interpreter statements)",
            self.rows_vetted,
            self.violations,
            self.guardrail_nanos as f64 / 1e6,
            self.engine_fallback_statements
        )?;
        writeln!(
            f,
            "  Inference: {} predictions, {:.3} ms",
            self.predictions,
            self.inference_nanos as f64 / 1e6
        )
    }
}

/// A query result: the output relation plus execution statistics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows.
    pub table: Table,
    /// Statistics.
    pub stats: ExecutionStats,
}

/// Executes SQL against a [`Catalog`], optionally guarding every ML
/// inference with a fitted [`Guardrail`].
pub struct Executor<'a> {
    catalog: &'a Catalog,
    guardrail: Option<(&'a Guardrail, ErrorScheme)>,
    pushdown: bool,
}

impl<'a> Executor<'a> {
    /// An executor with predicate pushdown enabled and no guardrail.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog, guardrail: None, pushdown: true }
    }

    /// Installs a guardrail: every row feeding a `PREDICT` is vetted under
    /// `scheme` first (Fig. 1's interception point).
    pub fn with_guardrail(mut self, guardrail: &'a Guardrail, scheme: ErrorScheme) -> Self {
        self.guardrail = Some((guardrail, scheme));
        self
    }

    /// Toggles predicate pushdown (ablation hook).
    pub fn with_pushdown(mut self, enabled: bool) -> Self {
        self.pushdown = enabled;
        self
    }

    /// Parses and executes `sql`.
    pub fn run(&self, sql: &str) -> Result<QueryOutput, SqlError> {
        let query = parse_query(sql)?;
        self.run_query(&query)
    }

    /// Renders the execution plan for `sql` without running it — which
    /// predicates are pushed below the ML stage, where the guardrail
    /// intercepts, and the shape of the aggregation.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let query = parse_query(sql)?;
        let base = self
            .catalog
            .table(&query.from)
            .ok_or_else(|| SqlError::UnknownTable(query.from.clone()))?;
        let (pushed, residual) = if self.pushdown {
            split_pushdown(query.where_clause.as_ref(), base.schema())
        } else {
            (None, query.where_clause.clone())
        };
        let models = collect_models(&query);
        let mut out = format!(
            "Scan {} ({} rows, {} columns)\n",
            query.from,
            base.num_rows(),
            base.num_columns()
        );
        if let Some(p) = &pushed {
            out.push_str(&format!("  Pushdown filter: {p}\n"));
        }
        if !models.is_empty() {
            if let Some((_, scheme)) = self.guardrail {
                out.push_str(&format!("  Guardrail: {scheme:?}\n"));
            }
            out.push_str(&format!("  Predict: {}\n", models.join(", ")));
        }
        if let Some(r) = &residual {
            out.push_str(&format!("  Residual filter: {r}\n"));
        }
        let projections: Vec<String> =
            query.projections.iter().map(|p| format!("{} AS {}", p.expr, p.name)).collect();
        if !query.group_by.is_empty() || query.projections.iter().any(|p| p.expr.has_aggregate()) {
            let keys: Vec<String> = query.group_by.iter().map(|g| g.to_string()).collect();
            out.push_str(&format!(
                "  Aggregate: GROUP BY [{}] -> [{}]\n",
                keys.join(", "),
                projections.join(", ")
            ));
            if let Some(h) = &query.having {
                out.push_str(&format!("  Having: {h}\n"));
            }
        } else {
            out.push_str(&format!("  Project: [{}]\n", projections.join(", ")));
        }
        if !query.order_by.is_empty() {
            let keys: Vec<String> =
                query.order_by.iter().map(|(e, o)| format!("{e} {:?}", o).to_uppercase()).collect();
            out.push_str(&format!("  Sort: {}\n", keys.join(", ")));
        }
        if let Some(l) = query.limit {
            out.push_str(&format!("  Limit: {l}\n"));
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: renders the plan, executes the query, and appends
    /// the observed [`ExecutionStats`] below it.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, SqlError> {
        let plan = self.explain(sql)?;
        let out = self.run(sql)?;
        Ok(format!("{plan}{}", out.stats))
    }

    /// Executes a parsed query.
    pub fn run_query(&self, query: &Query) -> Result<QueryOutput, SqlError> {
        let base = self
            .catalog
            .table(&query.from)
            .ok_or_else(|| SqlError::UnknownTable(query.from.clone()))?;
        let mut query_span = guardrail_obs::span("run_query");
        query_span.arg("rows_scanned", base.num_rows() as u64);
        let mut stats =
            ExecutionStats { rows_scanned: base.num_rows(), ..ExecutionStats::default() };

        // Phase 1: predicate pushdown on the raw table.
        let (pushed, residual) = if self.pushdown {
            split_pushdown(query.where_clause.as_ref(), base.schema())
        } else {
            (None, query.where_clause.clone())
        };
        let empty_env = Env { row: None, aliases: &HashMap::new(), predictions: &HashMap::new() };
        let mut surviving: Vec<usize> = Vec::with_capacity(base.num_rows());
        for i in 0..base.num_rows() {
            match &pushed {
                None => surviving.push(i),
                Some(pred) => {
                    let row = base.row_owned(i).expect("row in range");
                    let env = Env { row: Some(&row), ..empty_env };
                    if truthy(&eval(pred, &env)?)? {
                        surviving.push(i);
                    }
                }
            }
        }
        stats.rows_after_pushdown = surviving.len();

        // Which models does the query call?
        let models = collect_models(query);
        for m in &models {
            if self.catalog.model(m).is_none() {
                return Err(SqlError::UnknownModel(m.clone()));
            }
        }

        // Phase 2: guardrail vetting, inference, alias computation, residual
        // filtering. Vetting is batched: the surviving rows are gathered
        // into a sub-table and checked in one vectorized decision-table
        // pass, instead of materializing a `Row` and re-resolving attribute
        // names per row. The per-row value-level hook remains as the
        // fallback for programs that do not bind to this table's schema.
        let scalar_projections: Vec<(usize, &Expr, &str)> = query
            .projections
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.expr.has_aggregate())
            .map(|(i, p)| (i, &p.expr, p.name.as_str()))
            .collect();

        let mut vetted: Option<Table> = None;
        if !models.is_empty() {
            if let Some((guard, scheme)) = self.guardrail {
                let t0 = Instant::now();
                let batch = guard.vet_rows(base, &surviving, scheme);
                stats.guardrail_nanos += t0.elapsed().as_nanos();
                if let Some(batch) = batch {
                    stats.rows_vetted += surviving.len();
                    stats.violations += batch.violations.len();
                    stats.engine_fallback_statements += batch.legacy_statements;
                    if matches!(scheme, ErrorScheme::Raise) {
                        // Violations are row-ordered, so the first one is on
                        // the first dirty row — where the per-row hook would
                        // have aborted.
                        if let Some(v) = batch.violations.first() {
                            return Err(SqlError::GuardrailRaise {
                                row: surviving[v.row],
                                detail: format!(
                                    "{} should be {} (found {})",
                                    v.attribute, v.expected, v.actual
                                ),
                            });
                        }
                    }
                    vetted = Some(batch.table);
                }
            }
        }

        struct Processed {
            row: Row,
            predictions: HashMap<String, Value>,
            aliases: HashMap<String, Value>,
        }
        let mut processed: Vec<Processed> = Vec::with_capacity(surviving.len());
        for (k, &i) in surviving.iter().enumerate() {
            let mut row = match &vetted {
                // Batched path: row k of the vetted sub-table is base row
                // `surviving[k]` after the error scheme was applied.
                Some(t) => t.row_owned(k).expect("row in range"),
                None => base.row_owned(i).expect("row in range"),
            };
            let mut predictions = HashMap::new();
            if !models.is_empty() {
                if vetted.is_none() {
                    if let Some((guard, scheme)) = self.guardrail {
                        let t0 = Instant::now();
                        let outcome = guard.handle_row(&row, scheme);
                        stats.guardrail_nanos += t0.elapsed().as_nanos();
                        stats.rows_vetted += 1;
                        stats.violations += outcome.violations().len();
                        match outcome {
                            RowOutcome::Raised(violations) => {
                                return Err(SqlError::GuardrailRaise {
                                    row: i,
                                    detail: violations
                                        .first()
                                        .map(|v| {
                                            format!(
                                                "{} should be {} (found {})",
                                                v.attribute, v.expected, v.actual
                                            )
                                        })
                                        .unwrap_or_default(),
                                })
                            }
                            outcome => {
                                row = outcome.row().expect("non-raise outcome has a row").clone();
                            }
                        }
                    }
                }
                let t0 = Instant::now();
                for m in &models {
                    let model = self.catalog.model(m).expect("checked above");
                    predictions.insert(m.clone(), model.predict_row(&row));
                    stats.predictions += 1;
                }
                stats.inference_nanos += t0.elapsed().as_nanos();
            }
            // Aliases for scalar projections (GROUP BY income_pred support).
            let mut aliases = HashMap::new();
            {
                let env = Env { row: Some(&row), aliases: &aliases, predictions: &predictions };
                let mut computed = Vec::new();
                for &(_, expr, name) in &scalar_projections {
                    computed.push((name.to_string(), eval(expr, &env)?));
                }
                aliases.extend(computed);
            }
            // Residual predicate.
            if let Some(pred) = &residual {
                let env = Env { row: Some(&row), aliases: &aliases, predictions: &predictions };
                if !truthy(&eval(pred, &env)?)? {
                    continue;
                }
            }
            processed.push(Processed { row, predictions, aliases });
        }

        // Phase 3: aggregation / projection.
        let has_aggregate = query.projections.iter().any(|p| p.expr.has_aggregate());
        let names: Vec<String> = query.projections.iter().map(|p| p.name.clone()).collect();
        let mut builder = TableBuilder::new(names);

        if has_aggregate || !query.group_by.is_empty() {
            // Group rows by the GROUP BY key.
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
            let mut index: HashMap<String, usize> = HashMap::new();
            for (ri, p) in processed.iter().enumerate() {
                let env =
                    Env { row: Some(&p.row), aliases: &p.aliases, predictions: &p.predictions };
                let mut key = Vec::with_capacity(query.group_by.len());
                for g in &query.group_by {
                    key.push(eval(g, &env)?);
                }
                let fingerprint = format!("{key:?}");
                match index.get(&fingerprint) {
                    Some(&gi) => groups[gi].1.push(ri),
                    None => {
                        index.insert(fingerprint, groups.len());
                        groups.push((key, vec![ri]));
                    }
                }
            }
            if groups.is_empty() && query.group_by.is_empty() {
                // Aggregates over an empty input still yield one row.
                groups.push((Vec::new(), Vec::new()));
            }
            groups.sort_by(|(ka, _), (kb, _)| ka.cmp(kb)); // deterministic output
                                                           // HAVING filters whole groups; aggregates inside it evaluate
                                                           // over the group's members.
            if let Some(having) = &query.having {
                let mut kept = Vec::with_capacity(groups.len());
                for (key, members) in groups {
                    let value = eval_aggregate(having, &members, &processed, |ri| Env {
                        row: Some(&processed[ri].row),
                        aliases: &processed[ri].aliases,
                        predictions: &processed[ri].predictions,
                    })?;
                    if truthy(&value)? {
                        kept.push((key, members));
                    }
                }
                groups = kept;
            }
            for (_, members) in &groups {
                let mut out_row = Vec::with_capacity(query.projections.len());
                for p in &query.projections {
                    if p.expr.has_aggregate() {
                        out_row.push(eval_aggregate(&p.expr, members, &processed, |ri| Env {
                            row: Some(&processed[ri].row),
                            aliases: &processed[ri].aliases,
                            predictions: &processed[ri].predictions,
                        })?);
                    } else {
                        // Scalar in a grouped query: value from the first
                        // member (callers group by it, per SQL convention).
                        match members.first() {
                            Some(&ri) => {
                                out_row.push(processed[ri].aliases[&p.name].clone());
                            }
                            None => out_row.push(Value::Null),
                        }
                    }
                }
                builder.push_row(out_row).expect("arity matches");
            }
        } else {
            for p in &processed {
                let out_row =
                    query.projections.iter().map(|item| p.aliases[&item.name].clone()).collect();
                builder.push_row(out_row).expect("arity matches");
            }
        }
        let mut table = builder.finish().map_err(|e| SqlError::Semantic(e.to_string()))?;

        // Phase 4: ORDER BY over the output relation.
        if !query.order_by.is_empty() {
            let mut keys: Vec<(Vec<Value>, Vec<SortOrder>, usize)> = Vec::new();
            for i in 0..table.num_rows() {
                let row = table.row_owned(i).expect("in range");
                let mut key = Vec::new();
                let mut orders = Vec::new();
                for (e, ord) in &query.order_by {
                    let env = Env {
                        row: Some(&row),
                        aliases: &HashMap::new(),
                        predictions: &HashMap::new(),
                    };
                    key.push(eval(e, &env)?);
                    orders.push(*ord);
                }
                keys.push((key, orders, i));
            }
            keys.sort_by(|(ka, orders, _), (kb, _, _)| {
                for ((a, b), ord) in ka.iter().zip(kb).zip(orders) {
                    let c = a.cmp(b);
                    let c = match ord {
                        SortOrder::Asc => c,
                        SortOrder::Desc => c.reverse(),
                    };
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let order: Vec<usize> = keys.into_iter().map(|(_, _, i)| i).collect();
            table = table.take(&order);
        }

        // Phase 5: LIMIT.
        if let Some(limit) = query.limit {
            table = table.head(limit);
        }

        query_span.arg("rows_vetted", stats.rows_vetted as u64);
        query_span.arg("violations", stats.violations as u64);
        query_span.arg("predictions", stats.predictions as u64);
        Ok(QueryOutput { table, stats })
    }
}

/// Evaluation environment for one row.
struct Env<'a> {
    row: Option<&'a Row>,
    aliases: &'a HashMap<String, Value>,
    predictions: &'a HashMap<String, Value>,
}

fn collect_models(query: &Query) -> Vec<String> {
    fn walk(expr: &Expr, out: &mut Vec<String>) {
        match expr {
            Expr::Predict { model } => {
                if !out.contains(model) {
                    out.push(model.clone());
                }
            }
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Not(e) => walk(e, out),
            Expr::Case { branches, otherwise } => {
                for (c, v) in branches {
                    walk(c, out);
                    walk(v, out);
                }
                if let Some(e) = otherwise {
                    walk(e, out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(e) = arg {
                    walk(e, out);
                }
            }
            Expr::Column(_) | Expr::Literal(_) => {}
        }
    }
    let mut out = Vec::new();
    for p in &query.projections {
        walk(&p.expr, &mut out);
    }
    if let Some(w) = &query.where_clause {
        walk(w, &mut out);
    }
    for g in &query.group_by {
        walk(g, &mut out);
    }
    for (e, _) in &query.order_by {
        walk(e, &mut out);
    }
    out
}

fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            if let Some(row) = env.row {
                if let Some(v) = row.get_by_name(name) {
                    return Ok(v.clone());
                }
            }
            if let Some(v) = env.aliases.get(name) {
                return Ok(v.clone());
            }
            Err(SqlError::UnknownColumn(name.clone()))
        }
        Expr::Predict { model } => {
            env.predictions.get(model).cloned().ok_or_else(|| SqlError::UnknownModel(model.clone()))
        }
        Expr::Not(e) => {
            let v = eval(e, env)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!truthy(&v)?))
            }
        }
        Expr::Case { branches, otherwise } => {
            for (cond, value) in branches {
                let c = eval(cond, env)?;
                if !c.is_null() && truthy(&c)? {
                    return eval(value, env);
                }
            }
            match otherwise {
                Some(e) => eval(e, env),
                None => Ok(Value::Null),
            }
        }
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => {
                    let l = eval(left, env)?;
                    if !l.is_null() && !truthy(&l)? {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval(right, env)?;
                    if !r.is_null() && !truthy(&r)? {
                        return Ok(Value::Bool(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(true))
                }
                BinOp::Or => {
                    let l = eval(left, env)?;
                    if !l.is_null() && truthy(&l)? {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval(right, env)?;
                    if !r.is_null() && truthy(&r)? {
                        return Ok(Value::Bool(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Bool(false))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = eval(left, env)?;
                    let r = eval(right, env)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null); // SQL three-valued logic
                    }
                    let out = match op {
                        BinOp::Eq => l == r,
                        BinOp::Ne => l != r,
                        BinOp::Lt => l < r,
                        BinOp::Le => l <= r,
                        BinOp::Gt => l > r,
                        BinOp::Ge => l >= r,
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(out))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let l = eval(left, env)?;
                    let r = eval(right, env)?;
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(SqlError::Semantic(format!(
                                "arithmetic on non-numeric values {l} and {r}"
                            )))
                        }
                    };
                    let result = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    // Keep integers integral when possible.
                    if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
                        && matches!((&l, &r), (Value::Int(_), Value::Int(_)))
                    {
                        Ok(Value::Int(result as i64))
                    } else {
                        Ok(Value::float(result))
                    }
                }
            }
        }
        Expr::Aggregate { .. } => {
            Err(SqlError::Semantic("aggregate used in a scalar context".into()))
        }
    }
}

fn eval_aggregate<'p, F>(
    expr: &Expr,
    members: &[usize],
    _processed: &'p [impl Sized],
    env_of: F,
) -> Result<Value, SqlError>
where
    F: Fn(usize) -> Env<'p> + Copy,
{
    match expr {
        Expr::Aggregate { func, arg } => match func {
            AggFunc::Count if arg.is_none() => Ok(Value::Int(members.len() as i64)),
            _ => {
                let arg = arg.as_ref().expect("non-COUNT(*) aggregate has an argument");
                let mut values = Vec::with_capacity(members.len());
                for &ri in members {
                    let v = eval(arg, &env_of(ri))?;
                    if !v.is_null() {
                        values.push(v);
                    }
                }
                match func {
                    AggFunc::Count => Ok(Value::Int(values.len() as i64)),
                    AggFunc::Min => Ok(values.iter().min().cloned().unwrap_or(Value::Null)),
                    AggFunc::Max => Ok(values.iter().max().cloned().unwrap_or(Value::Null)),
                    AggFunc::Sum | AggFunc::Avg => {
                        let nums: Option<Vec<f64>> = values.iter().map(|v| v.as_f64()).collect();
                        let nums = nums.ok_or_else(|| {
                            SqlError::Semantic("SUM/AVG over non-numeric values".into())
                        })?;
                        if nums.is_empty() {
                            return Ok(Value::Null);
                        }
                        let sum: f64 = nums.iter().sum();
                        match func {
                            AggFunc::Sum => Ok(Value::float(sum)),
                            AggFunc::Avg => Ok(Value::float(sum / nums.len() as f64)),
                            _ => unreachable!(),
                        }
                    }
                }
            }
        },
        // Aggregate embedded in arithmetic, e.g. `AVG(x) * 100`.
        Expr::Binary { op, left, right } => {
            let l = eval_aggregate(left, members, _processed, env_of)?;
            let r = eval_aggregate(right, members, _processed, env_of)?;
            let reduced = Expr::Binary {
                op: *op,
                left: Box::new(Expr::Literal(l)),
                right: Box::new(Expr::Literal(r)),
            };
            eval(&reduced, &env_of(*members.first().unwrap_or(&0)))
        }
        // Non-aggregate sub-expression inside an aggregate projection:
        // evaluate on the first member.
        other => match members.first() {
            Some(&ri) => eval(other, &env_of(ri)),
            None => Ok(Value::Null),
        },
    }
}

fn truthy(v: &Value) -> Result<bool, SqlError> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Null => Ok(false),
        other => Err(SqlError::Semantic(format!("expected boolean, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_core::GuardrailConfig;
    use guardrail_ml::NaiveBayes;
    use std::sync::Arc;

    fn people() -> Table {
        Table::from_csv_str(
            "age,city,income\n30,A,low\n40,A,high\n50,B,high\n20,B,low\n60,A,high\n",
        )
        .unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("people", people());
        c
    }

    fn run(sql: &str) -> Table {
        let c = catalog();
        Executor::new(&c).run(sql).unwrap().table
    }

    #[test]
    fn select_where_projection() {
        let t = run("SELECT age, city FROM people WHERE age >= 40");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().names(), vec!["age", "city"]);
    }

    #[test]
    fn group_by_aggregates() {
        let t = run(
            "SELECT city, AVG(age) AS a, COUNT(*) AS n FROM people GROUP BY city ORDER BY city",
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(0, 0), Some(Value::from("A")));
        assert!((t.get(0, 1).unwrap().as_f64().unwrap() - 130.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.get(0, 2), Some(Value::Int(3)));
        assert_eq!(t.get(1, 2), Some(Value::Int(2)));
    }

    #[test]
    fn case_when_inside_avg() {
        let t = run("SELECT AVG(CASE WHEN income = 'high' THEN 1 ELSE 0 END) AS frac FROM people");
        assert!((t.get(0, 0).unwrap().as_f64().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn global_aggregate_without_group() {
        let t =
            run("SELECT COUNT(*) AS n, MIN(age) AS lo, MAX(age) AS hi, SUM(age) AS s FROM people");
        assert_eq!(t.get(0, 0), Some(Value::Int(5)));
        assert_eq!(t.get(0, 1), Some(Value::Int(20)));
        assert_eq!(t.get(0, 2), Some(Value::Int(60)));
        assert_eq!(t.get(0, 3).unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn explain_shows_pushdown_and_stages() {
        let train = people();
        let model = NaiveBayes::fit(&train, 2);
        let mut c = catalog();
        c.add_model("m", Arc::new(model));
        let exec = Executor::new(&c);
        let plan = exec
            .explain(
                "SELECT PREDICT(m) AS p, AVG(age) AS a FROM people \
                 WHERE city = 'A' AND PREDICT(m) = 'high' GROUP BY p ORDER BY p LIMIT 3",
            )
            .unwrap();
        assert!(plan.contains("Scan people"), "{plan}");
        assert!(plan.contains("Pushdown filter: (city = 'A')"), "{plan}");
        assert!(plan.contains("Residual filter: (PREDICT(m) = 'high')"), "{plan}");
        assert!(plan.contains("Predict: m"), "{plan}");
        assert!(plan.contains("Aggregate: GROUP BY [p]"), "{plan}");
        assert!(plan.contains("Limit: 3"), "{plan}");
        // With pushdown disabled the whole WHERE becomes residual.
        let plan =
            exec.with_pushdown(false).explain("SELECT age FROM people WHERE city = 'A'").unwrap();
        assert!(!plan.contains("Pushdown filter"), "{plan}");
        assert!(plan.contains("Residual filter"), "{plan}");
    }

    #[test]
    fn in_between_execution() {
        let t = run("SELECT age FROM people WHERE age IN (30, 50) ORDER BY age");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(1, 0), Some(Value::Int(50)));
        let t = run("SELECT age FROM people WHERE age BETWEEN 35 AND 55 ORDER BY age");
        assert_eq!(t.num_rows(), 2); // 40 and 50
        let t = run("SELECT age FROM people WHERE city NOT IN ('A') ORDER BY age");
        assert_eq!(t.num_rows(), 2); // city B rows
    }

    #[test]
    fn having_filters_groups() {
        let t = run(
            "SELECT city, COUNT(*) AS n FROM people GROUP BY city HAVING COUNT(*) > 2 ORDER BY city",
        );
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, 0), Some(Value::from("A")));
        assert_eq!(t.get(0, 1), Some(Value::Int(3)));
        // HAVING on an aggregate not in the SELECT list.
        let t = run("SELECT city FROM people GROUP BY city HAVING AVG(age) < 40 ORDER BY city");
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, 0), Some(Value::from("B")));
        // HAVING that keeps nothing.
        let t = run("SELECT city FROM people GROUP BY city HAVING COUNT(*) > 99");
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn order_and_limit() {
        let t = run("SELECT age FROM people ORDER BY age DESC LIMIT 2");
        assert_eq!(t.get(0, 0), Some(Value::Int(60)));
        assert_eq!(t.get(1, 0), Some(Value::Int(50)));
    }

    #[test]
    fn arithmetic_in_projection() {
        let t = run("SELECT AVG(age) * 2 AS double_avg FROM people");
        assert_eq!(t.get(0, 0).unwrap().as_f64(), Some(80.0));
    }

    #[test]
    fn three_valued_logic_with_nulls() {
        let mut c = Catalog::new();
        c.add_table("t", Table::from_csv_str("a,b\n1,\n2,5\n").unwrap());
        let out = Executor::new(&c).run("SELECT a FROM t WHERE b > 1").unwrap().table;
        // NULL > 1 is NULL → filtered out.
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.get(0, 0), Some(Value::Int(2)));
    }

    #[test]
    fn errors() {
        let c = catalog();
        let e = Executor::new(&c);
        assert!(matches!(e.run("SELECT a FROM missing"), Err(SqlError::UnknownTable(_))));
        assert!(matches!(e.run("SELECT nope FROM people"), Err(SqlError::UnknownColumn(_))));
        assert!(matches!(
            e.run("SELECT PREDICT(ghost) FROM people"),
            Err(SqlError::UnknownModel(_))
        ));
        assert!(matches!(
            e.run("SELECT age FROM people WHERE age + 1"),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn predict_with_model() {
        let train = people();
        let model = NaiveBayes::fit(&train, 2); // income from age+city
        let mut c = catalog();
        c.add_model("income_model", Arc::new(model));
        let exec = Executor::new(&c);
        let out = exec
            .run("SELECT PREDICT(income_model) AS income_pred, COUNT(*) AS n FROM people GROUP BY income_pred ORDER BY income_pred")
            .unwrap();
        assert_eq!(out.stats.predictions, 5);
        let total: i64 =
            (0..out.table.num_rows()).map(|i| out.table.get(i, 1).unwrap().as_i64().unwrap()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn pushdown_reduces_inference() {
        let train = people();
        let model = NaiveBayes::fit(&train, 2);
        let mut c = catalog();
        c.add_model("m", Arc::new(model));
        let sql = "SELECT PREDICT(m) AS p FROM people WHERE city = 'A'";
        let with = Executor::new(&c).run(sql).unwrap();
        let without = Executor::new(&c).with_pushdown(false).run(sql).unwrap();
        assert_eq!(with.stats.predictions, 3, "pushdown must skip city B rows");
        assert_eq!(without.stats.predictions, 5);
        assert_eq!(with.table.num_rows(), without.table.num_rows());
        assert_eq!(with.stats.rows_after_pushdown, 3);
    }

    #[test]
    fn guardrail_rectifies_before_inference() {
        // Train guardrail + model on clean data where city determines income.
        let mut csv = String::from("city,income\n");
        for _ in 0..100 {
            csv.push_str("A,high\nB,low\n");
        }
        let clean = Table::from_csv_str(&csv).unwrap();
        let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
        let model = NaiveBayes::fit(&clean, 1);
        // Dirty inference data: income column corrupted (model input is city
        // + income? — use a model over city only by predicting income).
        let mut c = Catalog::new();
        c.add_table("d", Table::from_csv_str("city,income\nA,low\nB,low\n").unwrap());
        c.add_model("m", Arc::new(model));
        let exec = Executor::new(&c).with_guardrail(&guard, ErrorScheme::Rectify);
        let out = exec.run("SELECT PREDICT(m) AS p, city FROM d ORDER BY city").unwrap();
        assert!(out.stats.violations > 0, "corrupted row must be flagged");
        assert!(out.stats.guardrail_nanos > 0);
        assert_eq!(out.stats.rows_vetted, 2, "both surviving rows are vetted in the batch");
        assert_eq!(out.table.num_rows(), 2);
    }

    #[test]
    fn explain_analyze_surfaces_vetting_counters() {
        let mut csv = String::from("city,income\n");
        for _ in 0..100 {
            csv.push_str("A,high\nB,low\n");
        }
        let clean = Table::from_csv_str(&csv).unwrap();
        let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
        let model = NaiveBayes::fit(&clean, 1);
        let mut c = Catalog::new();
        c.add_table("d", Table::from_csv_str("city,income\nA,low\nB,low\n").unwrap());
        c.add_model("m", Arc::new(model));
        let exec = Executor::new(&c).with_guardrail(&guard, ErrorScheme::Rectify);
        let report = exec.explain_analyze("SELECT PREDICT(m) AS p, city FROM d").unwrap();
        assert!(report.contains("Scan d"), "{report}");
        assert!(report.contains("Guardrail: vetted 2 rows, 1 violations"), "{report}");
        assert!(report.contains("Inference: 2 predictions"), "{report}");
    }

    #[test]
    fn unbindable_program_falls_back_to_row_vetting() {
        // The guardrail's program mentions `income`, which the queried table
        // lacks: batched compilation is all-or-nothing, so vetting must fall
        // back to the value-level per-row hook (which flags the missing
        // attribute as Null ≠ literal).
        let mut csv = String::from("city,income\n");
        for _ in 0..100 {
            csv.push_str("A,high\nB,low\n");
        }
        let clean = Table::from_csv_str(&csv).unwrap();
        let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
        let model = NaiveBayes::fit(&clean, 1);
        let mut c = Catalog::new();
        c.add_table("d", Table::from_csv_str("city\nA\n").unwrap());
        c.add_model("m", Arc::new(model));
        let exec = Executor::new(&c).with_guardrail(&guard, ErrorScheme::Ignore);
        let out = exec.run("SELECT PREDICT(m) AS p FROM d").unwrap();
        assert_eq!(out.stats.rows_vetted, 1);
        assert!(out.stats.violations > 0, "Null income must disagree with the constraint");
        assert_eq!(out.table.num_rows(), 1);
    }

    #[test]
    fn guardrail_raise_aborts_query() {
        let mut csv = String::from("city,income\n");
        for _ in 0..100 {
            csv.push_str("A,high\nB,low\n");
        }
        let clean = Table::from_csv_str(&csv).unwrap();
        let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
        let model = NaiveBayes::fit(&clean, 1);
        let mut c = Catalog::new();
        c.add_table("d", Table::from_csv_str("city,income\nA,low\n").unwrap());
        c.add_model("m", Arc::new(model));
        let exec = Executor::new(&c).with_guardrail(&guard, ErrorScheme::Raise);
        let out = exec.run("SELECT PREDICT(m) AS p FROM d");
        assert!(matches!(out, Err(SqlError::GuardrailRaise { .. })), "{out:?}");
    }

    #[test]
    fn guardrail_only_intercepts_ml_queries() {
        // No PREDICT in the query → no vetting, no guardrail time, even with
        // a guardrail installed (the interception point is the model input).
        let mut csv = String::from("city,income\n");
        for _ in 0..50 {
            csv.push_str("A,high\nB,low\n");
        }
        let clean = Table::from_csv_str(&csv).unwrap();
        let guard = Guardrail::fit(&clean, &GuardrailConfig::default());
        let mut c = Catalog::new();
        c.add_table("d", Table::from_csv_str("city,income\nA,low\n").unwrap());
        let out = Executor::new(&c)
            .with_guardrail(&guard, ErrorScheme::Raise)
            .run("SELECT city FROM d")
            .unwrap();
        assert_eq!(out.stats.guardrail_nanos, 0);
        assert_eq!(out.stats.violations, 0);
        assert_eq!(out.stats.rows_vetted, 0);
        assert_eq!(out.table.num_rows(), 1);
    }

    #[test]
    fn empty_result_keeps_schema() {
        let t = run("SELECT age FROM people WHERE age > 1000");
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.schema().names(), vec!["age"]);
    }
}
