//! SQL abstract syntax.

use guardrail_table::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `AVG(expr)`
    Avg,
    /// `SUM(expr)`
    Sum,
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// Scalar / aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (qualifier already stripped).
    Column(String),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `CASE WHEN c THEN v [WHEN ...] [ELSE e] END`.
    Case {
        /// `(condition, value)` arms in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` value (`NULL` when absent).
        otherwise: Option<Box<Expr>>,
    },
    /// Aggregate call. `arg = None` encodes `COUNT(*)`.
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Argument (`None` only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// `PREDICT(model)`: the ML hook — evaluates to the model's prediction
    /// for the current (guardrail-vetted) row.
    Predict {
        /// Model name in the catalog.
        model: String,
    },
}

impl Expr {
    /// `true` if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Predict { .. } => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) => e.has_aggregate(),
            Expr::Case { branches, otherwise } => {
                branches.iter().any(|(c, v)| c.has_aggregate() || v.has_aggregate())
                    || otherwise.as_ref().map(|e| e.has_aggregate()).unwrap_or(false)
            }
        }
    }

    /// `true` if the expression contains a `PREDICT` call.
    pub fn has_predict(&self) -> bool {
        match self {
            Expr::Predict { .. } => true,
            Expr::Aggregate { arg, .. } => arg.as_ref().map(|e| e.has_predict()).unwrap_or(false),
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => left.has_predict() || right.has_predict(),
            Expr::Not(e) => e.has_predict(),
            Expr::Case { branches, otherwise } => {
                branches.iter().any(|(c, v)| c.has_predict() || v.has_predict())
                    || otherwise.as_ref().map(|e| e.has_predict()).unwrap_or(false)
            }
        }
    }

    /// Column names referenced (excluding names introduced by aliases).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) | Expr::Predict { .. } => {}
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Not(e) => e.columns(out),
            Expr::Case { branches, otherwise } => {
                for (c, v) in branches {
                    c.columns(out);
                    v.columns(out);
                }
                if let Some(e) = otherwise {
                    e.columns(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(e) = arg {
                    e.columns(out);
                }
            }
        }
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) if v.is_null() => f.write_str("NULL"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Case { branches, otherwise } => {
                f.write_str("CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Aggregate { func, arg } => {
                let name = match func {
                    AggFunc::Avg => "AVG",
                    AggFunc::Sum => "SUM",
                    AggFunc::Count => "COUNT",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                };
                match arg {
                    Some(e) => write!(f, "{name}({e})"),
                    None => write!(f, "{name}(*)"),
                }
            }
            Expr::Predict { model } => write!(f, "PREDICT({model})"),
        }
    }
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Output column name: the alias when given, else a rendered form.
    pub name: String,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub projections: Vec<SelectItem>,
    /// FROM table name.
    pub from: String,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions (may reference SELECT aliases).
    pub group_by: Vec<Expr>,
    /// HAVING predicate over groups (may contain aggregates).
    pub having: Option<Expr>,
    /// ORDER BY `(expr, order)` pairs (may reference output columns).
    pub order_by: Vec<(Expr, SortOrder)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_flags() {
        let agg =
            Expr::Aggregate { func: AggFunc::Avg, arg: Some(Box::new(Expr::Column("age".into()))) };
        assert!(agg.has_aggregate());
        assert!(!agg.has_predict());

        let pred_in_case = Expr::Case {
            branches: vec![(
                Expr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(Expr::Predict { model: "m".into() }),
                    right: Box::new(Expr::Literal(Value::Int(1))),
                },
                Expr::Literal(Value::Int(1)),
            )],
            otherwise: None,
        };
        assert!(pred_in_case.has_predict());
        assert!(!pred_in_case.has_aggregate());
    }

    #[test]
    fn column_collection() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Column("a".into())),
            right: Box::new(Expr::Not(Box::new(Expr::Column("b".into())))),
        };
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }
}
