//! ML-integrated SQL execution with Guardrail interception (§7).
//!
//! Off-the-shelf ML-in-SQL engines give no hook between the row and the
//! model, so the paper's authors built their own executor on pandas; this is
//! the Rust equivalent on [`guardrail-table`]:
//!
//! * [`token`] / [`parser`] / [`ast`] — a SQL dialect covering the paper's
//!   48 evaluation queries: `SELECT` with expressions and aliases,
//!   `CASE WHEN`, `WHERE`, `GROUP BY`, `ORDER BY`, aggregates
//!   (`AVG/SUM/COUNT/MIN/MAX`), and the ML hook `PREDICT(model)`.
//! * [`catalog`] — named tables and fitted models.
//! * [`exec`] — the executor: every row that reaches a `PREDICT` is first
//!   vetted by the configured [`guardrail_core::Guardrail`] under an
//!   [`guardrail_core::ErrorScheme`] (the Fig. 1 interception point), and
//!   the stats it returns break down guardrail vs inference time (Table 6).
//! * [`optimizer`] — predicate pushdown: WHERE conjuncts that do not depend
//!   on model output filter rows *before* any inference runs.
//!
//! # Example
//!
//! ```
//! use guardrail_sqlexec::{Catalog, Executor};
//! use guardrail_table::Table;
//!
//! let t = Table::from_csv_str("age,city\n30,A\n40,A\n50,B\n").unwrap();
//! let mut catalog = Catalog::new();
//! catalog.add_table("people", t);
//! let exec = Executor::new(&catalog);
//! let out = exec
//!     .run("SELECT city, AVG(age) AS avg_age FROM people GROUP BY city ORDER BY city")
//!     .unwrap();
//! assert_eq!(out.table.num_rows(), 2);
//! assert_eq!(out.table.get(0, 1).unwrap().as_f64(), Some(35.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod optimizer;
pub mod parser;
pub mod token;

pub use catalog::Catalog;
pub use error::SqlError;
pub use exec::{ExecutionStats, Executor, QueryOutput};
pub use parser::parse_query;
