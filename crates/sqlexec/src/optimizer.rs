//! Predicate pushdown (§7, "standard query optimization techniques").
//!
//! A `WHERE` predicate is split into its top-level `AND` conjuncts. A
//! conjunct can be pushed below the ML-inference stage exactly when it
//! references only base-table columns (no `PREDICT`, no aggregate, no
//! projection alias): those rows are filtered before any model — and any
//! guardrail check — runs, which is where the optimization pays off, since
//! inference dominates query time (Table 6).

use crate::ast::{BinOp, Expr};
use guardrail_table::Schema;

/// Splits an expression into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Rebuilds a conjunction from conjuncts; `None` for an empty list.
pub fn join_conjuncts(mut conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut expr = conjuncts.pop()?;
    while let Some(next) = conjuncts.pop() {
        expr = Expr::Binary { op: BinOp::And, left: Box::new(next), right: Box::new(expr) };
    }
    Some(expr)
}

/// `true` when the conjunct can be evaluated on the raw base row.
pub fn is_pushable(expr: &Expr, base: &Schema) -> bool {
    if expr.has_predict() || expr.has_aggregate() {
        return false;
    }
    let mut cols = Vec::new();
    expr.columns(&mut cols);
    cols.iter().all(|c| base.index_of(c).is_some())
}

/// Splits a WHERE clause into `(pushable, residual)` predicates.
pub fn split_pushdown(where_clause: Option<&Expr>, base: &Schema) -> (Option<Expr>, Option<Expr>) {
    let Some(expr) = where_clause else { return (None, None) };
    let (push, rest): (Vec<Expr>, Vec<Expr>) =
        split_conjuncts(expr).into_iter().partition(|c| is_pushable(c, base));
    (join_conjuncts(push), join_conjuncts(rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use guardrail_table::DataType;

    fn schema() -> Schema {
        Schema::from_pairs([("a", DataType::Int), ("b", DataType::Str)]).unwrap()
    }

    fn where_of(sql: &str) -> Expr {
        parse_query(sql).unwrap().where_clause.unwrap()
    }

    #[test]
    fn conjunct_splitting() {
        let e = where_of("SELECT a FROM t WHERE a = 1 AND b = 'x' AND a < 5");
        assert_eq!(split_conjuncts(&e).len(), 3);
        // OR does not split.
        let e = where_of("SELECT a FROM t WHERE a = 1 OR b = 'x'");
        assert_eq!(split_conjuncts(&e).len(), 1);
    }

    #[test]
    fn pushability() {
        let s = schema();
        assert!(is_pushable(&where_of("SELECT a FROM t WHERE a = 1"), &s));
        assert!(!is_pushable(&where_of("SELECT a FROM t WHERE PREDICT(m) = 1"), &s));
        assert!(!is_pushable(&where_of("SELECT a FROM t WHERE pred_alias = 1"), &s));
    }

    #[test]
    fn split_pushdown_partitions() {
        let s = schema();
        let e = where_of("SELECT a FROM t WHERE a = 1 AND PREDICT(m) = 'x' AND b = 'y'");
        let (push, rest) = split_pushdown(Some(&e), &s);
        let push = push.unwrap();
        let rest = rest.unwrap();
        assert_eq!(split_conjuncts(&push).len(), 2);
        assert!(rest.has_predict());
        assert_eq!(split_conjuncts(&rest).len(), 1);
    }

    #[test]
    fn roundtrip_join() {
        let e = where_of("SELECT a FROM t WHERE a = 1 AND b = 'x'");
        let parts = split_conjuncts(&e);
        let joined = join_conjuncts(parts.clone()).unwrap();
        assert_eq!(split_conjuncts(&joined), parts);
        assert!(join_conjuncts(vec![]).is_none());
    }
}
