//! Recursive-descent SQL parser.

use crate::ast::{AggFunc, BinOp, Expr, Query, SelectItem, SortOrder};
use crate::error::SqlError;
use crate::token::{tokenize, Spanned, Token};
use guardrail_table::Value;

/// Parses one `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if !p.at_end() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        let position = self.tokens.get(self.pos).map(|t| t.position).unwrap_or(usize::MAX);
        SqlError::Parse { position, message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.peek() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {kw}"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn punct(&mut self, p: &str) -> Result<(), SqlError> {
        match self.peek() {
            Some(Token::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {p:?}"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        match self.peek() {
            Some(Token::Punct(q)) if *q == p => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    /// An identifier, stripping one level of `table.` qualification.
    fn identifier(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Word(w)) => {
                if self.try_punct(".") {
                    match self.next() {
                        Some(Token::Word(col)) => Ok(col),
                        _ => Err(self.err("expected column after '.'")),
                    }
                } else {
                    Ok(w)
                }
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.keyword("SELECT")?;
        let mut projections = vec![self.select_item()?];
        while self.try_punct(",") {
            projections.push(self.select_item()?);
        }
        self.keyword("FROM")?;
        let from = match self.next() {
            Some(Token::Word(w)) => w,
            _ => return Err(self.err("expected table name")),
        };
        let mut where_clause = None;
        let mut group_by = Vec::new();
        let mut having = None;
        let mut order_by = Vec::new();
        let mut limit = None;
        // The paper's queries put WHERE after GROUP BY sometimes (Fig. 1);
        // accept the clauses in any order.
        loop {
            if self.try_keyword("WHERE") {
                if where_clause.is_some() {
                    return Err(self.err("duplicate WHERE"));
                }
                where_clause = Some(self.expr()?);
            } else if self.try_keyword("GROUP") {
                self.keyword("BY")?;
                group_by.push(self.expr()?);
                while self.try_punct(",") {
                    group_by.push(self.expr()?);
                }
            } else if self.try_keyword("HAVING") {
                if having.is_some() {
                    return Err(self.err("duplicate HAVING"));
                }
                having = Some(self.expr()?);
            } else if self.try_keyword("ORDER") {
                self.keyword("BY")?;
                loop {
                    let e = self.expr()?;
                    let ord = if self.try_keyword("DESC") {
                        SortOrder::Desc
                    } else {
                        let _ = self.try_keyword("ASC");
                        SortOrder::Asc
                    };
                    order_by.push((e, ord));
                    if !self.try_punct(",") {
                        break;
                    }
                }
            } else if self.try_keyword("LIMIT") {
                match self.next() {
                    Some(Token::Literal(Value::Int(n))) if n >= 0 => limit = Some(n as usize),
                    _ => return Err(self.err("expected row count after LIMIT")),
                }
            } else {
                break;
            }
        }
        Ok(Query { projections, from, where_clause, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let start = self.pos;
        let expr = self.expr()?;
        let name = if self.try_keyword("AS") {
            match self.next() {
                Some(Token::Word(w)) => w,
                _ => return Err(self.err("expected alias after AS")),
            }
        } else {
            default_name(&expr, self.pos - start)
        };
        Ok(SelectItem { expr, name })
    }

    // Precedence: OR < AND < NOT < comparison < additive < multiplicative < atom.
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.try_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.try_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.try_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        // `x IN (a, b, …)`, `x NOT IN (…)`, `x BETWEEN lo AND hi` desugar to
        // equality/comparison chains right here — the executor never sees
        // them.
        if self.try_keyword("IN") {
            return self.in_list(left, false);
        }
        {
            let save = self.pos;
            if self.try_keyword("NOT") {
                if self.try_keyword("IN") {
                    return self.in_list(left, true);
                }
                self.pos = save;
            }
        }
        if self.try_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Binary {
                op: BinOp::And,
                left: Box::new(Expr::Binary {
                    op: BinOp::Ge,
                    left: Box::new(left.clone()),
                    right: Box::new(lo),
                }),
                right: Box::new(Expr::Binary {
                    op: BinOp::Le,
                    left: Box::new(left),
                    right: Box::new(hi),
                }),
            });
        }
        let op = match self.peek() {
            Some(Token::Punct("=")) | Some(Token::Punct("==")) => Some(BinOp::Eq),
            Some(Token::Punct("!=")) | Some(Token::Punct("<>")) => Some(BinOp::Ne),
            Some(Token::Punct("<")) => Some(BinOp::Lt),
            Some(Token::Punct("<=")) => Some(BinOp::Le),
            Some(Token::Punct(">")) => Some(BinOp::Gt),
            Some(Token::Punct(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.pos += 1;
                let right = self.additive()?;
                Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
            }
        }
    }

    /// Finishes `left IN (e₁, …, eₙ)` as an OR-chain of equalities
    /// (negated when `negate`).
    fn in_list(&mut self, left: Expr, negate: bool) -> Result<Expr, SqlError> {
        self.punct("(")?;
        let mut items = vec![self.expr()?];
        while self.try_punct(",") {
            items.push(self.expr()?);
        }
        self.punct(")")?;
        let mut chain: Option<Expr> = None;
        for item in items {
            let eq =
                Expr::Binary { op: BinOp::Eq, left: Box::new(left.clone()), right: Box::new(item) };
            chain = Some(match chain {
                None => eq,
                Some(prev) => {
                    Expr::Binary { op: BinOp::Or, left: Box::new(prev), right: Box::new(eq) }
                }
            });
        }
        let chain = chain.expect("at least one item parsed");
        Ok(if negate { Expr::Not(Box::new(chain)) } else { chain })
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("+")) => BinOp::Add,
                Some(Token::Punct("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct("*")) => BinOp::Mul,
                Some(Token::Punct("/")) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Literal(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(v))
            }
            Some(Token::Punct("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.punct(")")?;
                Ok(e)
            }
            Some(Token::Punct("-")) => {
                // Unary minus: fold into the literal when the operand is a
                // numeric constant (so `-1` round-trips as a literal), else
                // desugar to `0 - expr`.
                self.pos += 1;
                let inner = self.atom()?;
                match inner {
                    Expr::Literal(Value::Int(i)) => Ok(Expr::Literal(Value::Int(-i))),
                    Expr::Literal(Value::Float(f)) => Ok(Expr::Literal(Value::float(-f))),
                    other => Ok(Expr::Binary {
                        op: BinOp::Sub,
                        left: Box::new(Expr::Literal(Value::Int(0))),
                        right: Box::new(other),
                    }),
                }
            }
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                if let Some(func) = agg_func(&w) {
                    if matches!(
                        self.tokens.get(self.pos + 1).map(|s| &s.token),
                        Some(Token::Punct("("))
                    ) {
                        self.pos += 2; // word + (
                        let arg = if func == AggFunc::Count && self.try_punct("*") {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.punct(")")?;
                        return Ok(Expr::Aggregate { func, arg });
                    }
                }
                if w.eq_ignore_ascii_case("PREDICT")
                    && matches!(
                        self.tokens.get(self.pos + 1).map(|s| &s.token),
                        Some(Token::Punct("("))
                    )
                {
                    self.pos += 2;
                    let model = match self.next() {
                        Some(Token::Word(m)) => m,
                        _ => return Err(self.err("expected model name in PREDICT()")),
                    };
                    self.punct(")")?;
                    return Ok(Expr::Predict { model });
                }
                // plain (possibly qualified) column
                let name = self.identifier()?;
                Ok(Expr::Column(name))
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, SqlError> {
        self.keyword("CASE")?;
        let mut branches = Vec::new();
        while self.try_keyword("WHEN") {
            let cond = self.expr()?;
            self.keyword("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.err("CASE needs at least one WHEN"));
        }
        let otherwise = if self.try_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.keyword("END")?;
        Ok(Expr::Case { branches, otherwise })
    }
}

fn agg_func(word: &str) -> Option<AggFunc> {
    match word.to_ascii_uppercase().as_str() {
        "AVG" => Some(AggFunc::Avg),
        "SUM" => Some(AggFunc::Sum),
        "COUNT" => Some(AggFunc::Count),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn default_name(expr: &Expr, salt: usize) -> String {
    match expr {
        Expr::Column(c) => c.clone(),
        Expr::Predict { model } => format!("predict_{model}"),
        Expr::Aggregate { func, arg } => {
            let f = match func {
                AggFunc::Avg => "avg",
                AggFunc::Sum => "sum",
                AggFunc::Count => "count",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg.as_deref() {
                Some(Expr::Column(c)) => format!("{f}_{c}"),
                _ => format!("{f}_{salt}"),
            }
        }
        _ => format!("expr_{salt}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_case_study_query() {
        let q = parse_query(
            "SELECT PREDICT(income_model) AS income_pred, AVG(adult.age) \
             FROM adult GROUP BY income_pred WHERE adult.workclass == 'Private'",
        )
        .unwrap();
        assert_eq!(q.from, "adult");
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.projections[0].name, "income_pred");
        assert!(matches!(q.projections[0].expr, Expr::Predict { .. }));
        assert_eq!(q.projections[1].name, "avg_age");
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by, vec![Expr::Column("income_pred".into())]);
    }

    #[test]
    fn parses_case_when_aggregate() {
        let q = parse_query("SELECT AVG(CASE WHEN label = 1 THEN 1 ELSE 0 END) FROM t").unwrap();
        assert!(q.projections[0].expr.has_aggregate());
    }

    #[test]
    fn parses_count_star_and_order_limit() {
        let q = parse_query(
            "SELECT city, COUNT(*) AS n FROM t GROUP BY city ORDER BY n DESC, city LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].1, SortOrder::Desc);
        assert_eq!(q.limit, Some(5));
        assert!(matches!(
            q.projections[1].expr,
            Expr::Aggregate { func: AggFunc::Count, arg: None }
        ));
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR is the root.
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_unary_minus() {
        let q = parse_query("SELECT a + b * 2 FROM t WHERE c > -1").unwrap();
        match &q.projections[0].expr {
            Expr::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_and_between_desugar() {
        let q = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        // OR chain of equalities.
        let mut count = 0;
        fn count_eq(e: &Expr, n: &mut usize) {
            match e {
                Expr::Binary { op: BinOp::Eq, .. } => *n += 1,
                Expr::Binary { left, right, .. } => {
                    count_eq(left, n);
                    count_eq(right, n);
                }
                Expr::Not(inner) => count_eq(inner, n),
                _ => {}
            }
        }
        count_eq(&q.where_clause.unwrap(), &mut count);
        assert_eq!(count, 3);

        let q = parse_query("SELECT a FROM t WHERE a NOT IN (1, 2)").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Not(_)));

        let q = parse_query("SELECT a FROM t WHERE a BETWEEN 2 AND 5").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { op: BinOp::And, left, right } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Ge, .. }));
                assert!(matches!(*right, Expr::Binary { op: BinOp::Le, .. }));
            }
            other => panic!("{other:?}"),
        }
        // NOT followed by a plain expression still parses.
        assert!(parse_query("SELECT a FROM t WHERE NOT a = 1 AND b NOT IN (2)").is_ok());
    }

    #[test]
    fn not_expression() {
        let q = parse_query("SELECT a FROM t WHERE NOT a = 1").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a").is_err());
        assert!(parse_query("SELECT a FROM t garbage here").is_err());
        assert!(parse_query("SELECT CASE END FROM t").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
    }
}
