//! SQL errors.

use std::fmt;

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical/syntactic problem.
    Parse {
        /// Byte offset in the source.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// Unknown table in FROM.
    UnknownTable(String),
    /// Unknown model in PREDICT.
    UnknownModel(String),
    /// Unknown column reference.
    UnknownColumn(String),
    /// An expression was used in an invalid position (e.g. aggregate inside
    /// WHERE, bare column outside GROUP BY).
    Semantic(String),
    /// The guardrail raised on a violating row under `ErrorScheme::Raise`.
    GuardrailRaise {
        /// The violating row's index in the base table.
        row: usize,
        /// Human-readable description of the first violation.
        detail: String,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { position, message } => {
                write!(f, "SQL parse error at byte {position}: {message}")
            }
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlError::GuardrailRaise { row, detail } => {
                write!(f, "guardrail raised on row {row}: {detail}")
            }
        }
    }
}

impl std::error::Error for SqlError {}
