//! SQL tokenizer.

use crate::error::SqlError;
use guardrail_table::Value;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively at parse time; the original spelling is kept).
    Word(String),
    /// Numeric / string / boolean / NULL literal.
    Literal(Value),
    /// Punctuation: `( ) , * . = != <> < <= > >= + -`
    Punct(&'static str),
}

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub position: usize,
}

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // comment to end of line
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'\'' => {
                let start = pos;
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(SqlError::Parse {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                pos += 2;
                            } else {
                                pos += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            pos += 1;
                        }
                    }
                }
                out.push(Spanned { token: Token::Literal(Value::Str(s)), position: start });
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut is_float = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' => pos += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            pos += 1;
                        }
                        b'e' | b'E' => {
                            is_float = true;
                            pos += 1;
                            if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                                pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let tok = &input[start..pos];
                let value = if is_float {
                    tok.parse::<f64>().map(Value::float).map_err(|_| SqlError::Parse {
                        position: start,
                        message: format!("bad number {tok:?}"),
                    })?
                } else {
                    tok.parse::<i64>().map(Value::Int).map_err(|_| SqlError::Parse {
                        position: start,
                        message: format!("bad number {tok:?}"),
                    })?
                };
                out.push(Spanned { token: Token::Literal(value), position: start });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'"' => {
                let start = pos;
                let word = if c == b'"' {
                    // quoted identifier
                    pos += 1;
                    let s = pos;
                    while pos < bytes.len() && bytes[pos] != b'"' {
                        pos += 1;
                    }
                    if pos >= bytes.len() {
                        return Err(SqlError::Parse {
                            position: start,
                            message: "unterminated quoted identifier".into(),
                        });
                    }
                    let w = input[s..pos].to_string();
                    pos += 1;
                    w
                } else {
                    while pos < bytes.len()
                        && (bytes[pos].is_ascii_alphanumeric()
                            || bytes[pos] == b'_'
                            || bytes[pos] == b'-')
                    {
                        // Hyphenated column names (marital-status) are words
                        // unless the hyphen is followed by a digit-only tail
                        // starting an arithmetic context; the paper's schemas
                        // use hyphens, arithmetic uses spaces.
                        pos += 1;
                    }
                    input[start..pos].to_string()
                };
                match word.to_ascii_uppercase().as_str() {
                    "TRUE" => out.push(Spanned {
                        token: Token::Literal(Value::Bool(true)),
                        position: start,
                    }),
                    "FALSE" => out.push(Spanned {
                        token: Token::Literal(Value::Bool(false)),
                        position: start,
                    }),
                    "NULL" => {
                        out.push(Spanned { token: Token::Literal(Value::Null), position: start })
                    }
                    _ => out.push(Spanned { token: Token::Word(word), position: start }),
                }
            }
            _ => {
                let two = input.get(pos..pos + 2);
                let punct: &'static str = match (c, two) {
                    (_, Some("!=")) => "!=",
                    (_, Some("<>")) => "<>",
                    (_, Some("<=")) => "<=",
                    (_, Some(">=")) => ">=",
                    (_, Some("==")) => "==",
                    (b'(', _) => "(",
                    (b')', _) => ")",
                    (b',', _) => ",",
                    (b'*', _) => "*",
                    (b'.', _) => ".",
                    (b'=', _) => "=",
                    (b'<', _) => "<",
                    (b'>', _) => ">",
                    (b'+', _) => "+",
                    (b'-', _) => "-",
                    (b'/', _) => "/",
                    _ => {
                        return Err(SqlError::Parse {
                            position: pos,
                            message: format!("unexpected character {:?}", c as char),
                        })
                    }
                };
                pos += punct.len();
                out.push(Spanned { token: Token::Punct(punct), position: pos - punct.len() });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn words_literals_puncts() {
        let t = toks("SELECT a, AVG(b) FROM t WHERE c = 'x y' AND d >= 4.5");
        assert!(t.contains(&Token::Word("SELECT".into())));
        assert!(t.contains(&Token::Punct("(")));
        assert!(t.contains(&Token::Literal(Value::from("x y"))));
        assert!(t.contains(&Token::Punct(">=")));
        assert!(t.contains(&Token::Literal(Value::Float(4.5))));
    }

    #[test]
    fn escaped_quotes_and_keywords() {
        let t = toks("'it''s' TRUE null");
        assert_eq!(t[0], Token::Literal(Value::from("it's")));
        assert_eq!(t[1], Token::Literal(Value::Bool(true)));
        assert_eq!(t[2], Token::Literal(Value::Null));
    }

    #[test]
    fn hyphenated_identifiers() {
        let t = toks("marital-status");
        assert_eq!(t, vec![Token::Word("marital-status".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT 1 -- trailing\n, 2");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn double_equals_and_neq() {
        assert_eq!(toks("a == b")[1], Token::Punct("=="));
        assert_eq!(toks("a <> b")[1], Token::Punct("<>"));
    }

    #[test]
    fn errors_reported_with_position() {
        assert!(matches!(tokenize("SELECT 'oops"), Err(SqlError::Parse { .. })));
        assert!(matches!(tokenize("a ; b"), Err(SqlError::Parse { position: 2, .. })));
    }

    #[test]
    fn quoted_identifier() {
        assert_eq!(toks("\"weird col\""), vec![Token::Word("weird col".into())]);
    }
}
