//! Structure learning for Guardrail's sketch synthesis (§4 of the paper).
//!
//! The sketch learner views the dataset through the lens of probabilistic
//! graphical models: it learns the CPDAG of the data's Markov equivalence
//! class and hands it to the synthesizer ([`guardrail-synth`]). This crate
//! contains:
//!
//! * [`encode`] — tables re-encoded as dense code matrices (nulls get their
//!   own category), the input format every test consumes.
//! * [`oracle`] — conditional-independence oracles: a G²/X²-based
//!   [`oracle::DataOracle`] over encoded data and a d-separation-backed
//!   [`oracle::DagOracle`] used as ground truth in tests.
//! * [`pc`] — the PC-stable algorithm: skeleton discovery with separation
//!   sets, v-structure orientation, Meek closure → CPDAG.
//! * [`aux`] — the auxiliary distribution `P_𝕀` of Def. 4.5, sampled with the
//!   circular-shift trick (§7), which preserves the PGM (Prop. 5) while
//!   collapsing high-cardinality attributes to binary indicators.
//! * [`score`] / [`hillclimb`] — a decomposable BIC scorer and greedy
//!   score-based structure search, the ablation counterpart to PC.
//! * [`learn`] — the end-to-end entry point `learn_cpdag`, parameterized by
//!   sampler and algorithm.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aux;
pub mod encode;
pub mod hillclimb;
pub mod learn;
pub mod oracle;
pub mod pc;
pub mod score;

pub use aux::auxiliary_sample;
pub use encode::EncodedData;
pub use hillclimb::{hill_climb_cpdag, hill_climb_dag, HillClimbConfig};
pub use learn::{
    learn_cpdag, learn_cpdag_encoded, learn_cpdag_encoded_governed, learn_cpdag_governed,
    Algorithm, LearnConfig, LearnOutcome, Sampler,
};
pub use oracle::{DagOracle, DataOracle, IndependenceOracle, SlowOracle, StatsCacheStats};
pub use pc::{pc_algorithm, pc_algorithm_governed, PcConfig, PC_STAGE};
pub use score::BicScorer;
