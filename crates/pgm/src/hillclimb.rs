//! Score-based structure learning: greedy hill climbing over DAGs with the
//! BIC score.
//!
//! The paper learns structure with constraint-based tests (PC); score-based
//! search is the classical alternative and serves here as an ablation
//! (`Algorithm::HillClimbBic` in [`crate::learn::LearnConfig`]). Starting
//! from the empty graph, the search greedily applies the best of
//! {add, delete, reverse} edge moves until no move improves the BIC,
//! exploiting decomposability to rescore only affected families.

use crate::encode::EncodedData;
use crate::score::BicScorer;
use guardrail_graph::{Dag, NodeSet, Pdag};

/// Hill-climbing configuration.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbConfig {
    /// Maximum parents per node (keeps families scorable on sparse data).
    pub max_parents: usize,
    /// Maximum greedy moves (safety bound; search normally converges first).
    pub max_iterations: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        Self { max_parents: 3, max_iterations: 1_000 }
    }
}

/// Learns a DAG by greedy BIC hill climbing and returns its CPDAG (so the
/// rest of the pipeline — MEC enumeration, Alg. 2 — is agnostic to how the
/// structure was learned).
pub fn hill_climb_cpdag(data: &EncodedData, config: &HillClimbConfig) -> Pdag {
    hill_climb_dag(data, config).to_cpdag()
}

/// Learns a DAG by greedy BIC hill climbing.
pub fn hill_climb_dag(data: &EncodedData, config: &HillClimbConfig) -> Dag {
    let n = data.num_attrs();
    let mut scorer = BicScorer::new(data);
    let mut parents: Vec<NodeSet> = vec![NodeSet::EMPTY; n];
    let mut dag = Dag::new(n);

    for _ in 0..config.max_iterations {
        let mut best: Option<(Move, f64)> = None;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                if dag.has_edge(u, v) {
                    // Delete u → v.
                    let mut pa = parents[v];
                    pa.remove(u);
                    let delta = scorer.family_score(v, pa) - scorer.family_score(v, parents[v]);
                    consider(&mut best, Move::Delete(u, v), delta);
                    // Reverse to v → u.
                    if parents[u].len() < config.max_parents
                        && !creates_cycle_on_reverse(&dag, u, v)
                    {
                        let mut pa_u = parents[u];
                        pa_u.insert(v);
                        let delta = delta + scorer.family_score(u, pa_u)
                            - scorer.family_score(u, parents[u]);
                        consider(&mut best, Move::Reverse(u, v), delta);
                    }
                } else if !dag.has_edge(v, u)
                    && parents[v].len() < config.max_parents
                    && !dag.reachable(v, u)
                {
                    // Add u → v (acyclic by the reachability check).
                    let mut pa = parents[v];
                    pa.insert(u);
                    let delta = scorer.family_score(v, pa) - scorer.family_score(v, parents[v]);
                    consider(&mut best, Move::Add(u, v), delta);
                }
            }
        }
        match best {
            Some((mv, delta)) if delta > 1e-9 => {
                apply(&mut dag, &mut parents, mv);
            }
            _ => break,
        }
    }
    dag
}

#[derive(Debug, Clone, Copy)]
enum Move {
    Add(usize, usize),
    Delete(usize, usize),
    Reverse(usize, usize),
}

fn consider(best: &mut Option<(Move, f64)>, mv: Move, delta: f64) {
    if best.map(|(_, d)| delta > d).unwrap_or(true) {
        *best = Some((mv, delta));
    }
}

/// Reversing `u → v` to `v → u` creates a cycle iff `u` can still reach `v`
/// after the original edge is removed.
fn creates_cycle_on_reverse(dag: &Dag, u: usize, v: usize) -> bool {
    let mut without = Dag::new(dag.num_nodes());
    for (a, b) in dag.edges() {
        if !(a == u && b == v) {
            without.add_edge_unchecked(a, b);
        }
    }
    without.reachable(u, v)
}

fn apply(dag: &mut Dag, parents: &mut [NodeSet], mv: Move) {
    // Rebuild is O(E) but moves are few; clarity over micro-optimizing.
    let rebuild = |edges: Vec<(usize, usize)>, n: usize| {
        let mut d = Dag::new(n);
        for (a, b) in edges {
            d.add_edge_unchecked(a, b);
        }
        d
    };
    let n = dag.num_nodes();
    let mut edges = dag.edges();
    match mv {
        Move::Add(u, v) => {
            edges.push((u, v));
            parents[v].insert(u);
        }
        Move::Delete(u, v) => {
            edges.retain(|&e| e != (u, v));
            parents[v].remove(u);
        }
        Move::Reverse(u, v) => {
            edges.retain(|&e| e != (u, v));
            edges.push((v, u));
            parents[v].remove(u);
            parents[u].insert(v);
        }
    }
    *dag = rebuild(edges, n);
    debug_assert!(dag.topological_order().is_some(), "moves must preserve acyclicity");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// zip → city → state chain with light noise.
    fn chain_data(n: usize) -> EncodedData {
        let mut rng = xorshift(21);
        let mut zip = Vec::new();
        let mut city = Vec::new();
        let mut state = Vec::new();
        for _ in 0..n {
            let z = (rng() % 6) as u32;
            let c = if rng() % 100 == 0 { (rng() % 3) as u32 } else { z / 2 };
            let s = if rng() % 100 == 0 { (rng() % 2) as u32 } else { u32::from(c == 2) };
            zip.push(z);
            city.push(c);
            state.push(s);
        }
        EncodedData::from_parts(
            vec![zip, city, state],
            vec![6, 3, 2],
            vec!["zip".into(), "city".into(), "state".into()],
        )
    }

    #[test]
    fn recovers_chain_skeleton() {
        let data = chain_data(3000);
        let dag = hill_climb_dag(&data, &HillClimbConfig::default());
        assert!(dag.adjacent(0).contains(1), "zip—city missing: {:?}", dag.edges());
        assert!(dag.adjacent(1).contains(2), "city—state missing: {:?}", dag.edges());
        assert!(!dag.adjacent(0).contains(2), "spurious zip—state: {:?}", dag.edges());
    }

    #[test]
    fn cpdag_wrapper_matches_mec_of_dag() {
        let data = chain_data(2000);
        let dag = hill_climb_dag(&data, &HillClimbConfig::default());
        let cpdag = hill_climb_cpdag(&data, &HillClimbConfig::default());
        assert_eq!(cpdag, dag.to_cpdag());
    }

    #[test]
    fn independent_data_learns_empty_graph() {
        let mut rng = xorshift(5);
        let n = 2000;
        let cols: Vec<Vec<u32>> =
            (0..3).map(|_| (0..n).map(|_| (rng() % 4) as u32).collect()).collect();
        let data =
            EncodedData::from_parts(cols, vec![4, 4, 4], (0..3).map(|i| format!("a{i}")).collect());
        let dag = hill_climb_dag(&data, &HillClimbConfig::default());
        assert_eq!(dag.num_edges(), 0, "{:?}", dag.edges());
    }

    #[test]
    fn respects_max_parents() {
        let data = chain_data(1000);
        let dag = hill_climb_dag(&data, &HillClimbConfig { max_parents: 1, max_iterations: 100 });
        for v in 0..3 {
            assert!(dag.parents(v).len() <= 1);
        }
    }
}
