//! Dense code matrices for independence testing.

use guardrail_table::{Table, NULL_CODE};

/// A table re-encoded for statistics: per column, a dense `u32` code vector
/// with codes in `0..card` (missing values are assigned the extra code
/// `card - 1` when present, so every cell is a valid category).
#[derive(Debug, Clone)]
pub struct EncodedData {
    columns: Vec<Vec<u32>>,
    cards: Vec<usize>,
    names: Vec<String>,
}

impl EncodedData {
    /// Encodes all columns of `table`.
    pub fn from_table(table: &Table) -> Self {
        let mut columns = Vec::with_capacity(table.num_columns());
        let mut cards = Vec::with_capacity(table.num_columns());
        for col in table.columns() {
            let base = col.distinct_count();
            // One pass per column: remap nulls to the extra code while
            // detecting whether any occur (no separate `contains` scan).
            let mut has_null = false;
            let codes = col
                .codes()
                .iter()
                .map(|&c| {
                    if c == NULL_CODE {
                        has_null = true;
                        base as u32
                    } else {
                        c
                    }
                })
                .collect();
            columns.push(codes);
            // A column of all nulls still needs cardinality ≥ 1.
            cards.push((base + usize::from(has_null)).max(1));
        }
        let names = table.schema().names().iter().map(|s| s.to_string()).collect();
        Self { columns, cards, names }
    }

    /// Builds encoded data directly from code columns (used by the auxiliary
    /// sampler, whose binary indicators never pass through a `Table`).
    pub fn from_parts(columns: Vec<Vec<u32>>, cards: Vec<usize>, names: Vec<String>) -> Self {
        assert_eq!(columns.len(), cards.len());
        assert_eq!(columns.len(), names.len());
        let n = columns.first().map(|c| c.len()).unwrap_or(0);
        for (col, &card) in columns.iter().zip(&cards) {
            assert_eq!(col.len(), n, "columns must be aligned");
            debug_assert!(col.iter().all(|&c| (c as usize) < card), "code outside cardinality");
        }
        Self { columns, cards, names }
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Code vector of attribute `i`.
    pub fn column(&self, i: usize) -> &[u32] {
        &self.columns[i]
    }

    /// Cardinality of attribute `i`.
    pub fn card(&self, i: usize) -> usize {
        self.cards[i]
    }

    /// All cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Attribute names (parallel to columns).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_table_columns() {
        let t = Table::from_csv_str("a,b\nx,1\ny,2\nx,1\n").unwrap();
        let e = EncodedData::from_table(&t);
        assert_eq!(e.num_attrs(), 2);
        assert_eq!(e.num_rows(), 3);
        assert_eq!(e.card(0), 2);
        assert_eq!(e.column(0), &[0, 1, 0]);
        assert_eq!(e.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn nulls_get_their_own_category() {
        let t = Table::from_csv_str("a,b\nx,1\n,2\ny,3\n").unwrap();
        let e = EncodedData::from_table(&t);
        assert_eq!(e.card(0), 3);
        assert_eq!(e.column(0), &[0, 2, 1]);
    }

    #[test]
    fn all_null_column() {
        let t = Table::from_csv_str("a,b\n,1\n,2\n").unwrap();
        let e = EncodedData::from_table(&t);
        assert_eq!(e.card(0), 1);
        assert_eq!(e.column(0), &[0, 0]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let e = EncodedData::from_parts(
            vec![vec![0, 1, 0], vec![1, 1, 0]],
            vec![2, 2],
            vec!["i0".into(), "i1".into()],
        );
        assert_eq!(e.num_rows(), 3);
        assert_eq!(e.card(1), 2);
    }
}
