//! End-to-end CPDAG learning from a table.

use crate::aux::auxiliary_sample;
use crate::encode::EncodedData;
use crate::oracle::{DataOracle, StatsCacheStats};
use crate::pc::{pc_algorithm_governed, PcConfig};
use guardrail_governor::{Budget, Parallelism, StageStatus};
use guardrail_graph::Pdag;
use guardrail_obs as obs;
use guardrail_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which view of the data the independence tests see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampler {
    /// Learn on the auxiliary binary distribution of Def. 4.5 (the paper's
    /// default; robust to high-cardinality attributes — Table 8).
    #[default]
    Auxiliary,
    /// Learn directly on the raw encoded data (the Table 8 ablation).
    Identity,
}

/// Which structure-learning algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Constraint-based PC-stable with G² tests (the paper's approach).
    #[default]
    PcStable,
    /// Score-based greedy hill climbing with BIC (ablation; the paper's
    /// future-work "sophisticated search strategies" axis).
    HillClimbBic,
}

/// Configuration for [`learn_cpdag`].
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Structure-learning algorithm.
    pub algorithm: Algorithm,
    /// Data view for independence testing.
    pub sampler: Sampler,
    /// Significance level of the G² tests (PC only).
    pub alpha: f64,
    /// Maximum conditioning-set size for PC.
    pub max_cond_size: usize,
    /// Maximum parents per node (hill climbing only).
    pub max_parents: usize,
    /// Target number of auxiliary pairs (ignored by [`Sampler::Identity`]).
    pub aux_pairs: usize,
    /// Seed for shift selection.
    pub seed: u64,
    /// Worker-count policy for the per-level CI tests of PC. Results are
    /// identical for any worker count.
    pub parallelism: Parallelism,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::PcStable,
            sampler: Sampler::Auxiliary,
            alpha: 0.05,
            max_cond_size: 3,
            max_parents: 3,
            aux_pairs: 50_000,
            seed: 0xA5A5,
            parallelism: Parallelism::Auto,
        }
    }
}

/// What budgeted structure learning hands back: the CPDAG, how the stage
/// ended, and the oracle's sufficient-statistics cache counters — captured
/// here because the oracle itself is dropped when learning returns (before
/// this type existed the counters died unread).
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// The learned CPDAG.
    pub cpdag: Pdag,
    /// Whether the CI-test loop completed or ran out of budget.
    pub status: StageStatus,
    /// Sufficient-statistics cache counters of the run's oracle (zeros for
    /// hill climbing, which keeps no such cache).
    pub cache_stats: StatsCacheStats,
}

/// Learns the CPDAG of `table`'s Markov equivalence class.
pub fn learn_cpdag(table: &Table, config: &LearnConfig) -> Pdag {
    learn_cpdag_governed(table, config, &Budget::unlimited()).cpdag
}

/// Budgeted [`learn_cpdag`]: the budget governs the CI-test loop of PC.
pub fn learn_cpdag_governed(table: &Table, config: &LearnConfig, budget: &Budget) -> LearnOutcome {
    let encoded = EncodedData::from_table(table);
    learn_cpdag_encoded_governed(&encoded, config, budget)
}

/// Learns a CPDAG from pre-encoded data (entry point shared with the FDX
/// baseline, which reuses the auxiliary sampler).
pub fn learn_cpdag_encoded(encoded: &EncodedData, config: &LearnConfig) -> Pdag {
    learn_cpdag_encoded_governed(encoded, config, &Budget::unlimited()).cpdag
}

/// Budgeted [`learn_cpdag_encoded`]. Hill climbing converges under its own
/// iteration bound and reports [`StageStatus::Complete`]; PC charges one work
/// unit per CI test and degrades to a conservative supergraph skeleton.
pub fn learn_cpdag_encoded_governed(
    encoded: &EncodedData,
    config: &LearnConfig,
    budget: &Budget,
) -> LearnOutcome {
    let mut learn_span = obs::span("structure_learning");
    learn_span.arg("rows", encoded.num_rows() as u64);
    learn_span.arg("attrs", encoded.num_attrs() as u64);
    let (view, scale) = match config.sampler {
        Sampler::Identity => (encoded.clone(), 1.0),
        Sampler::Auxiliary => {
            if encoded.num_rows() < 2 {
                (encoded.clone(), 1.0)
            } else {
                let mut aux_span = obs::span("auxiliary_sample");
                let mut rng = StdRng::seed_from_u64(config.seed);
                let aux = auxiliary_sample(encoded, config.aux_pairs, &mut rng);
                aux_span.arg("pairs", aux.num_rows() as u64);
                // Circular-shift pairs overlap in source rows; correct the
                // test's effective sample size accordingly.
                let scale = (encoded.num_rows() as f64 / aux.num_rows() as f64).min(1.0);
                (aux, scale)
            }
        }
    };
    match config.algorithm {
        Algorithm::PcStable => {
            let oracle =
                DataOracle::new(&view).with_alpha(config.alpha).with_statistic_scale(scale);
            let (cpdag, status) = pc_algorithm_governed(
                &oracle,
                PcConfig { max_cond_size: config.max_cond_size, parallelism: config.parallelism },
                budget,
            );
            LearnOutcome { cpdag, status, cache_stats: oracle.cache_stats() }
        }
        Algorithm::HillClimbBic => LearnOutcome {
            cpdag: crate::hillclimb::hill_climb_cpdag(
                &view,
                &crate::hillclimb::HillClimbConfig {
                    max_parents: config.max_parents,
                    ..Default::default()
                },
            ),
            status: StageStatus::Complete,
            cache_stats: StatsCacheStats::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::TableBuilder;
    use guardrail_table::Value;
    use rand::Rng;

    /// Samples a table from the chain SEM zip → city → state with flip noise.
    fn chain_table(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TableBuilder::new(vec!["zip".into(), "city".into(), "state".into()]);
        // 6 zips in 3 cities in 2 states.
        let city_of = [0, 0, 1, 1, 2, 2];
        let state_of = [0, 0, 1];
        for _ in 0..n {
            let zip = rng.gen_range(0..6usize);
            let mut city = city_of[zip];
            if rng.gen_ratio(1, 50) {
                city = rng.gen_range(0..3);
            }
            let mut state = state_of[city];
            if rng.gen_ratio(1, 50) {
                state = rng.gen_range(0..2);
            }
            b.push_row(vec![
                Value::Int(94700 + zip as i64),
                Value::from(format!("city{city}")),
                Value::from(format!("state{state}")),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn learns_chain_skeleton_from_data() {
        let table = chain_table(4000, 1);
        for sampler in [Sampler::Auxiliary, Sampler::Identity] {
            let cpdag = learn_cpdag(&table, &LearnConfig { sampler, ..LearnConfig::default() });
            // Chain skeleton: zip—city, city—state, and no zip—state edge.
            assert!(cpdag.adjacent(0, 1), "{sampler:?}: zip—city missing");
            assert!(cpdag.adjacent(1, 2), "{sampler:?}: city—state missing");
            assert!(!cpdag.adjacent(0, 2), "{sampler:?}: spurious zip—state edge");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let table = chain_table(1000, 2);
        let c1 = learn_cpdag(&table, &LearnConfig::default());
        let c2 = learn_cpdag(&table, &LearnConfig::default());
        assert_eq!(c1, c2);
    }

    #[test]
    fn tiny_table_does_not_panic() {
        let table = Table::from_csv_str("a,b\n1,2\n").unwrap();
        let cpdag = learn_cpdag(&table, &LearnConfig::default());
        assert_eq!(cpdag.num_nodes(), 2);
    }

    #[test]
    fn hill_climb_algorithm_learns_chain_too() {
        let table = chain_table(3000, 4);
        let cpdag = learn_cpdag(
            &table,
            &LearnConfig { algorithm: Algorithm::HillClimbBic, ..LearnConfig::default() },
        );
        assert!(cpdag.adjacent(0, 1), "zip—city missing");
        assert!(cpdag.adjacent(1, 2), "city—state missing");
        assert!(!cpdag.adjacent(0, 2), "spurious zip—state edge");
    }
}
