//! The PC-stable algorithm: CPDAG learning from an independence oracle.
//!
//! Three phases, per Spirtes–Glymour with the order-independent "stable"
//! skeleton variant of Colombo & Maathuis:
//!
//! 1. **Skeleton**: start complete; for growing conditioning-set size `ℓ`,
//!    remove the edge `x — y` if some `S ⊆ adj(x)∖{y}` (or `adj(y)∖{x}`)
//!    with `|S| = ℓ` renders them independent, recording `S` as the
//!    separation set. Adjacencies are snapshotted per level so the result
//!    does not depend on iteration order.
//! 2. **V-structures**: for every nonadjacent pair `(x, y)` with common
//!    neighbor `k ∉ sepset(x, y)`, orient `x → k ← y`.
//! 3. **Meek closure**: propagate compelled orientations (R1–R3).

use crate::oracle::IndependenceOracle;
use guardrail_governor::{parallel_map, Budget, Exhausted, Parallelism, StageStatus};
use guardrail_graph::{NodeSet, Pdag};
use guardrail_obs as obs;
use std::collections::HashMap;

/// Stage name reported when the CI-test loop runs out of budget.
pub const PC_STAGE: &str = "pc_skeleton";

/// PC algorithm configuration.
#[derive(Debug, Clone, Copy)]
pub struct PcConfig {
    /// Largest conditioning-set size to try. Attribute graphs in this domain
    /// are shallow; 3 matches common PC practice and bounds the worst-case
    /// test count.
    pub max_cond_size: usize,
    /// Worker count for the per-level CI tests. Within a level every edge's
    /// subset search reads only the level-start adjacency snapshot
    /// (PC-stable), so edges are embarrassingly parallel and the merged
    /// result is identical for any worker count. Each worker's tests run on
    /// the fused sufficient-statistics kernel
    /// (`guardrail_stats::suffstats`), whose per-thread scratch buffers are
    /// reused across the thousands of tests a level fans out — steady-state
    /// testing allocates nothing.
    pub parallelism: Parallelism,
}

impl Default for PcConfig {
    fn default() -> Self {
        Self { max_cond_size: 3, parallelism: Parallelism::Auto }
    }
}

/// Runs PC-stable against `oracle`, returning the learned CPDAG.
pub fn pc_algorithm<O: IndependenceOracle>(oracle: &O, config: PcConfig) -> Pdag {
    pc_algorithm_governed(oracle, config, &Budget::unlimited()).0
}

/// Budgeted PC-stable: one work unit per CI test.
///
/// When the budget runs out mid-skeleton, refinement stops where it is and
/// the remaining phases (v-structures, Meek closure) still run on the
/// current adjacency — those are polynomial and cheap. The result is a
/// valid, conservative CPDAG over a *supergraph* skeleton: un-tested edges
/// survive, so degradation can only keep constraints it has no evidence to
/// remove, never invent independence.
pub fn pc_algorithm_governed<O: IndependenceOracle>(
    oracle: &O,
    config: PcConfig,
    budget: &Budget,
) -> (Pdag, StageStatus) {
    let n = oracle.num_vars();
    let mut adj: Vec<NodeSet> = (0..n)
        .map(|i| {
            let mut s = NodeSet::full(n);
            s.remove(i);
            s
        })
        .collect();
    let mut sepsets: HashMap<(usize, usize), NodeSet> = HashMap::new();

    let mut pc_span = obs::span(PC_STAGE);
    pc_span.arg("vars", n as u64);

    // Phase 1: skeleton.
    let status = match refine_skeleton(oracle, config, budget, &mut adj, &mut sepsets) {
        Ok(()) => StageStatus::Complete,
        Err(e) => StageStatus::degraded(PC_STAGE, e),
    };

    // Phase 2: v-structures.
    let orient_span = obs::span("pc_orient");
    let mut pdag = Pdag::new(n);
    for (x, neighbors) in adj.iter().enumerate() {
        for y in neighbors.iter() {
            if x < y {
                pdag.add_undirected(x, y);
            }
        }
    }
    for x in 0..n {
        for y in (x + 1)..n {
            if adj[x].contains(y) {
                continue;
            }
            let common = adj[x].intersection(adj[y]);
            if common.is_empty() {
                continue;
            }
            let sepset = sepsets.get(&key(x, y)).copied().unwrap_or(NodeSet::EMPTY);
            for k in common.iter() {
                if !sepset.contains(k) {
                    // Do not overwrite an opposing compelled orientation:
                    // conflicting v-structures can arise from finite-sample
                    // errors; first orientation wins (deterministic order).
                    if pdag.has_undirected(x, k) || pdag.has_directed(x, k) {
                        pdag.orient(x, k);
                    }
                    if pdag.has_undirected(y, k) || pdag.has_directed(y, k) {
                        pdag.orient(y, k);
                    }
                }
            }
        }
    }

    // Phase 3: Meek closure.
    pdag.meek_closure();
    drop(orient_span);
    pc_span.arg("edges_kept", (pdag.num_directed_edges() + pdag.num_undirected_edges()) as u64);
    (pdag, status)
}

/// Outcome of one edge's subset search at one level.
#[derive(Debug, Default)]
struct PairOutcome {
    /// Some pool offered a conditioning set of the level's size.
    any_candidate: bool,
    /// Separating set found — the edge is to be removed.
    remove_with: Option<NodeSet>,
    /// The budget tripped during this pair's tests.
    exhausted: Option<Exhausted>,
    /// CI tests this pair issued (work-unit accounting for the level span).
    tests: u64,
}

/// Level-wise PC-stable skeleton refinement, charging `budget` one unit per
/// CI test. Leaves `adj`/`sepsets` in a consistent partial state on
/// exhaustion.
///
/// Within a level, the still-adjacent pairs are tested on worker threads:
/// PC-stable's per-level adjacency snapshot makes every pair's subset search
/// independent of the others' removals, so results merge deterministically
/// in pair order and are identical for any worker count. Exhaustion
/// mid-level keeps the removals that completed tests justified (each backed
/// by a real independence verdict) and leaves every untested edge in place —
/// the conservative supergraph guarantee is preserved.
fn refine_skeleton<O: IndependenceOracle>(
    oracle: &O,
    config: PcConfig,
    budget: &Budget,
    adj: &mut [NodeSet],
    sepsets: &mut HashMap<(usize, usize), NodeSet>,
) -> Result<(), Exhausted> {
    for level in 0..=config.max_cond_size {
        // Snapshot adjacencies for order independence (PC-stable); each
        // unordered pair is handled once per level.
        let snapshot = adj.to_vec();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (x, neighbors) in snapshot.iter().enumerate() {
            pairs.extend(neighbors.iter().filter(|&y| y > x).map(|y| (x, y)));
        }

        // One span per level, with the level's CI-test volume and the
        // stats-cache hit delta attached (snapshot-before minus
        // snapshot-after attributes shared-cache hits to the level that
        // earned them).
        let mut level_span = obs::span("pc_level");
        let cache_before = if level_span.is_armed() {
            level_span.arg("level", level as u64);
            level_span.arg("edges_tested", pairs.len() as u64);
            Some(oracle.cache_stats())
        } else {
            None
        };

        let outcomes = parallel_map(config.parallelism, &pairs, &|&(x, y)| {
            test_pair(oracle, &snapshot, x, y, level, budget)
        });

        // Deterministic merge in pair order.
        let mut any_candidate = false;
        let mut removed = 0u64;
        let mut exhausted: Option<Exhausted> = None;
        for (&(x, y), outcome) in pairs.iter().zip(&outcomes) {
            any_candidate |= outcome.any_candidate;
            if let Some(s) = outcome.remove_with {
                adj[x].remove(y);
                adj[y].remove(x);
                sepsets.insert(key(x, y), s);
                removed += 1;
            }
            if exhausted.is_none() {
                exhausted.clone_from(&outcome.exhausted);
            }
        }
        if let Some(before) = cache_before {
            let after = oracle.cache_stats();
            level_span.arg("ci_tests", outcomes.iter().map(|o| o.tests).sum());
            level_span.arg("edges_removed", removed);
            level_span.arg("cache_hits", after.result_hits - before.result_hits);
            level_span.arg("cache_misses", after.result_misses - before.result_misses);
        }
        drop(level_span);
        if let Some(e) = exhausted {
            return Err(e);
        }
        if !any_candidate && level > 0 {
            break; // no pair has enough neighbors for larger sets
        }
    }
    Ok(())
}

/// Searches the conditioning-set pools of one edge at one level. Pure with
/// respect to the snapshot: no shared mutable state beyond the budget.
fn test_pair<O: IndependenceOracle>(
    oracle: &O,
    snapshot: &[NodeSet],
    x: usize,
    y: usize,
    level: usize,
    budget: &Budget,
) -> PairOutcome {
    let mut out = PairOutcome::default();
    for (a, b) in [(x, y), (y, x)] {
        let mut pool = snapshot[a];
        pool.remove(b);
        if pool.len() < level {
            continue;
        }
        out.any_candidate = true;
        for s in pool.subsets_of_size(level) {
            if let Err(e) = budget.charge(1) {
                out.exhausted = Some(e);
                return out;
            }
            out.tests += 1;
            if oracle.independent(a, b, s) {
                out.remove_with = Some(s);
                return out;
            }
        }
    }
    out
}

fn key(x: usize, y: usize) -> (usize, usize) {
    (x.min(y), x.max(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DagOracle;
    use guardrail_graph::Dag;

    fn learn_from_dag(dag: &Dag) -> Pdag {
        let oracle = DagOracle::new(dag.clone());
        // Oracle tests are exact; allow deep conditioning.
        pc_algorithm(&oracle, PcConfig { max_cond_size: 6, ..PcConfig::default() })
    }

    #[test]
    fn recovers_collider_exactly() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        assert!(cpdag.has_directed(0, 2));
        assert!(cpdag.has_directed(1, 2));
    }

    #[test]
    fn recovers_chain_up_to_mec() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        assert_eq!(cpdag.num_undirected_edges(), 3);
    }

    #[test]
    fn recovers_cancer_network() {
        // Pollution → Cancer ← Smoker; Cancer → Xray; Cancer → Dyspnoea.
        let dag = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        // Collider pins the top, Meek R1 propagates to the symptoms.
        assert!(cpdag.has_directed(0, 2));
        assert!(cpdag.has_directed(1, 2));
        assert!(cpdag.has_directed(2, 3));
        assert!(cpdag.has_directed(2, 4));
    }

    #[test]
    fn recovers_diamond() {
        // 0 → 1 → 3, 0 → 2 → 3.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
    }

    #[test]
    fn empty_graph_stays_empty() {
        let dag = Dag::new(4);
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag.num_directed_edges() + cpdag.num_undirected_edges(), 0);
    }

    #[test]
    fn dense_dag_with_limited_conditioning() {
        // With max_cond_size below what's needed, PC may keep extra edges but
        // must never drop true ones.
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 4)]).unwrap();
        let oracle = DagOracle::new(dag.clone());
        let cpdag = pc_algorithm(&oracle, PcConfig { max_cond_size: 1, ..PcConfig::default() });
        for (u, v) in dag.edges() {
            assert!(cpdag.adjacent(u, v), "true edge ({u},{v}) must survive");
        }
    }
}
