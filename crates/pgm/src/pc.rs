//! The PC-stable algorithm: CPDAG learning from an independence oracle.
//!
//! Three phases, per Spirtes–Glymour with the order-independent "stable"
//! skeleton variant of Colombo & Maathuis:
//!
//! 1. **Skeleton**: start complete; for growing conditioning-set size `ℓ`,
//!    remove the edge `x — y` if some `S ⊆ adj(x)∖{y}` (or `adj(y)∖{x}`)
//!    with `|S| = ℓ` renders them independent, recording `S` as the
//!    separation set. Adjacencies are snapshotted per level so the result
//!    does not depend on iteration order.
//! 2. **V-structures**: for every nonadjacent pair `(x, y)` with common
//!    neighbor `k ∉ sepset(x, y)`, orient `x → k ← y`.
//! 3. **Meek closure**: propagate compelled orientations (R1–R3).

use crate::oracle::IndependenceOracle;
use guardrail_governor::{Budget, Exhausted, StageStatus};
use guardrail_graph::{NodeSet, Pdag};
use std::collections::HashMap;

/// Stage name reported when the CI-test loop runs out of budget.
pub const PC_STAGE: &str = "pc_skeleton";

/// PC algorithm configuration.
#[derive(Debug, Clone, Copy)]
pub struct PcConfig {
    /// Largest conditioning-set size to try. Attribute graphs in this domain
    /// are shallow; 3 matches common PC practice and bounds the worst-case
    /// test count.
    pub max_cond_size: usize,
}

impl Default for PcConfig {
    fn default() -> Self {
        Self { max_cond_size: 3 }
    }
}

/// Runs PC-stable against `oracle`, returning the learned CPDAG.
pub fn pc_algorithm<O: IndependenceOracle>(oracle: &O, config: PcConfig) -> Pdag {
    pc_algorithm_governed(oracle, config, &Budget::unlimited()).0
}

/// Budgeted PC-stable: one work unit per CI test.
///
/// When the budget runs out mid-skeleton, refinement stops where it is and
/// the remaining phases (v-structures, Meek closure) still run on the
/// current adjacency — those are polynomial and cheap. The result is a
/// valid, conservative CPDAG over a *supergraph* skeleton: un-tested edges
/// survive, so degradation can only keep constraints it has no evidence to
/// remove, never invent independence.
pub fn pc_algorithm_governed<O: IndependenceOracle>(
    oracle: &O,
    config: PcConfig,
    budget: &Budget,
) -> (Pdag, StageStatus) {
    let n = oracle.num_vars();
    let mut adj: Vec<NodeSet> = (0..n)
        .map(|i| {
            let mut s = NodeSet::full(n);
            s.remove(i);
            s
        })
        .collect();
    let mut sepsets: HashMap<(usize, usize), NodeSet> = HashMap::new();

    // Phase 1: skeleton.
    let status = match refine_skeleton(oracle, config, budget, &mut adj, &mut sepsets) {
        Ok(()) => StageStatus::Complete,
        Err(e) => StageStatus::degraded(PC_STAGE, e),
    };

    // Phase 2: v-structures.
    let mut pdag = Pdag::new(n);
    for (x, neighbors) in adj.iter().enumerate() {
        for y in neighbors.iter() {
            if x < y {
                pdag.add_undirected(x, y);
            }
        }
    }
    for x in 0..n {
        for y in (x + 1)..n {
            if adj[x].contains(y) {
                continue;
            }
            let common = adj[x].intersection(adj[y]);
            if common.is_empty() {
                continue;
            }
            let sepset = sepsets.get(&key(x, y)).copied().unwrap_or(NodeSet::EMPTY);
            for k in common.iter() {
                if !sepset.contains(k) {
                    // Do not overwrite an opposing compelled orientation:
                    // conflicting v-structures can arise from finite-sample
                    // errors; first orientation wins (deterministic order).
                    if pdag.has_undirected(x, k) || pdag.has_directed(x, k) {
                        pdag.orient(x, k);
                    }
                    if pdag.has_undirected(y, k) || pdag.has_directed(y, k) {
                        pdag.orient(y, k);
                    }
                }
            }
        }
    }

    // Phase 3: Meek closure.
    pdag.meek_closure();
    (pdag, status)
}

/// Level-wise PC-stable skeleton refinement, charging `budget` one unit per
/// CI test. Leaves `adj`/`sepsets` in a consistent partial state on
/// exhaustion.
fn refine_skeleton<O: IndependenceOracle>(
    oracle: &O,
    config: PcConfig,
    budget: &Budget,
    adj: &mut [NodeSet],
    sepsets: &mut HashMap<(usize, usize), NodeSet>,
) -> Result<(), Exhausted> {
    let n = oracle.num_vars();
    for level in 0..=config.max_cond_size {
        // Snapshot adjacencies for order independence (PC-stable).
        let snapshot = adj.to_vec();
        let mut any_candidate = false;
        for x in 0..n {
            for y in snapshot[x].iter() {
                if y < x || !adj[x].contains(y) {
                    continue; // handle each unordered pair once per level
                }
                let mut removed = false;
                for (a, b) in [(x, y), (y, x)] {
                    let mut pool = snapshot[a];
                    pool.remove(b);
                    if pool.len() < level {
                        continue;
                    }
                    any_candidate = true;
                    for s in pool.subsets_of_size(level) {
                        budget.charge(1)?;
                        if oracle.independent(a, b, s) {
                            adj[x].remove(y);
                            adj[y].remove(x);
                            sepsets.insert(key(x, y), s);
                            removed = true;
                            break;
                        }
                    }
                    if removed {
                        break;
                    }
                }
            }
        }
        if !any_candidate && level > 0 {
            break; // no pair has enough neighbors for larger sets
        }
    }
    Ok(())
}

fn key(x: usize, y: usize) -> (usize, usize) {
    (x.min(y), x.max(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DagOracle;
    use guardrail_graph::Dag;

    fn learn_from_dag(dag: &Dag) -> Pdag {
        let oracle = DagOracle::new(dag.clone());
        // Oracle tests are exact; allow deep conditioning.
        pc_algorithm(&oracle, PcConfig { max_cond_size: 6 })
    }

    #[test]
    fn recovers_collider_exactly() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        assert!(cpdag.has_directed(0, 2));
        assert!(cpdag.has_directed(1, 2));
    }

    #[test]
    fn recovers_chain_up_to_mec() {
        let dag = Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        assert_eq!(cpdag.num_undirected_edges(), 3);
    }

    #[test]
    fn recovers_cancer_network() {
        // Pollution → Cancer ← Smoker; Cancer → Xray; Cancer → Dyspnoea.
        let dag = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
        // Collider pins the top, Meek R1 propagates to the symptoms.
        assert!(cpdag.has_directed(0, 2));
        assert!(cpdag.has_directed(1, 2));
        assert!(cpdag.has_directed(2, 3));
        assert!(cpdag.has_directed(2, 4));
    }

    #[test]
    fn recovers_diamond() {
        // 0 → 1 → 3, 0 → 2 → 3.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag, dag.to_cpdag());
    }

    #[test]
    fn empty_graph_stays_empty() {
        let dag = Dag::new(4);
        let cpdag = learn_from_dag(&dag);
        assert_eq!(cpdag.num_directed_edges() + cpdag.num_undirected_edges(), 0);
    }

    #[test]
    fn dense_dag_with_limited_conditioning() {
        // With max_cond_size below what's needed, PC may keep extra edges but
        // must never drop true ones.
        let dag = Dag::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 4)]).unwrap();
        let oracle = DagOracle::new(dag.clone());
        let cpdag = pc_algorithm(&oracle, PcConfig { max_cond_size: 1 });
        for (u, v) in dag.edges() {
            assert!(cpdag.adjacent(u, v), "true edge ({u},{v}) must survive");
        }
    }
}
