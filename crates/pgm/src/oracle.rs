//! Conditional-independence oracles and their sufficient-statistics cache.

use crate::encode::EncodedData;
use guardrail_graph::{d_separated, Dag, NodeSet};
use guardrail_stats::independence::CiTestKind;
use guardrail_stats::suffstats::{ci_test_fused, StratumPack};
use guardrail_stats::CiTestResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Answers queries of the form "is `x ⫫ y | z`?".
///
/// The PC algorithm is written against this trait so tests can swap in a
/// ground-truth [`DagOracle`] (d-separation under faithfulness) for a
/// statistical [`DataOracle`]. Implementations must be [`Sync`]: the PC
/// skeleton phase issues the per-level CI tests from worker threads against
/// a shared oracle reference.
pub trait IndependenceOracle: Sync {
    /// Returns `true` when `x` and `y` are judged conditionally independent
    /// given `z`.
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool;

    /// Number of variables.
    fn num_vars(&self) -> usize;

    /// Snapshot of the oracle's sufficient-statistics cache counters, when
    /// it keeps one. The default (for cacheless oracles like [`DagOracle`])
    /// reports zeros; the PC driver subtracts per-level snapshots to
    /// attribute cache hits to levels, so a constant answer is correct.
    fn cache_stats(&self) -> StatsCacheStats {
        StatsCacheStats::default()
    }
}

/// Counters of the [`StatsCache`], readable while the oracle is in use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsCacheStats {
    /// CI-test results answered from the cache.
    pub result_hits: u64,
    /// CI-test results that had to be computed.
    pub result_misses: u64,
    /// Stratum-key packs reused across tests with the same conditioning set.
    pub strata_hits: u64,
    /// Stratum-key packs that were not in the cache (each miss is then
    /// filled by an incremental extension or a full re-pack).
    pub strata_misses: u64,
    /// Of those misses, packs derived incrementally from a cached
    /// level-(ℓ−1) prefix (`key' = key·card + code`) instead of re-packing
    /// every conditioning column.
    pub pack_extensions: u64,
}

/// Concurrent memoization of the sufficient statistics behind CI tests.
///
/// PC-stable revisits the same statistics many times: at each level the pair
/// `(x, y)` is probed from both adjacency sides (identical test, swapped
/// arguments), and the packed stratum keys of a conditioning set `Z` are
/// shared by *every* pair tested against `Z`. The cache memoizes both
/// layers:
///
/// * **Test results** keyed by `(min(x,y), max(x,y), Z)`. The G²/X²
///   statistic and its degrees of freedom are invariant under transposing
///   the contingency table, so the symmetric key is sound.
/// * **Stratum packs** ([`StratumPack`]: keys + mixed-radix domain) keyed
///   by `Z` (`None` records an unpackable — too high-cardinality —
///   conditioning set). A missing pack for a level-ℓ set `Z` is first
///   sought as an **incremental extension** of the cached pack of
///   `Z ∖ {max Z}` — `key' = key·card + code`, one O(n) pass over a single
///   column instead of re-packing all ℓ columns — before falling back to a
///   full pack. PC-stable grows conditioning sets one node per level, so in
///   steady state nearly every new pack is an extension (counted by
///   [`StatsCacheStats::pack_extensions`]).
///
/// Both maps sit behind [`RwLock`]s so concurrent per-edge tests share the
/// cache; racing threads may compute the same entry twice, but the value is
/// deterministic so the race is benign and lock hold times stay tiny.
#[derive(Debug, Default)]
pub struct StatsCache {
    results: RwLock<HashMap<(usize, usize, NodeSet), CiTestResult>>,
    strata: RwLock<HashMap<NodeSet, Option<Arc<StratumPack>>>>,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    strata_hits: AtomicU64,
    strata_misses: AtomicU64,
    pack_extensions: AtomicU64,
}

impl StatsCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> StatsCacheStats {
        StatsCacheStats {
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            strata_hits: self.strata_hits.load(Ordering::Relaxed),
            strata_misses: self.strata_misses.load(Ordering::Relaxed),
            pack_extensions: self.pack_extensions.load(Ordering::Relaxed),
        }
    }

    fn get_or_compute_result(
        &self,
        key: (usize, usize, NodeSet),
        compute: impl FnOnce() -> CiTestResult,
    ) -> CiTestResult {
        if let Some(hit) = self.results.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.result_misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        self.results.write().unwrap_or_else(|e| e.into_inner()).insert(key, value);
        value
    }

    /// Looks up the stratum pack of `z`, filling a miss by extending the
    /// cached pack of `prefix` (= `z ∖ {max z}`) when available, else by a
    /// full pack. An unpackable prefix proves `z` unpackable too (the key
    /// domain only grows), so that answer is also derived without packing.
    fn get_or_pack_strata(
        &self,
        z: NodeSet,
        prefix: NodeSet,
        extend: impl FnOnce(&StratumPack) -> Option<StratumPack>,
        pack: impl FnOnce() -> Option<StratumPack>,
    ) -> Option<Arc<StratumPack>> {
        if let Some(hit) = self.strata.read().unwrap_or_else(|e| e.into_inner()).get(&z) {
            self.strata_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.strata_misses.fetch_add(1, Ordering::Relaxed);
        let prefix_pack = if prefix.is_empty() {
            None
        } else {
            self.strata.read().unwrap_or_else(|e| e.into_inner()).get(&prefix).cloned()
        };
        let value = match prefix_pack {
            Some(Some(p)) => {
                self.pack_extensions.fetch_add(1, Ordering::Relaxed);
                extend(&p)
            }
            Some(None) => {
                self.pack_extensions.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => pack(),
        }
        .map(Arc::new);
        self.strata.write().unwrap_or_else(|e| e.into_inner()).entry(z).or_insert(value).clone()
    }
}

/// Statistical oracle over encoded data using a chi-squared family test.
#[derive(Debug)]
pub struct DataOracle<'a> {
    data: &'a EncodedData,
    /// Significance level; independence is declared when `p > alpha`.
    pub alpha: f64,
    /// Test statistic.
    pub kind: CiTestKind,
    /// Minimum expected observations per contingency cell for the test to be
    /// considered reliable; sparser queries conservatively return
    /// "independent" (the heuristic of Spirtes et al., default 5).
    pub min_obs_per_cell: f64,
    /// Multiplier applied to the test statistic before the p-value lookup.
    ///
    /// The auxiliary sampler pairs each source row with several others, so
    /// its indicator vectors are not independent draws: the chi-squared
    /// statistic is over-dispersed by roughly `pairs / source_rows`. Setting
    /// this to `source_rows / pairs` restores the effective sample size
    /// (1.0 for i.i.d. data).
    pub statistic_scale: f64,
    /// Memoized sufficient statistics; `None` disables caching (ablation and
    /// consistency testing).
    cache: Option<StatsCache>,
}

impl<'a> DataOracle<'a> {
    /// Creates an oracle with the conventional `alpha = 0.05`, G² statistic,
    /// 5-observations-per-cell reliability floor, and the statistics cache
    /// enabled.
    pub fn new(data: &'a EncodedData) -> Self {
        Self {
            data,
            alpha: 0.05,
            kind: CiTestKind::G2,
            min_obs_per_cell: 5.0,
            statistic_scale: 1.0,
            cache: Some(StatsCache::new()),
        }
    }

    /// Sets the significance level.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
        self.alpha = alpha;
        self
    }

    /// Sets the effective-sample-size correction (see
    /// [`DataOracle::statistic_scale`]).
    pub fn with_statistic_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.statistic_scale = scale;
        self
    }

    /// Enables or disables the sufficient-statistics cache (enabled by
    /// default). Disabling recomputes every query from the raw columns —
    /// results must be identical; see the oracle-cache consistency tests.
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache = if enabled { Some(StatsCache::new()) } else { None };
        self
    }

    /// Hit/miss counters of the statistics cache (zeros when disabled).
    pub fn cache_stats(&self) -> StatsCacheStats {
        self.cache.as_ref().map(StatsCache::stats).unwrap_or_default()
    }

    /// The raw test behind [`IndependenceOracle::independent`]: `None` when
    /// the query is untestable (too sparse for the reliability floor, or a
    /// conditioning space too large to index), `Some(result)` otherwise. The
    /// returned statistic is unscaled; [`DataOracle::statistic_scale`] is
    /// applied at decision time.
    pub fn ci_result(&self, x: usize, y: usize, z: NodeSet) -> Option<CiTestResult> {
        let d = self.data;
        let n = d.num_rows() as f64;

        // Reliability heuristic: skip tests whose contingency table would be
        // too sparse to trust (the caller reports independence — conservative
        // for edge removal: an unreliable edge is dropped rather than kept).
        let mut cells = (d.card(x) * d.card(y)) as f64;
        for zi in z.iter() {
            cells *= d.card(zi) as f64;
            if cells > n {
                break;
            }
        }
        if n < self.min_obs_per_cell * cells {
            return None;
        }

        // The statistic is symmetric in (x, y) — transposing a contingency
        // table changes neither G²/X² nor the df — so tests from both
        // adjacency sides share one cache entry under the ordered key.
        //
        // Tests run on the fused tabulation kernel: the reliability floor
        // above guarantees `nx·ny·Π|Z| ≤ n/min_obs`, so every query that
        // reaches the kernel takes its dense, allocation-free path.
        let (a, b) = (x.min(y), x.max(y));
        if z.is_empty() {
            let run =
                || ci_test_fused(self.kind, d.column(a), d.column(b), None, d.card(a), d.card(b));
            return Some(match &self.cache {
                Some(cache) => cache.get_or_compute_result((a, b, z), run),
                None => run(),
            });
        }

        let full_pack = || {
            let z_cols: Vec<&[u32]> = z.iter().map(|i| d.column(i)).collect();
            let z_cards: Vec<usize> = z.iter().map(|i| d.card(i)).collect();
            StratumPack::pack(&z_cols, &z_cards)
        };
        let pack = match &self.cache {
            Some(cache) => {
                let max = z.last_node().expect("z is non-empty");
                let mut prefix = z;
                prefix.remove(max);
                let extend = |p: &StratumPack| p.extend(d.column(max), d.card(max));
                cache.get_or_pack_strata(z, prefix, extend, full_pack)?
            }
            // Conditioning space too large to even index: untestable.
            None => Arc::new(full_pack()?),
        };
        let run = || {
            ci_test_fused(
                self.kind,
                d.column(a),
                d.column(b),
                Some(pack.strata()),
                d.card(a),
                d.card(b),
            )
        };
        Some(match &self.cache {
            Some(cache) => cache.get_or_compute_result((a, b, z), run),
            None => run(),
        })
    }

    /// The corrected p-value of the query, `None` when untestable. Used by
    /// the cache-consistency tests; `independent` is `p > alpha` (or `true`
    /// on `None`).
    pub fn p_value(&self, x: usize, y: usize, z: NodeSet) -> Option<f64> {
        let r = self.ci_result(x, y, z)?;
        if r.df == 0.0 {
            return Some(1.0);
        }
        Some(guardrail_stats::ChiSquared::new(r.df).sf(r.statistic * self.statistic_scale))
    }
}

impl IndependenceOracle for DataOracle<'_> {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        match self.ci_result(x, y, z) {
            Some(r) => self.decide(r),
            None => true,
        }
    }

    fn num_vars(&self) -> usize {
        self.data.num_attrs()
    }

    fn cache_stats(&self) -> StatsCacheStats {
        DataOracle::cache_stats(self)
    }
}

impl DataOracle<'_> {
    /// Applies the effective-sample-size correction and the significance
    /// threshold to a raw test result.
    fn decide(&self, r: CiTestResult) -> bool {
        if r.df == 0.0 {
            return true;
        }
        let p = guardrail_stats::ChiSquared::new(r.df).sf(r.statistic * self.statistic_scale);
        p > self.alpha
    }
}

/// Ground-truth oracle: conditional independence = d-separation in a known
/// DAG (exact under faithfulness). Used to validate PC and in synthetic
/// experiments where the generating SEM is known.
#[derive(Debug, Clone)]
pub struct DagOracle {
    dag: Dag,
}

impl DagOracle {
    /// Wraps a ground-truth DAG.
    pub fn new(dag: Dag) -> Self {
        Self { dag }
    }
}

impl IndependenceOracle for DagOracle {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        d_separated(&self.dag, x, y, z)
    }

    fn num_vars(&self) -> usize {
        self.dag.num_nodes()
    }
}

/// Wraps an oracle with deterministic busy-work per query — a reproducible
/// stand-in for expensive CI tests (large conditioning sets, disk-backed
/// data) used to exercise wall-clock deadlines in robustness tests without
/// depending on sleeps or machine speed.
#[derive(Debug, Clone)]
pub struct SlowOracle<O> {
    inner: O,
    spin: u64,
}

impl<O> SlowOracle<O> {
    /// Wraps `inner`, spinning `spin` iterations of opaque arithmetic before
    /// delegating each query.
    pub fn new(inner: O, spin: u64) -> Self {
        Self { inner, spin }
    }
}

impl<O: IndependenceOracle> IndependenceOracle for SlowOracle<O> {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        let mut acc = (x as u64) ^ (y as u64).rotate_left(17);
        for i in 0..self.spin {
            acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
        }
        std::hint::black_box(acc);
        self.inner.independent(x, y, z)
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn cache_stats(&self) -> StatsCacheStats {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn data_oracle_detects_chain_structure() {
        // X → Z → Y with small flip noise.
        let mut rng = xorshift(11);
        let n = 6000;
        let mut x = Vec::new();
        let mut zc = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let xv = (rng() % 2) as u32;
            let zv = if rng() % 20 == 0 { 1 - xv } else { xv };
            let yv = if rng() % 20 == 0 { 1 - zv } else { zv };
            x.push(xv);
            zc.push(zv);
            y.push(yv);
        }
        let data = EncodedData::from_parts(
            vec![x, zc, y],
            vec![2, 2, 2],
            vec!["x".into(), "z".into(), "y".into()],
        );
        let oracle = DataOracle::new(&data);
        assert!(!oracle.independent(0, 2, NodeSet::EMPTY));
        assert!(oracle.independent(0, 2, NodeSet::singleton(1)));
        assert_eq!(oracle.num_vars(), 3);
    }

    #[test]
    fn sparse_test_is_conservative() {
        // 8 rows cannot support a 2x2x(2^3) test: oracle must answer
        // "independent" rather than overfit.
        let data = EncodedData::from_parts(
            vec![
                vec![0, 1, 0, 1, 0, 1, 0, 1],
                vec![0, 1, 0, 1, 0, 1, 0, 1],
                vec![0, 0, 1, 1, 0, 0, 1, 1],
                vec![0, 0, 0, 0, 1, 1, 1, 1],
                vec![0, 1, 1, 0, 1, 0, 0, 1],
            ],
            vec![2; 5],
            (0..5).map(|i| format!("a{i}")).collect(),
        );
        let oracle = DataOracle::new(&data);
        let z = NodeSet::from_iter([2, 3, 4]);
        assert!(oracle.independent(0, 1, z));
        // Marginally the dependence is obvious and the table is dense enough…
        // but with only 8 rows even the marginal 2x2 test is below the 5/cell
        // floor (needs 20), so the conservative answer still applies.
        assert!(oracle.independent(0, 1, NodeSet::EMPTY));
    }

    #[test]
    fn dag_oracle_is_dsep() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let o = DagOracle::new(dag);
        assert!(o.independent(0, 1, NodeSet::EMPTY));
        assert!(!o.independent(0, 1, NodeSet::singleton(2)));
    }

    /// A random 6-attribute table with enough rows that most queries pass the
    /// reliability floor.
    fn random_data(seed: u64, rows: usize) -> EncodedData {
        let mut rng = xorshift(seed);
        let cards = [2usize, 3, 2, 4, 2, 3];
        let cols: Vec<Vec<u32>> =
            cards.iter().map(|&c| (0..rows).map(|_| (rng() % c as u64) as u32).collect()).collect();
        EncodedData::from_parts(
            cols,
            cards.to_vec(),
            (0..cards.len()).map(|i| format!("a{i}")).collect(),
        )
    }

    /// Property: for every (x, y, Z) query — in both argument orders — the
    /// cached oracle answers exactly what the uncached oracle computes from
    /// the raw columns, including untestability.
    #[test]
    fn cached_p_values_match_uncached() {
        let data = random_data(7, 4000);
        let cached = DataOracle::new(&data).with_statistic_scale(0.5);
        let uncached = DataOracle::new(&data).with_statistic_scale(0.5).with_cache(false);
        let n = data.num_attrs();
        for x in 0..n {
            for y in 0..n {
                if x == y {
                    continue;
                }
                let others: Vec<usize> = (0..n).filter(|&i| i != x && i != y).collect();
                let mut zs = vec![NodeSet::EMPTY];
                zs.extend(others.iter().map(|&i| NodeSet::singleton(i)));
                for (i, &a) in others.iter().enumerate() {
                    for &b in &others[i + 1..] {
                        zs.push(NodeSet::from_iter([a, b]));
                    }
                }
                for z in zs {
                    // Query twice so the second read is a guaranteed cache hit.
                    let first = cached.p_value(x, y, z);
                    let hit = cached.p_value(x, y, z);
                    let fresh = uncached.p_value(x, y, z);
                    assert_eq!(first, fresh, "x={x} y={y} z={z:?}");
                    assert_eq!(hit, fresh, "x={x} y={y} z={z:?} (hit path)");
                    assert_eq!(
                        cached.independent(x, y, z),
                        uncached.independent(x, y, z),
                        "x={x} y={y} z={z:?} (decision)"
                    );
                }
            }
        }
        let stats = cached.cache_stats();
        assert!(stats.result_hits > 0, "repeat + swapped queries must hit: {stats:?}");
        assert!(stats.strata_hits > 0, "shared conditioning sets must hit: {stats:?}");
        assert_eq!(uncached.cache_stats(), StatsCacheStats::default());
    }

    /// Level-ℓ conditioning sets extend the cached level-(ℓ−1) pack
    /// (`key' = key·card + code`) instead of re-packing every column — and
    /// the extended pack answers exactly like a fresh one.
    #[test]
    fn pack_extension_reuses_cached_prefix() {
        let data = random_data(13, 4000);
        let cached = DataOracle::new(&data);
        let uncached = DataOracle::new(&data).with_cache(false);
        let z1 = NodeSet::singleton(2);
        let z2 = NodeSet::from_iter([2, 3]);
        let z3 = NodeSet::from_iter([2, 3, 4]);
        // Level 1: singleton pack {2} is a full pack (no cached prefix).
        assert_eq!(cached.p_value(0, 1, z1), uncached.p_value(0, 1, z1));
        assert_eq!(cached.cache_stats().pack_extensions, 0);
        // Level 2: {2,3} = cached {2} extended by column 3.
        assert_eq!(cached.p_value(0, 1, z2), uncached.p_value(0, 1, z2));
        assert_eq!(cached.cache_stats().pack_extensions, 1);
        // Level 3: {2,3,4} = cached {2,3} extended by column 4.
        assert_eq!(cached.p_value(0, 1, z3), uncached.p_value(0, 1, z3));
        let stats = cached.cache_stats();
        assert_eq!(stats.pack_extensions, 2, "{stats:?}");
        assert_eq!(stats.strata_misses, 3, "{stats:?}");
    }

    /// The cache key is symmetric: (x, y) and (y, x) share one entry.
    #[test]
    fn swapped_arguments_share_cache_entry() {
        let data = random_data(3, 2000);
        let oracle = DataOracle::new(&data);
        let z = NodeSet::singleton(2);
        let p_xy = oracle.p_value(0, 1, z);
        let misses_after_first = oracle.cache_stats().result_misses;
        let p_yx = oracle.p_value(1, 0, z);
        assert_eq!(p_xy, p_yx);
        assert_eq!(oracle.cache_stats().result_misses, misses_after_first);
        assert!(oracle.cache_stats().result_hits >= 1);
    }

    /// Concurrent queries against one shared oracle agree with a sequential
    /// uncached baseline (the RwLock race on double-compute is benign).
    #[test]
    fn concurrent_queries_are_consistent() {
        let data = random_data(9, 3000);
        let cached = DataOracle::new(&data);
        let uncached = DataOracle::new(&data).with_cache(false);
        let queries: Vec<(usize, usize, NodeSet)> = (0..data.num_attrs())
            .flat_map(|x| {
                (0..data.num_attrs()).filter(move |&y| y != x).flat_map(move |y| {
                    [NodeSet::EMPTY, NodeSet::singleton((y + 1) % 6)]
                        .into_iter()
                        .filter(move |z| !z.contains(x) && !z.contains(y))
                        .map(move |z| (x, y, z))
                })
            })
            .collect();
        let parallel = guardrail_governor::parallel_map(
            guardrail_governor::Parallelism::threads(4),
            &queries,
            &|&(x, y, z)| cached.p_value(x, y, z),
        );
        for (&(x, y, z), got) in queries.iter().zip(&parallel) {
            assert_eq!(*got, uncached.p_value(x, y, z), "x={x} y={y} z={z:?}");
        }
    }
}
