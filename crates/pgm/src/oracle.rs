//! Conditional-independence oracles.

use crate::encode::EncodedData;
use guardrail_graph::{d_separated, Dag, NodeSet};
use guardrail_stats::independence::{ci_test, pack_strata, CiTestKind};

/// Answers queries of the form "is `x ⫫ y | z`?".
///
/// The PC algorithm is written against this trait so tests can swap in a
/// ground-truth [`DagOracle`] (d-separation under faithfulness) for a
/// statistical [`DataOracle`].
pub trait IndependenceOracle {
    /// Returns `true` when `x` and `y` are judged conditionally independent
    /// given `z`.
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool;

    /// Number of variables.
    fn num_vars(&self) -> usize;
}

/// Statistical oracle over encoded data using a chi-squared family test.
#[derive(Debug)]
pub struct DataOracle<'a> {
    data: &'a EncodedData,
    /// Significance level; independence is declared when `p > alpha`.
    pub alpha: f64,
    /// Test statistic.
    pub kind: CiTestKind,
    /// Minimum expected observations per contingency cell for the test to be
    /// considered reliable; sparser queries conservatively return
    /// "independent" (the heuristic of Spirtes et al., default 5).
    pub min_obs_per_cell: f64,
    /// Multiplier applied to the test statistic before the p-value lookup.
    ///
    /// The auxiliary sampler pairs each source row with several others, so
    /// its indicator vectors are not independent draws: the chi-squared
    /// statistic is over-dispersed by roughly `pairs / source_rows`. Setting
    /// this to `source_rows / pairs` restores the effective sample size
    /// (1.0 for i.i.d. data).
    pub statistic_scale: f64,
}

impl<'a> DataOracle<'a> {
    /// Creates an oracle with the conventional `alpha = 0.05`, G² statistic,
    /// and 5-observations-per-cell reliability floor.
    pub fn new(data: &'a EncodedData) -> Self {
        Self { data, alpha: 0.05, kind: CiTestKind::G2, min_obs_per_cell: 5.0, statistic_scale: 1.0 }
    }

    /// Sets the significance level.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0,1)");
        self.alpha = alpha;
        self
    }

    /// Sets the effective-sample-size correction (see
    /// [`DataOracle::statistic_scale`]).
    pub fn with_statistic_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.statistic_scale = scale;
        self
    }
}

impl IndependenceOracle for DataOracle<'_> {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        let d = self.data;
        let n = d.num_rows() as f64;
        let nx = d.card(x);
        let ny = d.card(y);

        // Reliability heuristic: skip tests whose contingency table would be
        // too sparse to trust; report independence (conservative for edge
        // removal — an unreliable edge is dropped rather than kept).
        let mut cells = (nx * ny) as f64;
        for zi in z.iter() {
            cells *= d.card(zi) as f64;
            if cells > n {
                break;
            }
        }
        if n < self.min_obs_per_cell * cells {
            return true;
        }

        if z.is_empty() {
            let r = ci_test(self.kind, d.column(x), d.column(y), None, nx, ny);
            return self.decide(r);
        }
        let z_cols: Vec<&[u32]> = z.iter().map(|i| d.column(i)).collect();
        let z_cards: Vec<usize> = z.iter().map(|i| d.card(i)).collect();
        match pack_strata(&z_cols, &z_cards) {
            Some(keys) => {
                let r = ci_test(self.kind, d.column(x), d.column(y), Some(&keys), nx, ny);
                self.decide(r)
            }
            // Conditioning space too large to even index: treat as untestable.
            None => true,
        }
    }

    fn num_vars(&self) -> usize {
        self.data.num_attrs()
    }
}

impl DataOracle<'_> {
    /// Applies the effective-sample-size correction and the significance
    /// threshold to a raw test result.
    fn decide(&self, r: guardrail_stats::CiTestResult) -> bool {
        if r.df == 0.0 {
            return true;
        }
        let p = guardrail_stats::ChiSquared::new(r.df).sf(r.statistic * self.statistic_scale);
        p > self.alpha
    }
}

/// Ground-truth oracle: conditional independence = d-separation in a known
/// DAG (exact under faithfulness). Used to validate PC and in synthetic
/// experiments where the generating SEM is known.
#[derive(Debug, Clone)]
pub struct DagOracle {
    dag: Dag,
}

impl DagOracle {
    /// Wraps a ground-truth DAG.
    pub fn new(dag: Dag) -> Self {
        Self { dag }
    }
}

impl IndependenceOracle for DagOracle {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        d_separated(&self.dag, x, y, z)
    }

    fn num_vars(&self) -> usize {
        self.dag.num_nodes()
    }
}

/// Wraps an oracle with deterministic busy-work per query — a reproducible
/// stand-in for expensive CI tests (large conditioning sets, disk-backed
/// data) used to exercise wall-clock deadlines in robustness tests without
/// depending on sleeps or machine speed.
#[derive(Debug, Clone)]
pub struct SlowOracle<O> {
    inner: O,
    spin: u64,
}

impl<O> SlowOracle<O> {
    /// Wraps `inner`, spinning `spin` iterations of opaque arithmetic before
    /// delegating each query.
    pub fn new(inner: O, spin: u64) -> Self {
        Self { inner, spin }
    }
}

impl<O: IndependenceOracle> IndependenceOracle for SlowOracle<O> {
    fn independent(&self, x: usize, y: usize, z: NodeSet) -> bool {
        let mut acc = (x as u64) ^ (y as u64).rotate_left(17);
        for i in 0..self.spin {
            acc = std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
        }
        std::hint::black_box(acc);
        self.inner.independent(x, y, z)
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn data_oracle_detects_chain_structure() {
        // X → Z → Y with small flip noise.
        let mut rng = xorshift(11);
        let n = 6000;
        let mut x = Vec::new();
        let mut zc = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let xv = (rng() % 2) as u32;
            let zv = if rng() % 20 == 0 { 1 - xv } else { xv };
            let yv = if rng() % 20 == 0 { 1 - zv } else { zv };
            x.push(xv);
            zc.push(zv);
            y.push(yv);
        }
        let data = EncodedData::from_parts(
            vec![x, zc, y],
            vec![2, 2, 2],
            vec!["x".into(), "z".into(), "y".into()],
        );
        let oracle = DataOracle::new(&data);
        assert!(!oracle.independent(0, 2, NodeSet::EMPTY));
        assert!(oracle.independent(0, 2, NodeSet::singleton(1)));
        assert_eq!(oracle.num_vars(), 3);
    }

    #[test]
    fn sparse_test_is_conservative() {
        // 8 rows cannot support a 2x2x(2^3) test: oracle must answer
        // "independent" rather than overfit.
        let data = EncodedData::from_parts(
            vec![
                vec![0, 1, 0, 1, 0, 1, 0, 1],
                vec![0, 1, 0, 1, 0, 1, 0, 1],
                vec![0, 0, 1, 1, 0, 0, 1, 1],
                vec![0, 0, 0, 0, 1, 1, 1, 1],
                vec![0, 1, 1, 0, 1, 0, 0, 1],
            ],
            vec![2; 5],
            (0..5).map(|i| format!("a{i}")).collect(),
        );
        let oracle = DataOracle::new(&data);
        let z = NodeSet::from_iter([2, 3, 4]);
        assert!(oracle.independent(0, 1, z));
        // Marginally the dependence is obvious and the table is dense enough…
        // but with only 8 rows even the marginal 2x2 test is below the 5/cell
        // floor (needs 20), so the conservative answer still applies.
        assert!(oracle.independent(0, 1, NodeSet::EMPTY));
    }

    #[test]
    fn dag_oracle_is_dsep() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let o = DagOracle::new(dag);
        assert!(o.independent(0, 1, NodeSet::EMPTY));
        assert!(!o.independent(0, 1, NodeSet::singleton(2)));
    }
}
