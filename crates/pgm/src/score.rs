//! BIC scoring of discrete Bayesian-network structures.
//!
//! The decomposable BIC score of a DAG `G` on data `D` is
//!
//! ```text
//! BIC(G) = Σ_v [ LL(v | Pa_G(v)) − (ln n / 2) · (card_v − 1) · Π_{p ∈ Pa} card_p ]
//! ```
//!
//! where the log-likelihood term is the maximized multinomial likelihood of
//! `v` given each observed parent configuration. Decomposability is what
//! makes local-search structure learning cheap: an edge change rescores only
//! the affected child.

use crate::encode::EncodedData;
use guardrail_graph::NodeSet;
use std::collections::HashMap;

/// Cached per-family BIC computations over one dataset.
pub struct BicScorer<'a> {
    data: &'a EncodedData,
    cache: HashMap<(usize, NodeSet), f64>,
}

impl<'a> BicScorer<'a> {
    /// Creates a scorer over `data`.
    pub fn new(data: &'a EncodedData) -> Self {
        Self { data, cache: HashMap::new() }
    }

    /// The underlying data.
    pub fn data(&self) -> &EncodedData {
        self.data
    }

    /// BIC contribution of the family `(child, parents)`, memoized.
    pub fn family_score(&mut self, child: usize, parents: NodeSet) -> f64 {
        if let Some(&s) = self.cache.get(&(child, parents)) {
            return s;
        }
        let s = self.compute(child, parents);
        self.cache.insert((child, parents), s);
        s
    }

    /// Total BIC of a full parent-set assignment.
    pub fn total_score(&mut self, parent_sets: &[NodeSet]) -> f64 {
        (0..parent_sets.len()).map(|v| self.family_score(v, parent_sets[v])).sum()
    }

    fn compute(&self, child: usize, parents: NodeSet) -> f64 {
        let n = self.data.num_rows();
        if n == 0 {
            return 0.0;
        }
        let child_card = self.data.card(child);
        let child_codes = self.data.column(child);

        // Count joint (config, child value) occurrences. Configurations are
        // mixed-radix packed; only observed configs are materialized.
        let parent_cols: Vec<&[u32]> = parents.iter().map(|p| self.data.column(p)).collect();
        let parent_cards: Vec<u128> = parents.iter().map(|p| self.data.card(p) as u128).collect();
        let mut counts: HashMap<u128, Vec<u32>> = HashMap::new();
        for row in 0..n {
            let mut key: u128 = 0;
            for (col, &card) in parent_cols.iter().zip(&parent_cards) {
                key = key * card + col[row] as u128;
            }
            let bucket = counts.entry(key).or_insert_with(|| vec![0; child_card]);
            bucket[child_codes[row] as usize] += 1;
        }

        let mut ll = 0.0;
        for bucket in counts.values() {
            let total: u32 = bucket.iter().sum();
            if total == 0 {
                continue;
            }
            for &c in bucket {
                if c > 0 {
                    ll += (c as f64) * ((c as f64) / (total as f64)).ln();
                }
            }
        }

        let q: f64 = parents.iter().map(|p| self.data.card(p) as f64).product();
        let penalty = 0.5 * (n as f64).ln() * ((child_card as f64) - 1.0) * q;
        ll - penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_data(n: usize) -> EncodedData {
        // b = a exactly, c independent.
        let a: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let b = a.clone();
        let c: Vec<u32> = (0..n).map(|i| ((i.wrapping_mul(2654435761) >> 9) % 2) as u32).collect();
        EncodedData::from_parts(
            vec![a, b, c],
            vec![3, 3, 2],
            vec!["a".into(), "b".into(), "c".into()],
        )
    }

    #[test]
    fn true_parent_beats_empty_set() {
        let data = chain_data(600);
        let mut s = BicScorer::new(&data);
        let with_parent = s.family_score(1, NodeSet::singleton(0));
        let without = s.family_score(1, NodeSet::EMPTY);
        assert!(
            with_parent > without,
            "deterministic parent must improve BIC: {with_parent} vs {without}"
        );
    }

    #[test]
    fn spurious_parent_is_penalized() {
        let data = chain_data(600);
        let mut s = BicScorer::new(&data);
        let clean = s.family_score(2, NodeSet::EMPTY);
        let spurious = s.family_score(2, NodeSet::singleton(0));
        assert!(clean > spurious, "independent parent must lose to the penalty");
    }

    #[test]
    fn total_is_sum_of_families_and_cache_hits() {
        let data = chain_data(300);
        let mut s = BicScorer::new(&data);
        let parent_sets = vec![NodeSet::EMPTY, NodeSet::singleton(0), NodeSet::EMPTY];
        let total = s.total_score(&parent_sets);
        let manual = s.family_score(0, NodeSet::EMPTY)
            + s.family_score(1, NodeSet::singleton(0))
            + s.family_score(2, NodeSet::EMPTY);
        assert!((total - manual).abs() < 1e-9);
    }

    #[test]
    fn deterministic_family_ll_is_zero() {
        // b = a exactly ⇒ within each config the child is constant ⇒ LL = 0;
        // score = −penalty.
        let data = chain_data(500);
        let mut s = BicScorer::new(&data);
        let score = s.family_score(1, NodeSet::singleton(0));
        let penalty = 0.5 * (500f64).ln() * 2.0 * 3.0;
        assert!((score + penalty).abs() < 1e-9, "score {score}, -penalty {}", -penalty);
    }
}
