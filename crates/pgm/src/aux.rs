//! The auxiliary distribution `P_𝕀` (Def. 4.5) and its sampler.
//!
//! High-cardinality attributes starve contingency-table tests of data. The
//! paper's remedy (shared with FDX [43]) is to test structure on the
//! **auxiliary distribution**: draw two rows `t₁, t₂ ~ P_D` and emit the
//! binary vector `𝕀` with `𝕀ₖ = [t₁(aₖ) = t₂(aₖ)]`. Proposition 5 (appendix
//! D) shows `P_𝕀` has exactly the same conditional-independence structure as
//! `P_D`, so a PGM learned on `𝕀` is a PGM of the raw data — but every
//! variable is now binary.
//!
//! Sampling uses the **circular shift trick** (§7): pairing row `i` with row
//! `(i + s) mod n` for a handful of random shifts `s` turns pair sampling
//! into vectorizable column comparisons and guarantees each source row is
//! used equally often.

use crate::encode::EncodedData;
use rand::Rng;

/// Draws an auxiliary sample of approximately `target_pairs` indicator
/// vectors from `data` using circular shifts.
///
/// Each selected shift `s ∈ [1, n)` contributes `n` pairs
/// `(i, (i + s) mod n)`; shifts are drawn without replacement until the
/// target is met. Shift 0 is excluded (it would compare rows to themselves
/// and yield all-ones vectors carrying no information).
pub fn auxiliary_sample<R: Rng>(
    data: &EncodedData,
    target_pairs: usize,
    rng: &mut R,
) -> EncodedData {
    let n = data.num_rows();
    let d = data.num_attrs();
    assert!(n >= 2, "auxiliary sampling needs at least two rows");

    let num_shifts = target_pairs.div_ceil(n).clamp(1, n - 1);
    let mut shifts: Vec<usize> = Vec::with_capacity(num_shifts);
    while shifts.len() < num_shifts {
        let s = rng.gen_range(1..n);
        if !shifts.contains(&s) {
            shifts.push(s);
        }
    }

    let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(num_shifts * n); d];
    for &s in &shifts {
        for (k, out) in columns.iter_mut().enumerate() {
            let col = data.column(k);
            for i in 0..n {
                let j = (i + s) % n;
                out.push(u32::from(col[i] == col[j]));
            }
        }
    }

    let names = data.names().iter().map(|a| format!("I[{a}]")).collect();
    EncodedData::from_parts(columns, vec![2; d], names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn output_shape_and_binary_codes() {
        let data = EncodedData::from_parts(
            vec![vec![0, 1, 2, 0, 1], vec![0, 0, 1, 1, 0]],
            vec![3, 2],
            vec!["a".into(), "b".into()],
        );
        let aux = auxiliary_sample(&data, 10, &mut rng());
        assert_eq!(aux.num_attrs(), 2);
        assert_eq!(aux.num_rows(), 10); // 2 shifts × 5 rows
        assert_eq!(aux.cards(), &[2, 2]);
        assert!(aux.column(0).iter().all(|&c| c <= 1));
        assert_eq!(aux.names()[0], "I[a]");
    }

    #[test]
    fn constant_column_yields_all_ones() {
        let data = EncodedData::from_parts(
            vec![vec![5, 5, 5, 5], vec![0, 1, 2, 3]],
            vec![6, 4],
            vec!["c".into(), "u".into()],
        );
        let aux = auxiliary_sample(&data, 8, &mut rng());
        assert!(aux.column(0).iter().all(|&c| c == 1), "equal values ⇒ indicator 1");
        // An all-distinct column never matches under a nonzero shift.
        assert!(aux.column(1).iter().all(|&c| c == 0));
    }

    #[test]
    fn preserves_functional_dependence() {
        // b = a (deterministic): whenever a-values match, b-values match, so
        // I[a] = 1 implies I[b] = 1.
        let a: Vec<u32> = (0..50).map(|i| i % 5).collect();
        let b = a.clone();
        let data = EncodedData::from_parts(vec![a, b], vec![5, 5], vec!["a".into(), "b".into()]);
        let aux = auxiliary_sample(&data, 200, &mut rng());
        for i in 0..aux.num_rows() {
            if aux.column(0)[i] == 1 {
                assert_eq!(aux.column(1)[i], 1);
            }
        }
    }

    #[test]
    fn proposition_5_ci_structure_is_preserved() {
        // Chain a0 → a1 → a2: marginal dependence everywhere, a0 ⫫ a2 | a1.
        // Prop. 5 says the indicator vector 𝕀 has the same CI structure.
        use crate::oracle::{DataOracle, IndependenceOracle};
        use guardrail_graph::NodeSet;
        let mut s = 77u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let n = 6000;
        let mut a0 = Vec::new();
        let mut a1 = Vec::new();
        let mut a2 = Vec::new();
        for _ in 0..n {
            let x = (next() % 4) as u32;
            let y = if next() % 25 == 0 { (next() % 3) as u32 } else { x % 3 };
            let z = if next() % 25 == 0 { (next() % 2) as u32 } else { y % 2 };
            a0.push(x);
            a1.push(y);
            a2.push(z);
        }
        let data = EncodedData::from_parts(
            vec![a0, a1, a2],
            vec![4, 3, 2],
            vec!["a0".into(), "a1".into(), "a2".into()],
        );
        let aux = auxiliary_sample(&data, 30_000, &mut rng());
        let scale = n as f64 / aux.num_rows() as f64;
        let oracle = DataOracle::new(&aux).with_statistic_scale(scale);
        // Dependencies survive the transform…
        assert!(!oracle.independent(0, 1, NodeSet::EMPTY), "𝕀₀ ⫫̸ 𝕀₁");
        assert!(!oracle.independent(1, 2, NodeSet::EMPTY), "𝕀₁ ⫫̸ 𝕀₂");
        // …and the conditional independence does too.
        assert!(oracle.independent(0, 2, NodeSet::singleton(1)), "𝕀₀ ⫫ 𝕀₂ | 𝕀₁");
    }

    #[test]
    fn respects_target_lower_bound() {
        let data = EncodedData::from_parts(vec![vec![0, 1, 0, 1, 0, 1]], vec![2], vec!["a".into()]);
        // Target beyond capacity clamps to n-1 shifts.
        let aux = auxiliary_sample(&data, 1_000_000, &mut rng());
        assert_eq!(aux.num_rows(), 5 * 6);
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn single_row_rejected() {
        let data = EncodedData::from_parts(vec![vec![0]], vec![1], vec!["a".into()]);
        auxiliary_sample(&data, 4, &mut rng());
    }
}
