//! Enumerating the DAGs of a Markov equivalence class.
//!
//! Alg. 2 of the paper iterates over every DAG `G ∈ [G]` of the learned MEC.
//! The reference implementation adapts a Julia PDAG enumerator [36]; here we
//! implement consistent-extension enumeration natively:
//!
//! 1. pick the lowest-indexed undirected edge of the CPDAG,
//! 2. branch on its two orientations,
//! 3. close each branch under Meek's rules (pure pruning/propagation),
//! 4. reject branches that create a directed cycle,
//! 5. at fully oriented leaves, accept exactly the DAGs whose v-structures
//!    equal the CPDAG's (the Verma–Pearl criterion), which makes the
//!    enumeration correct even where rules R1–R3 alone are incomplete under
//!    branching-induced background knowledge.
//!
//! The paper caps enumeration ("subject to a maximal enumeration of DAGs");
//! the [`Budget`] passed in plays that role: one work unit is charged per
//! accepted DAG, and the deadline/cancellation is ticked at every recursion
//! node, so a wall-clock budget can interrupt the search even between
//! results. Exhaustion degrades — the DAGs found so far are returned with a
//! [`StageStatus::Degraded`] marker rather than an error.

use crate::dag::Dag;
use crate::pdag::Pdag;
use guardrail_governor::{Budget, Exhausted, StageStatus};

/// Stage name reported when enumeration runs out of budget.
pub const ENUMERATE_STAGE: &str = "mec_enumeration";

/// Enumerates the DAGs in the MEC represented by `cpdag` under `budget`
/// (one work unit per accepted DAG). Returns the DAGs found and whether the
/// traversal completed or was cut short.
pub fn enumerate_extensions(cpdag: &Pdag, budget: &Budget) -> (Vec<Dag>, StageStatus) {
    let reference_v = sorted_v_structures(cpdag);
    let mut out = Vec::new();
    let mut work = cpdag.clone();
    let status = match recurse(&mut work, &reference_v, budget, &mut out) {
        Ok(()) => StageStatus::Complete,
        Err(e) => StageStatus::degraded(ENUMERATE_STAGE, e),
    };
    (out, status)
}

/// Counts the DAGs in the MEC (same traversal as [`enumerate_extensions`]
/// without materializing graphs). Returns `(count, status)`.
pub fn count_extensions(cpdag: &Pdag, budget: &Budget) -> (usize, StageStatus) {
    let (dags, status) = enumerate_extensions(cpdag, budget);
    (dags.len(), status)
}

fn sorted_v_structures(pdag: &Pdag) -> Vec<(usize, usize, usize)> {
    let mut v = pdag.v_structures();
    v.sort_unstable();
    v
}

fn recurse(
    pdag: &mut Pdag,
    reference_v: &[(usize, usize, usize)],
    budget: &Budget,
    out: &mut Vec<Dag>,
) -> Result<(), Exhausted> {
    // Deadline/cancellation tick per node; also trips once the work cap is
    // saturated so a capped search stops before expanding further branches.
    budget.check()?;
    if pdag.has_directed_cycle() {
        return Ok(());
    }
    let undirected = pdag.undirected_edges();
    match undirected.first() {
        None => {
            if let Some(dag) = pdag.to_dag() {
                // Accept only genuine members of the MEC: same skeleton is
                // guaranteed by construction; v-structures must match.
                if sorted_v_structures_of_dag(&dag) == reference_v {
                    budget.charge(1)?;
                    out.push(dag);
                }
            }
            Ok(())
        }
        Some(&(u, v)) => {
            for (a, b) in [(u, v), (v, u)] {
                let mut branch = pdag.clone();
                branch.orient(a, b);
                branch.meek_closure();
                recurse(&mut branch, reference_v, budget, out)?;
            }
            Ok(())
        }
    }
}

fn sorted_v_structures_of_dag(dag: &Dag) -> Vec<(usize, usize, usize)> {
    let mut v = dag.v_structures();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_governor::ExhaustionReason;

    fn enumerate(cpdag: &Pdag) -> Vec<Dag> {
        let (dags, status) = enumerate_extensions(cpdag, &Budget::unlimited());
        assert!(status.is_complete());
        dags
    }

    #[test]
    fn single_undirected_edge_has_two_extensions() {
        let mut p = Pdag::new(2);
        p.add_undirected(0, 1);
        let dags = enumerate(&p);
        assert_eq!(dags.len(), 2);
    }

    #[test]
    fn chain_cpdag_has_three_members() {
        // The MEC of 0 → 1 → 2 contains: 0→1→2, 0←1→2, 0←1←2 (all chains /
        // forks; the collider is excluded).
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let cpdag = dag.to_cpdag();
        let dags = enumerate(&cpdag);
        assert_eq!(dags.len(), 3);
        for d in &dags {
            assert!(d.markov_equivalent(&dag));
            assert!(d.v_structures().is_empty());
        }
    }

    #[test]
    fn collider_cpdag_is_singleton() {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let cpdag = dag.to_cpdag();
        let dags = enumerate(&cpdag);
        assert_eq!(dags.len(), 1);
        assert!(dags[0].has_edge(0, 2) && dags[0].has_edge(1, 2));
    }

    #[test]
    fn star_mec_size() {
        // Undirected star K1,3 around center 0: orientations with ≥2 edges
        // into 0 create new v-structures, so valid members are: all edges out
        // of 0 (1), or exactly one edge into 0 (3). Total 4.
        let mut p = Pdag::new(4);
        p.add_undirected(0, 1);
        p.add_undirected(0, 2);
        p.add_undirected(0, 3);
        let dags = enumerate(&p);
        assert_eq!(dags.len(), 4);
    }

    #[test]
    fn complete_graph_mec_counts_orderings() {
        // A fully undirected triangle: every acyclic orientation is
        // equivalent (no v-structures possible since all pairs adjacent).
        // Acyclic orientations of K3 = 3! = 6.
        let mut p = Pdag::new(3);
        p.add_undirected(0, 1);
        p.add_undirected(1, 2);
        p.add_undirected(0, 2);
        let dags = enumerate(&p);
        assert_eq!(dags.len(), 6);
    }

    #[test]
    fn every_member_roundtrips_to_same_cpdag() {
        let dag = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
        let cpdag = dag.to_cpdag();
        let dags = enumerate(&cpdag);
        assert!(!dags.is_empty());
        assert!(dags.iter().any(|d| d == &dag), "ground truth must be in its own MEC");
        for d in &dags {
            assert_eq!(d.to_cpdag(), cpdag);
        }
    }

    #[test]
    fn work_cap_degrades_with_partial_results() {
        // Complete undirected K4 has 24 linear extensions; cap at 5.
        let mut p = Pdag::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                p.add_undirected(u, v);
            }
        }
        let budget = Budget::with_work_cap(5);
        let (dags, status) = enumerate_extensions(&p, &budget);
        assert_eq!(dags.len(), 5);
        match status {
            StageStatus::Degraded(d) => {
                assert_eq!(d.stage, ENUMERATE_STAGE);
                assert_eq!(d.reason, ExhaustionReason::WorkCapReached);
                assert_eq!(d.work_done, 5);
            }
            StageStatus::Complete => panic!("cap of 5 on a 24-member MEC must degrade"),
        }
        let (count, status) = count_extensions(&p, &Budget::unlimited());
        assert_eq!(count, 24);
        assert!(status.is_complete());
    }

    #[test]
    fn exact_cap_is_not_degraded_unless_branches_remain() {
        // Chain MEC has exactly 3 members. A cap of 3 may or may not leave
        // unexplored branches; a cap of 4 certainly completes.
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let cpdag = dag.to_cpdag();
        let (dags, status) = enumerate_extensions(&cpdag, &Budget::with_work_cap(4));
        assert_eq!(dags.len(), 3);
        assert!(status.is_complete());
    }

    #[test]
    fn expired_deadline_yields_empty_degraded_result() {
        let mut p = Pdag::new(3);
        p.add_undirected(0, 1);
        p.add_undirected(1, 2);
        let (dags, status) =
            enumerate_extensions(&p, &Budget::with_deadline(std::time::Duration::ZERO));
        assert!(dags.is_empty());
        assert!(!status.is_complete());
    }

    #[test]
    fn mixed_cpdag_enumeration() {
        // v-structure 0 → 2 ← 1 plus undirected tail 2 — 3 is impossible:
        // Meek R1 would orient 2 → 3 in the CPDAG. Build the real CPDAG from
        // the DAG and check the MEC is a singleton.
        let dag = Dag::from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        let cpdag = dag.to_cpdag();
        assert_eq!(cpdag.num_undirected_edges(), 0);
        let dags = enumerate(&cpdag);
        assert_eq!(dags.len(), 1);
    }
}
