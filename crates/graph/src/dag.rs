//! Directed acyclic graphs.

use crate::nodeset::NodeSet;
use crate::pdag::Pdag;

/// A directed acyclic graph over nodes `0..n`.
///
/// In the SEM interpretation (Def. 4.3 of the paper), nodes are attributes
/// and an edge `u → v` says `u` is an argument of the deterministic function
/// generating `v`. Parent sets are what the synthesis pipeline ultimately
/// consumes: `GIVEN Pa(v) ON v HAVING □`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dag {
    n: usize,
    parents: Vec<NodeSet>,
    children: Vec<NodeSet>,
}

impl Dag {
    /// Creates an edgeless DAG with `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= crate::MAX_NODES, "at most {} nodes supported", crate::MAX_NODES);
        Self { n, parents: vec![NodeSet::EMPTY; n], children: vec![NodeSet::EMPTY; n] }
    }

    /// Builds a DAG from `(from, to)` edges; `Err` if a cycle results.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, CycleError> {
        let mut g = Dag::new(n);
        for &(u, v) in edges {
            g.add_edge_unchecked(u, v);
        }
        if g.topological_order().is_none() {
            return Err(CycleError);
        }
        Ok(g)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(|c| c.len()).sum()
    }

    /// Adds `u → v` without cycle checking (caller guarantees acyclicity or
    /// validates afterwards via [`Dag::topological_order`]).
    pub fn add_edge_unchecked(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self loops are not allowed");
        self.children[u].insert(v);
        self.parents[v].insert(u);
    }

    /// Adds `u → v`, returning `Err` and leaving the graph unchanged if the
    /// edge would create a cycle.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), CycleError> {
        if self.reachable(v, u) {
            return Err(CycleError);
        }
        self.add_edge_unchecked(u, v);
        Ok(())
    }

    /// `true` when the directed edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.children[u].contains(v)
    }

    /// Parent set of `v`.
    pub fn parents(&self, v: usize) -> NodeSet {
        self.parents[v]
    }

    /// Child set of `u`.
    pub fn children(&self, u: usize) -> NodeSet {
        self.children[u]
    }

    /// Nodes adjacent to `v` in either direction.
    pub fn adjacent(&self, v: usize) -> NodeSet {
        self.parents[v].union(self.children[v])
    }

    /// All edges as `(from, to)` pairs, ordered by `(from, to)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.n {
            for v in self.children[u].iter() {
                out.push((u, v));
            }
        }
        out
    }

    /// `true` when `to` is reachable from `from` by directed paths (including
    /// `from == to`).
    pub fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut visited = NodeSet::singleton(from);
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            for v in self.children[u].iter() {
                if v == to {
                    return true;
                }
                if !visited.contains(v) {
                    visited.insert(v);
                    stack.push(v);
                }
            }
        }
        false
    }

    /// All ancestors of `v` (not including `v`).
    pub fn ancestors(&self, v: usize) -> NodeSet {
        let mut anc = NodeSet::EMPTY;
        let mut stack: Vec<usize> = self.parents[v].iter().collect();
        while let Some(u) = stack.pop() {
            if !anc.contains(u) {
                anc.insert(u);
                stack.extend(self.parents[u].iter());
            }
        }
        anc
    }

    /// A topological order, or `None` if the graph has a cycle (possible only
    /// if built via [`Dag::add_edge_unchecked`]).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut in_degree: Vec<usize> = (0..self.n).map(|v| self.parents[v].len()).collect();
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| in_degree[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for v in self.children[u].iter() {
                in_degree[v] -= 1;
                if in_degree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() == self.n {
            Some(order)
        } else {
            None
        }
    }

    /// The v-structures (immoralities) of this DAG: triples `(a, c, b)` with
    /// `a → c ← b`, `a < b`, and `a`, `b` nonadjacent.
    pub fn v_structures(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for c in 0..self.n {
            let pa: Vec<usize> = self.parents[c].iter().collect();
            for (i, &a) in pa.iter().enumerate() {
                for &b in &pa[i + 1..] {
                    if !self.adjacent(a).contains(b) {
                        out.push((a, c, b));
                    }
                }
            }
        }
        out
    }

    /// The CPDAG representing this DAG's Markov equivalence class: keep the
    /// skeleton, orient the v-structures, and close under Meek's rules.
    pub fn to_cpdag(&self) -> Pdag {
        let mut pdag = Pdag::new(self.n);
        for (u, v) in self.edges() {
            pdag.add_undirected(u, v);
        }
        for (a, c, b) in self.v_structures() {
            pdag.orient(a, c);
            pdag.orient(b, c);
        }
        pdag.meek_closure();
        pdag
    }

    /// `true` when `other` is Markov equivalent to `self` (same skeleton and
    /// same v-structures — the Verma–Pearl criterion).
    pub fn markov_equivalent(&self, other: &Dag) -> bool {
        if self.n != other.n {
            return false;
        }
        let skel = |g: &Dag| {
            let mut edges: Vec<(usize, usize)> =
                g.edges().into_iter().map(|(u, v)| (u.min(v), u.max(v))).collect();
            edges.sort_unstable();
            edges
        };
        if skel(self) != skel(other) {
            return false;
        }
        let mut v1 = self.v_structures();
        let mut v2 = other.v_structures();
        v1.sort_unstable();
        v2.sort_unstable();
        v1 == v2
    }
}

/// Error returned when an operation would create (or detected) a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError;

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation would create a directed cycle")
    }
}

impl std::error::Error for CycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The chain PostalCode → City → State → Country from Example 3.1.
    fn chain4() -> Dag {
        Dag::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let g = chain4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.parents(2), NodeSet::singleton(1));
        assert_eq!(g.children(1), NodeSet::singleton(2));
        assert_eq!(g.adjacent(1), NodeSet::from_iter([0, 2]));
    }

    #[test]
    fn cycle_rejected() {
        assert!(Dag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_err());
        let mut g = chain4();
        assert_eq!(g.add_edge(3, 0), Err(CycleError));
        assert!(!g.has_edge(3, 0), "failed add must not mutate");
        assert!(g.add_edge(0, 3).is_ok());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = chain4();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = (0..4).map(|v| order.iter().position(|&x| x == v).unwrap()).collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn ancestors_and_reachability() {
        let g = chain4();
        assert_eq!(g.ancestors(3), NodeSet::from_iter([0, 1, 2]));
        assert_eq!(g.ancestors(0), NodeSet::EMPTY);
        assert!(g.reachable(0, 3));
        assert!(!g.reachable(3, 0));
    }

    #[test]
    fn v_structure_detection() {
        // a → c ← b collider.
        let g = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        assert_eq!(g.v_structures(), vec![(0, 2, 1)]);
        // chain has no v-structures.
        assert!(chain4().v_structures().is_empty());
        // shielded collider is not a v-structure.
        let shielded = Dag::from_edges(3, &[(0, 2), (1, 2), (0, 1)]).unwrap();
        assert!(shielded.v_structures().is_empty());
    }

    #[test]
    fn markov_equivalence() {
        // X → Y and Y → X are equivalent (no colliders).
        let a = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let b = Dag::from_edges(2, &[(1, 0)]).unwrap();
        assert!(a.markov_equivalent(&b));
        // Collider vs chain on 3 nodes are NOT equivalent.
        let collider = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let chain = Dag::from_edges(3, &[(0, 2), (2, 1)]).unwrap();
        assert!(!collider.markov_equivalent(&chain));
    }

    #[test]
    fn chain_cpdag_is_fully_undirected() {
        // A chain's MEC leaves every edge reversible until a collider pins it.
        let pdag = chain4().to_cpdag();
        assert_eq!(pdag.num_undirected_edges(), 3);
        assert_eq!(pdag.num_directed_edges(), 0);
    }

    #[test]
    fn collider_cpdag_keeps_orientation() {
        let g = Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let pdag = g.to_cpdag();
        assert!(pdag.has_directed(0, 2));
        assert!(pdag.has_directed(1, 2));
        assert_eq!(pdag.num_undirected_edges(), 0);
    }
}
