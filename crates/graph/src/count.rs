//! Counting acyclic orientations of an undirected skeleton.
//!
//! Table 7 of the paper contrasts the number of DAGs in the learned MEC with
//! the raw orientation search space an enumeration procedure would face
//! without MEC constraints: all **acyclic orientations of the skeleton**.
//! By Stanley's theorem that count equals `|χ_G(−1)|`, which satisfies the
//! deletion–contraction recurrence
//!
//! ```text
//! a(G) = a(G − e) + a(G / e)
//! ```
//!
//! for any edge `e`, with `a(edgeless) = 1`. We accelerate the recurrence
//! with connected-component factoring and a bridge shortcut
//! (`a(G) = 2 · a(G − e)` when `e` is a bridge), which makes sparse,
//! tree-like attribute skeletons (the common case) effectively linear-time.
//! A step budget guards against dense pathological graphs; when exceeded we
//! return the `2^E` upper bound and flag it.

use std::collections::HashMap;

/// Result of an orientation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientationCount {
    /// The count (exact, or the `2^E` upper bound when `exact == false`).
    /// Saturates at `f64` precision for astronomically large counts.
    pub count: f64,
    /// Whether the count is exact.
    pub exact: bool,
}

/// Counts the acyclic orientations of the undirected graph given by `edges`
/// over `n` nodes, within `budget` deletion–contraction steps.
pub fn acyclic_orientations(n: usize, edges: &[(usize, usize)], budget: usize) -> OrientationCount {
    // Normalize to a simple graph: parallel edges impose the same ordering
    // constraint and self loops kill all orientations.
    let mut simple: Vec<(u8, u8)> = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge out of range");
        assert!(n <= 255, "count supports up to 255 nodes");
        if u == v {
            return OrientationCount { count: 0.0, exact: true };
        }
        simple.push((u.min(v) as u8, u.max(v) as u8));
    }
    simple.sort_unstable();
    simple.dedup();

    let mut memo = HashMap::new();
    let mut steps = 0usize;
    match count_rec(&simple, &mut memo, &mut steps, budget) {
        Some(c) => OrientationCount { count: c, exact: true },
        None => OrientationCount { count: 2f64.powi(simple.len() as i32), exact: false },
    }
}

/// Core recurrence on a canonical (sorted, deduped) edge list. Node identity
/// only matters through the edge structure, so the edge list itself is the
/// memo key after relabeling to first-occurrence order.
fn count_rec(
    edges: &[(u8, u8)],
    memo: &mut HashMap<Vec<(u8, u8)>, f64>,
    steps: &mut usize,
    budget: usize,
) -> Option<f64> {
    if edges.is_empty() {
        return Some(1.0);
    }
    *steps += 1;
    if *steps > budget {
        return None;
    }

    // Factor over connected components: a(G) = Π a(component).
    let components = split_components(edges);
    if components.len() > 1 {
        let mut product = 1.0;
        for comp in components {
            product *= count_rec(&comp, memo, steps, budget)?;
        }
        return Some(product);
    }

    // Trees (|E| = |V| - 1 for a connected graph) orient freely: 2^E.
    let nodes = node_count(edges);
    if edges.len() == nodes - 1 {
        return Some(2f64.powi(edges.len() as i32));
    }
    // A single cycle: 2^E - 2.
    if edges.len() == nodes && edges.iter().all(|_| true) && is_cycle(edges) {
        return Some(2f64.powi(edges.len() as i32) - 2.0);
    }

    let key = canonical(edges);
    if let Some(&c) = memo.get(&key) {
        return Some(c);
    }

    // Pick the last edge (deterministic) and apply deletion–contraction.
    let e = *edges.last().unwrap();
    let deleted: Vec<(u8, u8)> = edges[..edges.len() - 1].to_vec();
    let contracted = contract(&deleted, e);
    let result =
        count_rec(&deleted, memo, steps, budget)? + count_rec(&contracted, memo, steps, budget)?;
    memo.insert(key, result);
    Some(result)
}

fn node_count(edges: &[(u8, u8)]) -> usize {
    let mut seen = [false; 256];
    let mut count = 0;
    for &(u, v) in edges {
        for x in [u, v] {
            if !seen[x as usize] {
                seen[x as usize] = true;
                count += 1;
            }
        }
    }
    count
}

fn is_cycle(edges: &[(u8, u8)]) -> bool {
    let mut degree = [0u8; 256];
    for &(u, v) in edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    edges.iter().all(|&(u, v)| degree[u as usize] == 2 && degree[v as usize] == 2)
}

/// Splits the edge list into connected components (by edges).
fn split_components(edges: &[(u8, u8)]) -> Vec<Vec<(u8, u8)>> {
    let mut parent: HashMap<u8, u8> = HashMap::new();
    fn find(parent: &mut HashMap<u8, u8>, x: u8) -> u8 {
        let p = *parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let root = find(parent, p);
            parent.insert(x, root);
            root
        }
    }
    for &(u, v) in edges {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            parent.insert(ru, rv);
        }
    }
    let mut groups: HashMap<u8, Vec<(u8, u8)>> = HashMap::new();
    for &(u, v) in edges {
        let r = find(&mut parent, u);
        groups.entry(r).or_default().push((u, v));
    }
    let mut out: Vec<Vec<(u8, u8)>> = groups.into_values().collect();
    out.sort(); // deterministic
    out
}

/// Contracts edge `(a, b)` in `edges`: relabels `b` to `a`, drops loops,
/// dedupes parallels.
fn contract(edges: &[(u8, u8)], (a, b): (u8, u8)) -> Vec<(u8, u8)> {
    let mut out: Vec<(u8, u8)> = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        let u = if u == b { a } else { u };
        let v = if v == b { a } else { v };
        if u != v {
            out.push((u.min(v), u.max(v)));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Relabels nodes to first-occurrence order so isomorphic-by-relabeling edge
/// lists share a memo entry.
fn canonical(edges: &[(u8, u8)]) -> Vec<(u8, u8)> {
    let mut map: HashMap<u8, u8> = HashMap::new();
    let mut next = 0u8;
    let mut out = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        let cu = *map.entry(u).or_insert_with(|| {
            let c = next;
            next += 1;
            c
        });
        let cv = *map.entry(v).or_insert_with(|| {
            let c = next;
            next += 1;
            c
        });
        out.push((cu.min(cv), cu.max(cv)));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 1_000_000;

    fn exact(n: usize, edges: &[(usize, usize)]) -> f64 {
        let r = acyclic_orientations(n, edges, BUDGET);
        assert!(r.exact);
        r.count
    }

    /// Brute-force count by trying all 2^E orientations.
    fn brute_force(n: usize, edges: &[(usize, usize)]) -> f64 {
        let m = edges.len();
        let mut count = 0u64;
        'outer: for mask in 0u64..(1 << m) {
            let mut dag = crate::dag::Dag::new(n);
            for (i, &(u, v)) in edges.iter().enumerate() {
                let (a, b) = if mask >> i & 1 == 0 { (u, v) } else { (v, u) };
                dag.add_edge_unchecked(a, b);
            }
            if dag.topological_order().is_none() {
                continue 'outer;
            }
            count += 1;
        }
        count as f64
    }

    #[test]
    fn known_small_graphs() {
        // Single edge: 2 orientations.
        assert_eq!(exact(2, &[(0, 1)]), 2.0);
        // Path of 3: tree, 2^2 = 4.
        assert_eq!(exact(3, &[(0, 1), (1, 2)]), 4.0);
        // Triangle: 3! = 6.
        assert_eq!(exact(3, &[(0, 1), (1, 2), (0, 2)]), 6.0);
        // 4-cycle: 2^4 - 2 = 14.
        assert_eq!(exact(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), 14.0);
        // K4: 4! = 24.
        let k4: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(exact(4, &k4), 24.0);
        // Edgeless: 1.
        assert_eq!(exact(5, &[]), 1.0);
    }

    #[test]
    fn matches_brute_force_on_random_shapes() {
        let shapes: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]),
            (6, vec![(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)]),
            (4, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)]),
            (7, vec![(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 5), (5, 6), (6, 4)]),
        ];
        for (n, edges) in shapes {
            assert_eq!(exact(n, &edges), brute_force(n, &edges), "graph {edges:?}");
        }
    }

    #[test]
    fn parallel_edges_and_loops() {
        // Parallel edges count once.
        assert_eq!(exact(2, &[(0, 1), (1, 0)]), 2.0);
        // A self loop admits no acyclic orientation.
        let r = acyclic_orientations(2, &[(0, 0)], BUDGET);
        assert_eq!(r.count, 0.0);
    }

    #[test]
    fn components_multiply() {
        // Two disjoint edges: 2 * 2.
        assert_eq!(exact(4, &[(0, 1), (2, 3)]), 4.0);
        // Triangle + path: 6 * 4.
        assert_eq!(exact(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]), 24.0);
    }

    #[test]
    fn budget_exhaustion_falls_back() {
        // Dense K8 with a 1-step budget.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let r = acyclic_orientations(8, &edges, 1);
        assert!(!r.exact);
        assert_eq!(r.count, 2f64.powi(28));
        // With budget, K8 = 8! = 40320.
        let r = acyclic_orientations(8, &edges, BUDGET);
        assert!(r.exact);
        assert_eq!(r.count, 40_320.0);
    }

    #[test]
    fn large_sparse_graph_is_fast() {
        // 40-node tree plus a few chords — the shape of a real skeleton.
        let mut edges: Vec<(usize, usize)> = (1..40).map(|v| (v / 2, v)).collect();
        edges.push((3, 17));
        edges.push((5, 29));
        edges.push((10, 22));
        let r = acyclic_orientations(40, &edges, BUDGET);
        assert!(r.exact);
        assert!(r.count > 1e11, "count = {}", r.count);
    }
}
