//! Graph substrate for Guardrail's structure-learning pipeline.
//!
//! The paper's sketch learner works with probabilistic graphical models: it
//! learns a **CPDAG** (the graph representation of a Markov equivalence
//! class) from data, enumerates the DAGs inside that class (Alg. 2), and
//! reads program sketches off each DAG's parent sets. This crate provides all
//! of the required graph machinery, replacing the Julia PDAG enumerator of
//! Wienöbst et al. [36] that the reference implementation shells out to:
//!
//! * [`NodeSet`] — a `u128` bitset over node indices (≤ 128 nodes).
//! * [`Dag`] — directed acyclic graphs with topological sorting, ancestor
//!   queries, and conversion to the CPDAG of their equivalence class.
//! * [`Pdag`] — partially directed graphs with v-structure detection and
//!   Meek-rule closure.
//! * [`dsep`] — d-separation queries (used by tests to validate the PC
//!   implementation against ground truth).
//! * [`enumerate`] — enumeration/counting of the consistent extensions of a
//!   CPDAG, i.e. all DAGs in the MEC (Table 7, "w/ MEC" column).
//! * [`count`] — acyclic-orientation counting of a skeleton via
//!   deletion–contraction (Table 7, "w/o MEC" column).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chickering;
pub mod count;
pub mod dag;
pub mod dsep;
pub mod enumerate;
pub mod nodeset;
pub mod pdag;

pub use chickering::cpdag_by_compelled_edges;
pub use count::acyclic_orientations;
pub use dag::Dag;
pub use dsep::d_separated;
pub use enumerate::{count_extensions, enumerate_extensions, ENUMERATE_STAGE};
pub use nodeset::NodeSet;
pub use pdag::Pdag;

/// Maximum number of nodes supported by [`NodeSet`]-backed graphs.
pub const MAX_NODES: usize = 128;
