//! d-separation queries on DAGs.

use crate::dag::Dag;
use crate::nodeset::NodeSet;

/// Tests whether `x` and `y` are d-separated by the conditioning set `z` in
/// `dag`.
///
/// Implemented with the reachability formulation of the Bayes-ball algorithm:
/// we search over *directed* node visits `(node, direction)` where direction
/// records whether we entered the node along an incoming or outgoing edge,
/// applying the standard blocking rules:
///
/// * chains and forks are blocked exactly when the middle node is in `z`;
/// * colliders are open exactly when the collider or one of its descendants
///   is in `z`.
///
/// Under the faithfulness assumption (Def. A.1 in the paper's appendix),
/// d-separation coincides with conditional independence in the data
/// distribution; the test suite uses this routine as the ground-truth oracle
/// when validating the PC implementation.
pub fn d_separated(dag: &Dag, x: usize, y: usize, z: NodeSet) -> bool {
    assert!(x < dag.num_nodes() && y < dag.num_nodes(), "nodes out of range");
    if x == y {
        return false;
    }
    if z.contains(x) || z.contains(y) {
        // Conventions vary; we treat conditioning on an endpoint as separating.
        return true;
    }

    // Precompute "node is in z or has a descendant in z" for collider checks.
    let mut anc_of_z = z;
    {
        let mut stack: Vec<usize> = z.iter().collect();
        while let Some(v) = stack.pop() {
            for p in dag.parents(v).iter() {
                if !anc_of_z.contains(p) {
                    anc_of_z.insert(p);
                    stack.push(p);
                }
            }
        }
    }

    // State: (node, entered_via_incoming_edge). Start from x as if entered
    // from a child (can travel anywhere).
    let n = dag.num_nodes();
    let mut visited_up = NodeSet::EMPTY; // entered against edge direction (from child)
    let mut visited_down = NodeSet::EMPTY; // entered along edge direction (from parent)
    let mut stack: Vec<(usize, bool)> = vec![(x, false)]; // false = "up" entry
    visited_up.insert(x);

    while let Some((v, entered_down)) = stack.pop() {
        debug_assert!(v < n);
        if v == y {
            return false;
        }
        if !entered_down {
            // Entered from a child (or start). If v ∉ z we may go to parents
            // (chain backwards) and to children (fork).
            if !z.contains(v) {
                for p in dag.parents(v).iter() {
                    if !visited_up.contains(p) {
                        visited_up.insert(p);
                        stack.push((p, false));
                    }
                }
                for c in dag.children(v).iter() {
                    if !visited_down.contains(c) {
                        visited_down.insert(c);
                        stack.push((c, true));
                    }
                }
            }
        } else {
            // Entered from a parent.
            if !z.contains(v) {
                // Chain forward: continue to children.
                for c in dag.children(v).iter() {
                    if !visited_down.contains(c) {
                        visited_down.insert(c);
                        stack.push((c, true));
                    }
                }
            }
            if anc_of_z.contains(v) {
                // Collider at v is open (v in z or has descendant in z):
                // bounce back to parents.
                for p in dag.parents(v).iter() {
                    if !visited_up.contains(p) {
                        visited_up.insert(p);
                        stack.push((p, false));
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Dag {
        // 0 → 1 → 2
        Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    fn collider() -> Dag {
        // 0 → 2 ← 1
        Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn chain_blocking() {
        let g = chain();
        assert!(!d_separated(&g, 0, 2, NodeSet::EMPTY));
        assert!(d_separated(&g, 0, 2, NodeSet::singleton(1)));
    }

    #[test]
    fn fork_blocking() {
        // 1 ← 0 → 2
        let g = Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        assert!(!d_separated(&g, 1, 2, NodeSet::EMPTY));
        assert!(d_separated(&g, 1, 2, NodeSet::singleton(0)));
    }

    #[test]
    fn collider_opens_when_conditioned() {
        let g = collider();
        assert!(d_separated(&g, 0, 1, NodeSet::EMPTY));
        assert!(!d_separated(&g, 0, 1, NodeSet::singleton(2)));
    }

    #[test]
    fn collider_descendant_opens_path() {
        // 0 → 2 ← 1, 2 → 3: conditioning on 3 also opens the collider.
        let g = Dag::from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        assert!(d_separated(&g, 0, 1, NodeSet::EMPTY));
        assert!(!d_separated(&g, 0, 1, NodeSet::singleton(3)));
    }

    #[test]
    fn long_chain_and_multiple_paths() {
        // Diamond: 0 → 1 → 3, 0 → 2 → 3.
        let g = Dag::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        assert!(!d_separated(&g, 0, 3, NodeSet::singleton(1))); // path via 2 open
        assert!(d_separated(&g, 0, 3, NodeSet::from_iter([1, 2])));
        // 1 vs 2: common cause 0, common effect 3.
        assert!(!d_separated(&g, 1, 2, NodeSet::EMPTY));
        assert!(d_separated(&g, 1, 2, NodeSet::singleton(0)));
        assert!(!d_separated(&g, 1, 2, NodeSet::from_iter([0, 3]))); // collider reopens
    }

    #[test]
    fn disconnected_nodes_are_separated() {
        let g = Dag::from_edges(4, &[(0, 1)]).unwrap();
        assert!(d_separated(&g, 0, 3, NodeSet::EMPTY));
        assert!(d_separated(&g, 2, 3, NodeSet::EMPTY));
    }

    #[test]
    fn exhaustive_against_paths_on_asia_fragment() {
        // Cancer network shape: Pollution → Cancer ← Smoker, Cancer → Xray,
        // Cancer → Dyspnoea.
        // Nodes: 0=Pollution, 1=Smoker, 2=Cancer, 3=Xray, 4=Dyspnoea.
        let g = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        // Xray and Dyspnoea share only Cancer.
        assert!(!d_separated(&g, 3, 4, NodeSet::EMPTY));
        assert!(d_separated(&g, 3, 4, NodeSet::singleton(2)));
        // Pollution ⫫ Smoker, unless Cancer (or symptom) conditioned.
        assert!(d_separated(&g, 0, 1, NodeSet::EMPTY));
        assert!(!d_separated(&g, 0, 1, NodeSet::singleton(2)));
        assert!(!d_separated(&g, 0, 1, NodeSet::singleton(3)));
        // Pollution ⫫ Xray | Cancer.
        assert!(d_separated(&g, 0, 3, NodeSet::singleton(2)));
        assert!(!d_separated(&g, 0, 3, NodeSet::EMPTY));
    }
}
