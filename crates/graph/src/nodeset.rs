//! Fixed-capacity node sets backed by a `u128` bitmask.

use std::fmt;

/// A set of node indices in `0..128`.
///
/// All graph algorithms in this crate are over attribute graphs (≤ 40 nodes
/// in the paper's datasets), so a single `u128` word gives O(1) union /
/// intersection / membership with no allocation — the dominant operations in
/// Meek-rule closure and extension enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NodeSet(u128);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Set containing a single node.
    pub fn singleton(node: usize) -> Self {
        assert!(node < 128, "node index {node} out of range");
        NodeSet(1u128 << node)
    }

    /// Set containing all nodes in `0..n`.
    pub fn full(n: usize) -> Self {
        assert!(n <= 128, "capacity is 128 nodes");
        if n == 128 {
            NodeSet(u128::MAX)
        } else {
            NodeSet((1u128 << n) - 1)
        }
    }

    /// Builds a set from an iterator of node indices.
    ///
    /// Inherent (rather than only the [`FromIterator`] impl) so call sites
    /// don't need the trait in scope.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Membership test.
    pub fn contains(&self, node: usize) -> bool {
        node < 128 && self.0 & (1u128 << node) != 0
    }

    /// Inserts a node.
    pub fn insert(&mut self, node: usize) {
        assert!(node < 128, "node index {node} out of range");
        self.0 |= 1u128 << node;
    }

    /// Removes a node.
    pub fn remove(&mut self, node: usize) {
        if node < 128 {
            self.0 &= !(1u128 << node);
        }
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union.
    pub fn union(&self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersection(&self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// `true` when `self ⊆ other`.
    pub fn is_subset(&self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` when the sets share no node.
    pub fn is_disjoint(&self, other: NodeSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates node indices in ascending order.
    pub fn iter(&self) -> NodeSetIter {
        NodeSetIter(self.0)
    }

    /// The smallest node in the set, if any.
    pub fn first_node(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest node in the set, if any.
    pub fn last_node(&self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros() as usize)
        }
    }

    /// All subsets of this set with exactly `k` elements.
    ///
    /// Used by the PC algorithm to enumerate conditioning sets of growing
    /// size from the adjacency of an edge.
    pub fn subsets_of_size(&self, k: usize) -> Vec<NodeSet> {
        let items: Vec<usize> = self.iter().collect();
        let mut out = Vec::new();
        if k > items.len() {
            return out;
        }
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            out.push(NodeSet::from_iter(idx.iter().map(|&i| items[i])));
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + items.len() - k {
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            idx[i] += 1;
            for j in (i + 1)..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }
}

/// Iterator over the indices of a [`NodeSet`].
pub struct NodeSetIter(u128);

impl Iterator for NodeSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }
}

impl FromIterator<usize> for NodeSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        NodeSet::from_iter(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(100);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![100]);
    }

    #[test]
    fn algebra() {
        let a = NodeSet::from_iter([1, 2, 3]);
        let b = NodeSet::from_iter([3, 4]);
        assert_eq!(a.union(b), NodeSet::from_iter([1, 2, 3, 4]));
        assert_eq!(a.intersection(b), NodeSet::singleton(3));
        assert_eq!(a.difference(b), NodeSet::from_iter([1, 2]));
        assert!(NodeSet::from_iter([1, 2]).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(a.is_disjoint(NodeSet::from_iter([7, 8])));
    }

    #[test]
    fn full_and_min() {
        assert_eq!(NodeSet::full(5).len(), 5);
        assert_eq!(NodeSet::full(128).len(), 128);
        assert_eq!(NodeSet::full(0), NodeSet::EMPTY);
        assert_eq!(NodeSet::from_iter([9, 4, 7]).first_node(), Some(4));
        assert_eq!(NodeSet::EMPTY.first_node(), None);
        assert_eq!(NodeSet::from_iter([9, 4, 7]).last_node(), Some(9));
        assert_eq!(NodeSet::singleton(127).last_node(), Some(127));
        assert_eq!(NodeSet::EMPTY.last_node(), None);
    }

    #[test]
    fn subsets_enumeration() {
        let s = NodeSet::from_iter([0, 2, 5]);
        let subs = s.subsets_of_size(2);
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&NodeSet::from_iter([0, 2])));
        assert!(subs.contains(&NodeSet::from_iter([0, 5])));
        assert!(subs.contains(&NodeSet::from_iter([2, 5])));
        assert_eq!(s.subsets_of_size(0), vec![NodeSet::EMPTY]);
        assert!(s.subsets_of_size(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_large_index() {
        NodeSet::singleton(128);
    }
}
