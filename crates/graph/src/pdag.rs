//! Partially directed acyclic graphs (PDAGs / CPDAGs) and Meek-rule closure.

use crate::dag::Dag;
use crate::nodeset::NodeSet;

/// A partially directed graph: a mix of directed (`u → v`) and undirected
/// (`u — v`) edges over nodes `0..n`.
///
/// A **CPDAG** (completed PDAG) is the canonical representation of a Markov
/// equivalence class: directed edges are *compelled* (shared by every DAG in
/// the class), undirected edges are *reversible*. The PC algorithm produces
/// one of these, and Alg. 2 of the paper enumerates its consistent
/// extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pdag {
    n: usize,
    /// `directed[u]` = children of `u` via directed edges.
    directed: Vec<NodeSet>,
    /// `directed_rev[v]` = parents of `v` via directed edges.
    directed_rev: Vec<NodeSet>,
    /// `undirected[u]` = undirected neighbors of `u` (symmetric).
    undirected: Vec<NodeSet>,
}

impl Pdag {
    /// Creates an edgeless PDAG with `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= crate::MAX_NODES, "at most {} nodes supported", crate::MAX_NODES);
        Self {
            n,
            directed: vec![NodeSet::EMPTY; n],
            directed_rev: vec![NodeSet::EMPTY; n],
            undirected: vec![NodeSet::EMPTY; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge `u — v` (idempotent; replaces any directed
    /// edge between the pair).
    pub fn add_undirected(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self loops are not allowed");
        self.directed[u].remove(v);
        self.directed[v].remove(u);
        self.directed_rev[u].remove(v);
        self.directed_rev[v].remove(u);
        self.undirected[u].insert(v);
        self.undirected[v].insert(u);
    }

    /// Adds a directed edge `u → v` (idempotent; replaces any undirected edge
    /// between the pair).
    pub fn add_directed(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self loops are not allowed");
        self.undirected[u].remove(v);
        self.undirected[v].remove(u);
        self.directed[u].insert(v);
        self.directed_rev[v].insert(u);
    }

    /// Orients the existing edge between `u` and `v` as `u → v`.
    ///
    /// # Panics
    /// Panics if no edge exists between the pair.
    pub fn orient(&mut self, u: usize, v: usize) {
        assert!(
            self.has_undirected(u, v) || self.has_directed(u, v) || self.has_directed(v, u),
            "no edge between {u} and {v} to orient"
        );
        self.undirected[u].remove(v);
        self.undirected[v].remove(u);
        self.directed[v].remove(u);
        self.directed_rev[u].remove(v);
        self.directed[u].insert(v);
        self.directed_rev[v].insert(u);
    }

    /// Removes any edge between `u` and `v`.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        self.undirected[u].remove(v);
        self.undirected[v].remove(u);
        self.directed[u].remove(v);
        self.directed_rev[v].remove(u);
        self.directed[v].remove(u);
        self.directed_rev[u].remove(v);
    }

    /// `true` when the directed edge `u → v` exists.
    pub fn has_directed(&self, u: usize, v: usize) -> bool {
        self.directed[u].contains(v)
    }

    /// `true` when the undirected edge `u — v` exists.
    pub fn has_undirected(&self, u: usize, v: usize) -> bool {
        self.undirected[u].contains(v)
    }

    /// `true` when any edge connects `u` and `v`.
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        self.has_undirected(u, v) || self.has_directed(u, v) || self.has_directed(v, u)
    }

    /// All nodes adjacent to `v` by any edge type.
    pub fn neighbors(&self, v: usize) -> NodeSet {
        self.undirected[v].union(self.directed[v]).union(self.directed_rev[v])
    }

    /// Undirected neighbors of `v`.
    pub fn undirected_neighbors(&self, v: usize) -> NodeSet {
        self.undirected[v]
    }

    /// Directed parents of `v`.
    pub fn parents(&self, v: usize) -> NodeSet {
        self.directed_rev[v]
    }

    /// Directed children of `u`.
    pub fn children(&self, u: usize) -> NodeSet {
        self.directed[u]
    }

    /// Count of directed edges.
    pub fn num_directed_edges(&self) -> usize {
        self.directed.iter().map(|s| s.len()).sum()
    }

    /// Count of undirected edges.
    pub fn num_undirected_edges(&self) -> usize {
        self.undirected.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Directed edges as `(from, to)` pairs.
    pub fn directed_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in self.directed[u].iter() {
                out.push((u, v));
            }
        }
        out
    }

    /// Undirected edges as `(min, max)` pairs.
    pub fn undirected_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in self.undirected[u].iter() {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// The skeleton: every edge as an undirected `(min, max)` pair.
    pub fn skeleton_edges(&self) -> Vec<(usize, usize)> {
        let mut out = self.undirected_edges();
        for (u, v) in self.directed_edges() {
            out.push((u.min(v), u.max(v)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The v-structures among *directed* edges: `(a, c, b)` with `a → c ← b`,
    /// `a < b`, `a` and `b` nonadjacent.
    pub fn v_structures(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for c in 0..self.n {
            let pa: Vec<usize> = self.directed_rev[c].iter().collect();
            for (i, &a) in pa.iter().enumerate() {
                for &b in &pa[i + 1..] {
                    if !self.adjacent(a, b) {
                        out.push((a, c, b));
                    }
                }
            }
        }
        out
    }

    /// Applies Meek's orientation rules R1–R3 until fixpoint.
    ///
    /// * R1: `a → b`, `b — c`, `a` ∉ adj(`c`)  ⟹  `b → c`
    /// * R2: `a → b → c`, `a — c`              ⟹  `a → c`
    /// * R3: `a — b`, `a — c`, `a — d`, `c → b`, `d → b`, `c` ∉ adj(`d`) ⟹ `a → b`
    ///
    /// R1–R3 are complete for CPDAGs obtained from v-structure orientation
    /// (Meek 1995). During extension enumeration, where extra orientations
    /// act as background knowledge, completeness is restored by validating
    /// each fully oriented leaf (see [`crate::enumerate`]), so R4 is not
    /// needed for correctness anywhere in this workspace.
    ///
    /// Returns the number of edges oriented.
    pub fn meek_closure(&mut self) -> usize {
        let mut oriented = 0;
        loop {
            let mut changed = false;
            // R1
            for b in 0..self.n {
                for a in self.directed_rev[b].iter() {
                    for c in self.undirected[b].iter() {
                        if c != a && !self.adjacent(a, c) {
                            self.orient(b, c);
                            oriented += 1;
                            changed = true;
                        }
                    }
                }
            }
            // R2
            for a in 0..self.n {
                for c in self.undirected[a].iter() {
                    // is there b with a → b → c?
                    if !self.directed[a].intersection(self.directed_rev[c]).is_empty() {
                        self.orient(a, c);
                        oriented += 1;
                        changed = true;
                    }
                }
            }
            // R3
            for a in 0..self.n {
                let und: Vec<usize> = self.undirected[a].iter().collect();
                for &b in &und {
                    // find c, d ∈ und(a), both → b, c and d nonadjacent
                    let cands: Vec<usize> =
                        self.undirected[a].intersection(self.directed_rev[b]).iter().collect();
                    let mut fire = false;
                    'outer: for (i, &c) in cands.iter().enumerate() {
                        for &d in &cands[i + 1..] {
                            if !self.adjacent(c, d) {
                                fire = true;
                                break 'outer;
                            }
                        }
                    }
                    if fire {
                        self.orient(a, b);
                        oriented += 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                return oriented;
            }
        }
    }

    /// Converts to a [`Dag`] if **every** edge is directed; `None` otherwise
    /// or when the directed graph is cyclic.
    pub fn to_dag(&self) -> Option<Dag> {
        if self.num_undirected_edges() > 0 {
            return None;
        }
        let mut dag = Dag::new(self.n);
        for (u, v) in self.directed_edges() {
            dag.add_edge_unchecked(u, v);
        }
        dag.topological_order().map(|_| dag)
    }

    /// `true` when the directed subgraph contains a cycle.
    pub fn has_directed_cycle(&self) -> bool {
        let mut in_degree: Vec<usize> = (0..self.n).map(|v| self.directed_rev[v].len()).collect();
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| in_degree[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for v in self.directed[u].iter() {
                in_degree[v] -= 1;
                if in_degree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        seen != self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_bookkeeping() {
        let mut p = Pdag::new(4);
        p.add_undirected(0, 1);
        p.add_directed(1, 2);
        assert!(p.has_undirected(0, 1));
        assert!(p.has_undirected(1, 0));
        assert!(p.has_directed(1, 2));
        assert!(!p.has_directed(2, 1));
        assert!(p.adjacent(0, 1));
        assert_eq!(p.num_undirected_edges(), 1);
        assert_eq!(p.num_directed_edges(), 1);
        p.remove_edge(0, 1);
        assert!(!p.adjacent(0, 1));
    }

    #[test]
    fn orient_replaces_undirected() {
        let mut p = Pdag::new(2);
        p.add_undirected(0, 1);
        p.orient(0, 1);
        assert!(p.has_directed(0, 1));
        assert!(!p.has_undirected(0, 1));
        // Re-orienting the other way flips it.
        p.orient(1, 0);
        assert!(p.has_directed(1, 0));
        assert!(!p.has_directed(0, 1));
    }

    #[test]
    fn meek_r1_propagates_chain() {
        // 0 → 1 — 2, with 0,2 nonadjacent: R1 forces 1 → 2.
        let mut p = Pdag::new(3);
        p.add_directed(0, 1);
        p.add_undirected(1, 2);
        let oriented = p.meek_closure();
        assert_eq!(oriented, 1);
        assert!(p.has_directed(1, 2));
    }

    #[test]
    fn meek_r2_closes_triangle() {
        // 0 → 1 → 2 and 0 — 2: R2 forces 0 → 2.
        let mut p = Pdag::new(3);
        p.add_directed(0, 1);
        p.add_directed(1, 2);
        p.add_undirected(0, 2);
        p.meek_closure();
        assert!(p.has_directed(0, 2));
    }

    #[test]
    fn meek_r3_kite() {
        // a=0 undirected to b=1, c=2, d=3; c → b, d → b; c,d nonadjacent.
        let mut p = Pdag::new(4);
        p.add_undirected(0, 1);
        p.add_undirected(0, 2);
        p.add_undirected(0, 3);
        p.add_directed(2, 1);
        p.add_directed(3, 1);
        p.meek_closure();
        assert!(p.has_directed(0, 1));
    }

    #[test]
    fn shielded_collider_not_v_structure() {
        let mut p = Pdag::new(3);
        p.add_directed(0, 2);
        p.add_directed(1, 2);
        p.add_undirected(0, 1);
        assert!(p.v_structures().is_empty());
        p.remove_edge(0, 1);
        assert_eq!(p.v_structures(), vec![(0, 2, 1)]);
    }

    #[test]
    fn to_dag_requires_full_orientation() {
        let mut p = Pdag::new(3);
        p.add_directed(0, 1);
        p.add_undirected(1, 2);
        assert!(p.to_dag().is_none());
        p.orient(1, 2);
        let dag = p.to_dag().unwrap();
        assert!(dag.has_edge(0, 1) && dag.has_edge(1, 2));
    }

    #[test]
    fn cycle_detection() {
        let mut p = Pdag::new(3);
        p.add_directed(0, 1);
        p.add_directed(1, 2);
        assert!(!p.has_directed_cycle());
        p.add_directed(2, 0);
        assert!(p.has_directed_cycle());
        assert!(p.to_dag().is_none());
    }

    #[test]
    fn skeleton_merges_edge_kinds() {
        let mut p = Pdag::new(3);
        p.add_directed(2, 0);
        p.add_undirected(1, 2);
        assert_eq!(p.skeleton_edges(), vec![(0, 2), (1, 2)]);
    }
}
