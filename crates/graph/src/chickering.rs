//! Chickering's compelled-edge labeling.
//!
//! An independent construction of a DAG's CPDAG (Chickering, *A
//! transformational characterization of equivalent Bayesian network
//! structures*, UAI 1995): label every edge *compelled* (directed the same
//! way in every member of the equivalence class) or *reversible*, by a
//! single pass over the edges in a canonical order. The pipeline uses
//! [`crate::dag::Dag::to_cpdag`] (v-structures + Meek closure); this module
//! exists as a correctness cross-check — the two constructions must agree on
//! every DAG, which the property suite asserts.

use crate::dag::Dag;
use crate::pdag::Pdag;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Label {
    Unknown,
    Compelled,
    Reversible,
}

/// Computes the CPDAG of `dag` via compelled-edge labeling.
pub fn cpdag_by_compelled_edges(dag: &Dag) -> Pdag {
    let order = edge_order(dag);
    let mut label: std::collections::HashMap<(usize, usize), Label> =
        order.iter().map(|&e| (e, Label::Unknown)).collect();

    for &(x, y) in &order {
        if label[&(x, y)] != Label::Unknown {
            continue;
        }
        let mut knocked_out = false;
        // For every w → x compelled:
        let compelled_into_x: Vec<usize> = dag
            .parents(x)
            .iter()
            .filter(|&w| label.get(&(w, x)) == Some(&Label::Compelled))
            .collect();
        for w in compelled_into_x {
            if !dag.has_edge(w, y) {
                // w is not a parent of y: x → y and every edge into y become
                // compelled.
                for p in dag.parents(y).iter() {
                    label.insert((p, y), Label::Compelled);
                }
                knocked_out = true;
                break;
            } else {
                label.insert((w, y), Label::Compelled);
            }
        }
        if knocked_out {
            continue;
        }
        // If some z → y with z ∉ {x} ∪ parents(x): compelled; else reversible.
        let external = dag.parents(y).iter().any(|z| z != x && !dag.has_edge(z, x));
        let verdict = if external { Label::Compelled } else { Label::Reversible };
        for p in dag.parents(y).iter() {
            if label[&(p, y)] == Label::Unknown {
                label.insert((p, y), verdict);
            }
        }
    }

    let mut pdag = Pdag::new(dag.num_nodes());
    for ((u, v), l) in label {
        match l {
            Label::Compelled => pdag.add_directed(u, v),
            Label::Reversible | Label::Unknown => pdag.add_undirected(u, v),
        }
    }
    pdag
}

/// Chickering's canonical edge order: edges `(x, y)` sorted by `y`'s
/// topological position ascending, then `x`'s position descending.
fn edge_order(dag: &Dag) -> Vec<(usize, usize)> {
    let topo = dag.topological_order().expect("input is a DAG");
    let mut pos = vec![0usize; dag.num_nodes()];
    for (i, &v) in topo.iter().enumerate() {
        pos[v] = i;
    }
    let mut edges = dag.edges();
    edges.sort_by(|&(x1, y1), &(x2, y2)| pos[y1].cmp(&pos[y2]).then(pos[x2].cmp(&pos[x1])));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(dag: &Dag) {
        assert_eq!(
            cpdag_by_compelled_edges(dag),
            dag.to_cpdag(),
            "constructions disagree on {:?}",
            dag.edges()
        );
    }

    #[test]
    fn agrees_on_canonical_shapes() {
        check(&Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap()); // chain
        check(&Dag::from_edges(3, &[(0, 2), (1, 2)]).unwrap()); // collider
        check(&Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap()); // fork
        check(&Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()); // triangle
        check(&Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()); // diamond
        check(&Dag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap()); // cancer
        check(&Dag::new(4)); // edgeless
    }

    #[test]
    fn agrees_on_exhaustive_small_dags() {
        // All DAGs on 4 nodes with edges oriented low → high (every DAG is
        // isomorphic to one of these up to relabeling, and both algorithms
        // are label-agnostic in the same way).
        let all_edges: Vec<(usize, usize)> =
            (0..4).flat_map(|u| ((u + 1)..4).map(move |v| (u, v))).collect();
        for mask in 0u32..(1 << all_edges.len()) {
            let edges: Vec<(usize, usize)> = all_edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            check(&Dag::from_edges(4, &edges).unwrap());
        }
    }

    #[test]
    fn compelled_set_matches_mec_semantics() {
        // An edge is reversible iff *some* member of the MEC orients it the
        // other way (possibly together with other reorientations — a single
        // flip is not always enough). Verify the labeling against the
        // enumerated equivalence class.
        use crate::enumerate::enumerate_extensions;
        use guardrail_governor::Budget;
        for edges in [
            vec![(0usize, 1usize), (1, 2), (1, 3), (2, 3)],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(0, 2), (1, 2), (2, 3)],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        ] {
            let dag = Dag::from_edges(4, &edges).unwrap();
            let cpdag = cpdag_by_compelled_edges(&dag);
            let (members, status) = enumerate_extensions(&dag.to_cpdag(), &Budget::unlimited());
            assert!(status.is_complete());
            for (u, v) in dag.edges() {
                let some_member_reverses = members.iter().any(|m| m.has_edge(v, u));
                assert_eq!(
                    cpdag.has_undirected(u, v),
                    some_member_reverses,
                    "edge ({u},{v}) labeling disagrees with MEC membership on {edges:?}"
                );
            }
        }
    }
}
