//! DSL errors.

use std::fmt;

/// Errors from parsing, validating, or compiling DSL programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// Lexical or syntactic error with position information.
    Parse {
        /// Byte offset in the source.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// A branch assigns an attribute different from its statement's ON
    /// attribute.
    BranchTargetMismatch {
        /// The statement's ON attribute.
        expected: String,
        /// The branch's assignment target.
        actual: String,
    },
    /// A statement has an empty GIVEN clause or no branches.
    MalformedStatement(String),
    /// An attribute referenced by the program is missing from the schema it
    /// is compiled against.
    UnknownAttribute(String),
    /// The dependent attribute also appears in the GIVEN clause.
    SelfDependence(String),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DslError::BranchTargetMismatch { expected, actual } => write!(
                f,
                "branch assigns {actual:?} but the statement's ON clause names {expected:?}"
            ),
            DslError::MalformedStatement(msg) => write!(f, "malformed statement: {msg}"),
            DslError::UnknownAttribute(a) => write!(f, "attribute {a:?} not in schema"),
            DslError::SelfDependence(a) => {
                write!(f, "attribute {a:?} cannot appear in both GIVEN and ON")
            }
        }
    }
}

impl std::error::Error for DslError {}
