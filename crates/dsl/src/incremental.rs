//! Incremental detection over an append-only [`TableSource`].
//!
//! A full `check_table` pass re-scans every row even when only a small
//! batch was appended — the dominant serving pattern once tables live in a
//! persistent store. [`IncrementalDetector`] exploits the append-only
//! contract of [`TableSource`]: a row's violation status depends only on
//! its own cells, so rows scanned earlier can never change and the detector
//! probes **only the appended rows** against each statement's decision
//! table, merging their violations into a cumulative report that stays
//! bit-identical to a from-scratch `check_table` over the whole relation.
//!
//! Alongside the cumulative report the detector maintains a **secondary
//! index** per vectorized statement: packed mixed-radix determinant key →
//! posting list of rows. Keys come from the same
//! [`fold_mixed_radix`](guardrail_stats::suffstats::fold_mixed_radix) fold
//! (same column order, same NULL/alien digit map) the scan itself uses, so
//! an index probe agrees with the engine bit-for-bit. The index answers
//! "which earlier rows share a determinant key with this batch"
//! ([`IncrementalDetector::affected_rows`]) — the seed of drift monitoring
//! and targeted re-rectification — without touching unaffected rows.
//!
//! # Recompilation rule
//!
//! A program is compiled against a table's dictionaries; appended batches
//! can mint codes that did not exist at compile time. Unknown codes are
//! handled by the engine's reserved *alien* digit and match no branch — the
//! same outcome a fresh compile would produce — with exactly one exception:
//! a branch literal that was **absent** from its column's dictionary at
//! compile time (so its condition could match no row, or its assignment
//! could equal no cell) may become interned by an appended batch. The
//! detector tracks those unresolved literals; when an append resolves one,
//! it transparently recompiles and rescans from row zero (counted in
//! [`IncrementalScan::recompiled`]). Every other append takes the O(batch)
//! path.
//!
//! # Work accounting
//!
//! Governed scans charge the budget with **probed rows** — appended rows ×
//! statements — not the full table size. A 10k-row batch probed against a
//! 1M-row table costs 10k·S work units, which is what `--report` should
//! show for honest incremental accounting.

use crate::ast::Program;
use crate::error::DslError;
use crate::interp::{CompiledProgram, Violation, ROW_CHUNK};
use guardrail_governor::{Budget, Exhausted};
use guardrail_obs as obs;
use guardrail_table::{Table, TableSource, Value};
use std::collections::HashMap;
use std::ops::Range;

/// Outcome of one incremental pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IncrementalScan {
    /// Rows scanned by this pass (the appended tail, or the whole table
    /// after a recompile).
    pub rows_scanned: usize,
    /// Violations this pass added to the cumulative report.
    pub new_violations: usize,
    /// Work units charged: probed rows × statements.
    pub rows_probed: u64,
    /// Whether an appended batch interned a previously unresolved program
    /// literal, forcing a recompile + full rescan.
    pub recompiled: bool,
}

/// Cumulative, index-backed detection state over an append-only source.
#[derive(Debug)]
pub struct IncrementalDetector {
    program: Program,
    compiled: CompiledProgram,
    /// `(column, literal)` pairs that did not resolve to a dictionary code
    /// at compile time; any of them resolving forces a recompile.
    unresolved: Vec<(usize, Value)>,
    /// Per-statement determinant index (`None` for legacy statements,
    /// whose key space the engine could not enumerate).
    index: Vec<Option<HashMap<u64, Vec<u32>>>>,
    /// Cumulative violations in `(row, statement, branch)` order.
    violations: Vec<Violation>,
    rows_seen: usize,
    rows_probed: u64,
    key_buf: Vec<u64>,
}

impl IncrementalDetector {
    /// Compiles `program` against the source's current dictionaries and
    /// scans all existing rows (the one unavoidable full pass). Subsequent
    /// [`detect_appended`](Self::detect_appended) calls are O(batch).
    pub fn new<S: TableSource + ?Sized>(program: &Program, source: &S) -> Result<Self, DslError> {
        let mut detector = IncrementalDetector {
            program: program.clone(),
            compiled: CompiledProgram::compile(program, source.as_table())?,
            unresolved: Vec::new(),
            index: Vec::new(),
            violations: Vec::new(),
            rows_seen: 0,
            rows_probed: 0,
            key_buf: Vec::new(),
        };
        detector.reset_compiled_state();
        detector.scan_tail(source.as_table(), 0..source.num_rows());
        detector.rows_seen = source.num_rows();
        Ok(detector)
    }

    /// Probes the rows appended since the last pass against every
    /// statement, charging `budget` with the probed-row work **before**
    /// scanning (an exhausted budget leaves the detector unchanged and
    /// retryable). Returns what the pass did.
    pub fn detect_appended<S: TableSource + ?Sized>(
        &mut self,
        source: &S,
        budget: &Budget,
    ) -> Result<IncrementalScan, Exhausted> {
        let table = source.as_table();
        assert!(
            table.num_rows() >= self.rows_seen,
            "TableSource is append-only: rows cannot disappear ({} < {})",
            table.num_rows(),
            self.rows_seen
        );
        let mut span = obs::span("detect_incremental");
        let recompiled = self.maybe_recompile(table);
        let range = self.rows_seen..table.num_rows();
        let probes = (range.len() as u64) * self.compiled.statement_count() as u64;
        span.arg("rows", range.len() as u64);
        span.arg("rows_probed", probes);
        // Honest governed accounting: charge what this pass probes (batch
        // rows × statements), never the table size.
        budget.charge(probes)?;
        let before = self.violations.len();
        self.scan_tail(table, range.clone());
        self.rows_seen = table.num_rows();
        self.rows_probed += probes;
        span.arg("violations", (self.violations.len() - before) as u64);
        Ok(IncrementalScan {
            rows_scanned: range.len(),
            new_violations: self.violations.len() - before,
            rows_probed: probes,
            recompiled,
        })
    }

    /// Cumulative violations over every row seen so far — bit-identical to
    /// `compiled().check_table(source.as_table())`.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations whose row falls in `range` (e.g. one appended batch).
    pub fn violations_in(&self, range: Range<usize>) -> &[Violation] {
        let start = self.violations.partition_point(|v| v.row < range.start);
        let end = self.violations.partition_point(|v| v.row < range.end);
        &self.violations[start..end]
    }

    /// Rows processed so far.
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Total probed-row work units charged across all passes.
    pub fn rows_probed(&self) -> u64 {
        self.rows_probed
    }

    /// The currently compiled program (recompiles swap this atomically).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Earlier rows (strictly before `batch.start`) whose determinant key
    /// for some indexed statement also occurs inside `batch` — the rows an
    /// operator would re-examine when a batch shifts a stratum. Sorted and
    /// deduplicated. Rows of legacy (unindexed) statements are never
    /// reported.
    pub fn affected_rows<S: TableSource + ?Sized>(
        &mut self,
        source: &S,
        batch: Range<usize>,
    ) -> Vec<usize> {
        let table = source.as_table();
        let mut out = Vec::new();
        let mut keys = std::mem::take(&mut self.key_buf);
        for (engine, index) in self.compiled.engines().iter().zip(&self.index) {
            let Some(index) = index else { continue };
            engine.pack_range(table, batch.clone(), &mut keys);
            for &key in keys.iter() {
                if let Some(rows) = index.get(&key) {
                    out.extend(rows.iter().map(|&r| r as usize).take_while(|&r| r < batch.start));
                }
            }
        }
        self.key_buf = keys;
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebuilds compile-dependent state (unresolved literals, empty index
    /// slots) after a (re)compile.
    fn reset_compiled_state(&mut self) {
        self.unresolved.clear();
        for (stmt, compiled) in self.program.statements.iter().zip(self.compiled.statements()) {
            for (branch, cb) in stmt.branches.iter().zip(compiled.branches()) {
                for ((_, lit), &(col, code)) in
                    branch.condition.conjuncts().iter().zip(cb.conjuncts())
                {
                    if code.is_none() {
                        self.unresolved.push((col, lit.clone()));
                    }
                }
                if cb.literal_code.is_none() {
                    self.unresolved.push((compiled.on_col, branch.literal.clone()));
                }
            }
        }
        self.index = self
            .compiled
            .engines()
            .iter()
            .map(|e| if e.is_legacy() { None } else { Some(HashMap::new()) })
            .collect();
        self.violations.clear();
        self.rows_seen = 0;
    }

    /// Recompiles when an appended batch interned a previously unresolved
    /// literal; returns whether it did.
    fn maybe_recompile(&mut self, table: &Table) -> bool {
        let stale = self.unresolved.iter().any(|(col, lit)| {
            table.column(*col).is_some_and(|c| c.dictionary().lookup(lit).is_some())
        });
        if !stale {
            return false;
        }
        self.compiled = CompiledProgram::compile(&self.program, table)
            .expect("program compiled before against the same schema");
        self.reset_compiled_state();
        true
    }

    /// Scans `range`, appending violations (row-major, preserving global
    /// `(row, statement, branch)` order) and inserting the range's rows
    /// into the determinant index.
    fn scan_tail(&mut self, table: &Table, range: Range<usize>) {
        let mut keys = std::mem::take(&mut self.key_buf);
        let mut raw = Vec::new();
        let mut start = range.start;
        while start < range.end {
            let end = (start + ROW_CHUNK).min(range.end);
            raw.clear();
            self.compiled.check_chunk_raw(table, start..end, &mut keys, &mut raw);
            self.violations.extend(raw.iter().map(|r| self.compiled.raw_to_violation(table, r)));
            start = end;
        }
        // Index the whole range per statement (independent of chunking).
        for (engine, index) in self.compiled.engines().iter().zip(self.index.iter_mut()) {
            let Some(index) = index else { continue };
            engine.pack_range(table, range.clone(), &mut keys);
            for (i, &key) in keys.iter().enumerate() {
                index.entry(key).or_default().push((range.start + i) as u32);
            }
        }
        self.key_buf = keys;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn budget() -> Budget {
        Budget::unlimited()
    }

    fn table(rows: &[(&str, &str)]) -> Table {
        let mut csv = String::from("zip,city\n");
        for (z, c) in rows {
            csv.push_str(&format!("{z},{c}\n"));
        }
        Table::from_csv_str(&csv).unwrap()
    }

    fn row(cells: &[&str]) -> Vec<Value> {
        cells.iter().map(|&c| Value::from(c)).collect()
    }

    const PROGRAM: &str = r#"GIVEN zip ON city HAVING
        IF zip = "west" THEN city <- "Berkeley";
        IF zip = "north" THEN city <- "Portland";"#;

    #[test]
    fn incremental_equals_full_check_table() {
        let program = parse_program(PROGRAM).unwrap();
        let mut t = table(&[("west", "Berkeley"), ("north", "Portland"), ("west", "Oops")]);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        assert_eq!(det.violations().len(), 1);

        // Append clean and dirty batches through the plain in-memory path.
        for batch in [
            vec![row(&["west", "Berkeley"])],
            vec![row(&["north", "Wrong"]), row(&["west", "Berkeley"])],
        ] {
            t.append_rows(&batch).unwrap();
            det.detect_appended(&t, &budget()).unwrap();
        }

        let full = CompiledProgram::compile(&program, &t).unwrap().check_table(&t);
        assert_eq!(det.violations(), full.as_slice(), "cumulative report equals full scan");
        assert_eq!(det.rows_seen(), 6);
    }

    #[test]
    fn appended_batch_probes_charge_batch_not_table() {
        let program = parse_program(PROGRAM).unwrap();
        // Base interns every program literal so the append cannot force a
        // recompile; the new row's "Nope" is merely an alien code.
        let mut base = vec![("west", "Berkeley"); 499];
        base.push(("north", "Portland"));
        let mut t = table(&base);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        t.append_rows(&[row(&["north", "Nope"])]).unwrap();
        let scan = det.detect_appended(&t, &budget()).unwrap();
        assert_eq!(scan.rows_scanned, 1);
        assert_eq!(scan.rows_probed, 1, "1 appended row × 1 statement, not 501 table rows");
        assert_eq!(scan.new_violations, 1);
        assert!(!scan.recompiled);
    }

    #[test]
    fn exhausted_budget_leaves_detector_retryable() {
        let program = parse_program(PROGRAM).unwrap();
        let mut t = table(&[("west", "Berkeley")]);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        let batch: Vec<_> = (0..8).map(|_| row(&["west", "Wrong"])).collect();
        t.append_rows(&batch).unwrap();
        let tiny = Budget::with_work_cap(4);
        assert!(det.detect_appended(&t, &tiny).is_err(), "8 probes exceed a 4-unit cap");
        assert_eq!(det.rows_seen(), 1, "failed pass left state unchanged");
        let scan = det.detect_appended(&t, &budget()).unwrap();
        assert_eq!(scan.new_violations, 8, "retry with headroom completes");
    }

    #[test]
    fn newly_interned_literal_forces_recompile_and_stays_exact() {
        // "Emeryville" is assigned by the program but absent from the base
        // table: its literal cannot bind at compile time.
        let program =
            parse_program(r#"GIVEN zip ON city HAVING IF zip = "east" THEN city <- "Emeryville";"#)
                .unwrap();
        let mut t = table(&[("east", "Oakland")]);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        assert_eq!(det.violations().len(), 1, "unbound literal: every matching row violates");

        // The appended batch interns "Emeryville" — without a recompile the
        // old engine would keep flagging rows that are now clean.
        t.append_rows(&[row(&["east", "Emeryville"])]).unwrap();
        let scan = det.detect_appended(&t, &budget()).unwrap();
        assert!(scan.recompiled);
        let full = CompiledProgram::compile(&program, &t).unwrap().check_table(&t);
        assert_eq!(det.violations(), full.as_slice());
    }

    #[test]
    fn alien_codes_do_not_force_recompile() {
        let program = parse_program(PROGRAM).unwrap();
        let mut t = table(&[("west", "Berkeley")]);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        // Brand-new zip and city values (alien codes), but no program
        // literal becomes resolvable: the O(batch) path must suffice.
        t.append_rows(&[row(&["south", "New York"])]).unwrap();
        let scan = det.detect_appended(&t, &budget()).unwrap();
        assert!(!scan.recompiled);
        let full = CompiledProgram::compile(&program, &t).unwrap().check_table(&t);
        assert_eq!(det.violations(), full.as_slice());
    }

    #[test]
    fn affected_rows_probes_only_shared_keys() {
        let program = parse_program(PROGRAM).unwrap();
        let mut t = table(&[("west", "Berkeley"), ("north", "Portland"), ("faraway", "Elsewhere")]);
        let mut det = IncrementalDetector::new(&program, &t).unwrap();
        // Batch repeats zip west only.
        t.append_rows(&[row(&["west", "Berkeley"])]).unwrap();
        det.detect_appended(&t, &budget()).unwrap();
        assert_eq!(det.affected_rows(&t, 3..4), vec![0], "only row 0 shares the batch's key");
        assert_eq!(det.affected_rows(&t, 0..0), Vec::<usize>::new());
    }

    #[test]
    fn violations_in_slices_by_row_range() {
        let program = parse_program(PROGRAM).unwrap();
        let t = table(&[("west", "Oops"), ("north", "Portland"), ("north", "Nope")]);
        let det = IncrementalDetector::new(&program, &t).unwrap();
        assert_eq!(det.violations().len(), 2);
        assert_eq!(det.violations_in(0..1).len(), 1);
        assert_eq!(det.violations_in(1..3).len(), 1);
        assert_eq!(det.violations_in(1..2).len(), 0);
    }
}
