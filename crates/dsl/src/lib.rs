//! The Guardrail DSL (§2.2 of the paper).
//!
//! Integrity constraints are programs in a small language whose statements
//! model one step of the data-generating process each:
//!
//! ```text
//! p ∈ Prog      := s*
//! s ∈ Stmt      := GIVEN a+ ON a HAVING b+
//! b ∈ Branch    := IF c THEN a ← l
//! c ∈ Condition := a = l | c AND c
//! ```
//!
//! This crate provides the AST ([`ast`]), a concrete text syntax with parser
//! ([`parser`]) and pretty-printer (the `Display` impls), the denotational
//! interpreter over rows ([`interp`]), and the quantitative semantics the
//! synthesizer optimizes: branch-level 0/1 loss (Eqn. 2), ε-validity
//! (Eqn. 3–4), and coverage (Eqn. 5–6) in [`semantics`].
//!
//! # Example
//!
//! ```
//! use guardrail_dsl::parse_program;
//! use guardrail_table::Table;
//!
//! let program = parse_program(
//!     r#"GIVEN rel ON marital HAVING
//!            IF rel = "Husband" THEN marital <- "Married";
//!            IF rel = "Wife" THEN marital <- "Married";"#,
//! ).unwrap();
//! let data = Table::from_csv_str("rel,marital\nHusband,Married\nWife,Single\n").unwrap();
//! let compiled = program.compile_for(&data).unwrap();
//! let violations = compiled.check_table(&data);
//! assert_eq!(violations.len(), 1); // the Wife/Single row
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod interp;
pub mod parser;
pub mod semantics;

pub use ast::{Branch, Condition, Program, Statement};
pub use engine::{DetectScratch, RawViolation};
pub use error::DslError;
pub use incremental::{IncrementalDetector, IncrementalScan};
pub use interp::{CompiledProgram, Violation};
pub use parser::parse_program;
pub use semantics::{branch_loss, coverage, epsilon_valid, program_coverage, statement_coverage};
