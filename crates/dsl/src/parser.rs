//! Recursive-descent parser for the DSL's concrete syntax.
//!
//! ```text
//! program    := statement*
//! statement  := GIVEN ident ("," ident)* ON ident HAVING branch+
//! branch     := IF condition THEN ident "<-" literal ";"
//! condition  := equality (AND equality)*
//! equality   := ident "=" literal
//! ident      := [A-Za-z][A-Za-z0-9_-]* | "`" any* "`"
//! literal    := string | number | true | false | NULL
//! ```
//!
//! Keywords are case-insensitive; `←` is accepted as a synonym for `<-`.

use crate::ast::{is_keyword, Branch, Condition, Program, Statement};
use crate::error::DslError;
use guardrail_table::Value;

/// Parses a full program and validates its structure.
pub fn parse_program(input: &str) -> Result<Program, DslError> {
    let mut parser = Parser { input: input.as_bytes(), pos: 0, text: input };
    let mut statements = Vec::new();
    parser.skip_ws();
    while !parser.at_end() {
        statements.push(parser.statement()?);
        parser.skip_ws();
    }
    let program = Program { statements };
    program.validate()?;
    Ok(program)
}

struct Parser<'a> {
    input: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Parse { position: self.pos, message: message.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'#' => {
                    // comment to end of line
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Reads a bare word (letters, digits, `_`, `-`).
    fn word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() => {}
            _ => return None,
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Some(&self.text[start..self.pos])
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DslError> {
        let save = self.pos;
        match self.word() {
            Some(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            Some(w) => {
                self.pos = save;
                Err(self.err(format!("expected keyword {kw}, found {w:?}")))
            }
            None => {
                self.pos = save;
                Err(self.err(format!("expected keyword {kw}")))
            }
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let found = matches!(self.word(), Some(w) if w.eq_ignore_ascii_case(kw));
        self.pos = save;
        found
    }

    fn ident(&mut self) -> Result<String, DslError> {
        self.skip_ws();
        if self.peek() == Some(b'`') {
            // Backquoted identifier; `` escapes a literal backquote.
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated backquoted identifier")),
                    Some(b'`') => {
                        self.pos += 1;
                        if self.peek() == Some(b'`') {
                            out.push('`');
                            self.pos += 1;
                        } else {
                            return Ok(out);
                        }
                    }
                    Some(c) => {
                        out.push(c as char);
                        self.pos += 1;
                    }
                }
            }
        }
        match self.word() {
            Some(w) if !is_keyword(w) => Ok(w.to_string()),
            Some(w) => Err(self.err(format!("keyword {w:?} cannot be an identifier"))),
            None => Err(self.err("expected identifier")),
        }
    }

    fn literal(&mut self) -> Result<Value, DslError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek() {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                other => return Err(self.err(format!("bad escape: {other:?}"))),
                            }
                            self.pos += 1;
                        }
                        Some(b'"') => {
                            self.pos += 1;
                            return Ok(Value::Str(out));
                        }
                        Some(c) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == b'.' || c == b'e' || c == b'E' || c == b'-' || c == b'+' {
                        // exponent sign only valid right after e/E, but we let
                        // the f64 parser decide.
                        let prev = self.input[self.pos - 1];
                        if (c == b'-' || c == b'+') && !(prev == b'e' || prev == b'E') {
                            break;
                        }
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let tok = &self.text[start..self.pos];
                if !is_float {
                    if let Ok(i) = tok.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
                tok.parse::<f64>()
                    .map(Value::float)
                    .map_err(|_| self.err(format!("bad numeric literal {tok:?}")))
            }
            _ => {
                let save = self.pos;
                match self.word() {
                    Some(w) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
                    Some(w) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
                    Some(w) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
                    _ => {
                        self.pos = save;
                        Err(self.err("expected literal"))
                    }
                }
            }
        }
    }

    fn punct(&mut self, tok: &str) -> Result<(), DslError> {
        self.skip_ws();
        if self.text[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok:?}")))
        }
    }

    fn try_punct(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn statement(&mut self) -> Result<Statement, DslError> {
        self.keyword("GIVEN")?;
        let mut given = vec![self.ident()?];
        while self.try_punct(",") {
            given.push(self.ident()?);
        }
        self.keyword("ON")?;
        let on = self.ident()?;
        self.keyword("HAVING")?;
        let mut branches = Vec::new();
        while self.peek_keyword("IF") {
            branches.push(self.branch()?);
        }
        if branches.is_empty() {
            return Err(self.err("HAVING clause needs at least one IF branch"));
        }
        Ok(Statement { given, on, branches })
    }

    fn branch(&mut self) -> Result<Branch, DslError> {
        self.keyword("IF")?;
        let mut conjuncts = vec![self.equality()?];
        while self.peek_keyword("AND") {
            self.keyword("AND")?;
            conjuncts.push(self.equality()?);
        }
        self.keyword("THEN")?;
        let target = self.ident()?;
        self.skip_ws();
        if !self.try_punct("<-") && !self.try_punct("\u{2190}") {
            return Err(self.err("expected `<-` after assignment target"));
        }
        let literal = self.literal()?;
        self.punct(";")?;
        Ok(Branch { condition: Condition::new(conjuncts), target, literal })
    }

    fn equality(&mut self) -> Result<(String, Value), DslError> {
        let attr = self.ident()?;
        self.punct("=")?;
        let lit = self.literal()?;
        Ok((attr, lit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // The constraint from the paper's case study (Eqn. 9).
        let src = r#"
            GIVEN rel ON marital-status HAVING
                IF rel = "Husband" THEN marital-status <- "Married-civ-spouse";
                IF rel = "Wife" THEN marital-status <- "Married-civ-spouse";
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 1);
        let s = &p.statements[0];
        assert_eq!(s.given, vec!["rel"]);
        assert_eq!(s.on, "marital-status");
        assert_eq!(s.branches.len(), 2);
        assert_eq!(s.branches[0].literal, Value::from("Married-civ-spouse"));
    }

    #[test]
    fn parses_multi_statement_multi_conjunct() {
        let src = r#"
            GIVEN zip ON city HAVING
                IF zip = 94704 THEN city <- "Berkeley";
            GIVEN city, state ON country HAVING
                IF city = "Berkeley" AND state = "CA" THEN country <- "USA";
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.statements[1].given, vec!["city", "state"]);
        assert_eq!(p.statements[1].branches[0].condition.conjuncts().len(), 2);
    }

    #[test]
    fn roundtrip_print_parse() {
        let src = r#"
            GIVEN a ON b HAVING
                IF a = 1 THEN b <- 2.5;
                IF a = 2 THEN b <- true;
                IF a = 3 THEN b <- NULL;
            GIVEN b ON c HAVING
                IF b = "x y" THEN c <- "quote\"inside";
        "#;
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let again = parse_program(&printed).unwrap();
        assert_eq!(p, again, "print→parse must round-trip\n{printed}");
    }

    #[test]
    fn unicode_arrow_accepted() {
        let p = parse_program("GIVEN a ON b HAVING IF a = 1 THEN b \u{2190} 2;").unwrap();
        assert_eq!(p.statements[0].branches[0].literal, Value::Int(2));
    }

    #[test]
    fn comments_and_case_insensitive_keywords() {
        let src = "# leading comment\ngiven a on b having # trailing\nif a = 1 then b <- 2;";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn backquoted_identifiers() {
        let p =
            parse_program("GIVEN `odd name` ON `x``y` HAVING IF `odd name` = 1 THEN `x``y` <- 2;")
                .unwrap();
        assert_eq!(p.statements[0].given, vec!["odd name"]);
        assert_eq!(p.statements[0].on, "x`y");
    }

    #[test]
    fn negative_and_float_literals() {
        let p = parse_program("GIVEN a ON b HAVING IF a = -5 THEN b <- 1e3;").unwrap();
        assert_eq!(p.statements[0].branches[0].condition.conjuncts()[0].1, Value::Int(-5));
        assert_eq!(p.statements[0].branches[0].literal, Value::Float(1000.0));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_program("GIVEN a ON b HAVING IF a = 1 THEN b 2;").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }), "{err}");
        let err = parse_program("GIVEN a HAVING b;").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }));
        let err = parse_program("GIVEN a ON b HAVING").unwrap_err();
        assert!(matches!(err, DslError::Parse { .. }));
    }

    #[test]
    fn validation_runs_after_parse() {
        // Branch target differs from ON attribute.
        let err = parse_program("GIVEN a ON b HAVING IF a = 1 THEN c <- 2;").unwrap_err();
        assert!(matches!(err, DslError::BranchTargetMismatch { .. }));
    }

    #[test]
    fn empty_program_parses() {
        assert_eq!(parse_program("").unwrap(), Program::empty());
        assert_eq!(parse_program("  # just a comment\n").unwrap(), Program::empty());
    }
}
