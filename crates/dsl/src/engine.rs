//! Vectorized decision-table engine: the detection/repair serving path.
//!
//! The legacy interpreter walks `O(rows × branches × conjuncts)` with a
//! `table.column(col)` resolution in the innermost loop; on synthesized
//! programs the branch count equals the observed determinant-group count,
//! so large tables pay `O(rows × groups)`. This module compiles each
//! statement into a **decision table** once, at
//! [`CompiledProgram`](crate::CompiledProgram) build time, after which
//! every bulk scan is one branch-free column-at-a-time pass per statement:
//!
//! 1. **Key packing** — the statement's distinct determinant columns are
//!    folded into one mixed-radix `u64` key per row with
//!    [`guardrail_stats::suffstats::fold_mixed_radix`], the same primitive
//!    (and fold order) as the CI-test kernel's
//!    [`StratumPack`](guardrail_stats::suffstats::StratumPack). Each
//!    column's radix is `|dictionary| + 2`: one digit per compile-time
//!    code, one for `NULL`, and one *alien* digit absorbing codes minted
//!    after compilation (rectify writes, cross-table binding) — aliens
//!    equal no compile-time conjunct code, so they match no branch,
//!    exactly like the legacy integer compare.
//! 2. **Lookup** — the key indexes a dense `Vec<u64>` of entries (or a
//!    `HashMap` when the key domain outgrows the dense budget of
//!    [`choose_path`]); each entry packs `(outcome id << 32) | clean
//!    code`. A row is clean iff its dependent code equals the entry's low
//!    half, so the hot loop is one lookup and one compare per row, with
//!    uncovered keys rejected by the same compare (their clean half is a
//!    sentinel no real code equals).
//! 3. **Outcomes** — the rare slow path. An outcome records *which*
//!    branches cover a key (usually one; duplicated conditions merge into
//!    shared multi-branch outcomes), letting violation emission and the
//!    rectify cascade reproduce the legacy per-branch semantics bit for
//!    bit.
//!
//! Statements whose key domain overflows `u64`, or whose branches cover
//! more than [`ENUM_CAP`] keys (wildcard conjuncts over huge
//! dictionaries), keep a `Legacy` representation and fall back to the
//! hoisted-slice row scan — correctness never depends on the table being
//! buildable.

use crate::interp::CompiledStatement;
use guardrail_stats::suffstats::{choose_path, fold_mixed_radix, KernelPath};
use guardrail_table::{Code, Table, NULL_CODE};
use std::collections::HashMap;
use std::ops::Range;

/// Outcome-id sentinel: the key is covered by no branch.
const NO_MATCH: u32 = u32::MAX;

/// Clean-code sentinel that equals no dictionary code (codes are
/// `< NULL_CODE`, and `NULL_CODE` itself maps to its own digit), so
/// entries carrying it always take the slow path / never compare clean.
const NEVER_CODE: u32 = u32::MAX - 1;

/// Upper bound on covered-key enumeration work per statement. Branch
/// conditions pin their determinant columns, so a branch usually covers
/// `Π radices(unconstrained columns) = 1` key; the cap only trips when
/// branches leave high-cardinality determinants free.
const ENUM_CAP: u128 = 1 << 20;

/// A violation in pure index form, as emitted by the vectorized scan.
///
/// No name is interned and no [`guardrail_table::Value`] is decoded per
/// violation — [`CompiledProgram::check_table`](crate::CompiledProgram::check_table)
/// upgrades raw violations to [`Violation`] only at the API boundary, and
/// allocation-sensitive callers can stay raw via
/// [`check_table_raw_into`](crate::CompiledProgram::check_table_raw_into).
///
/// The derived ordering — row, then statement, then branch — is exactly
/// the legacy interpreter's emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawViolation {
    /// Row index in the scanned table.
    pub row: usize,
    /// Statement index within the program.
    pub statement: u32,
    /// Branch index within the statement.
    pub branch: u32,
}

/// Reusable scratch for the vectorized scans.
///
/// Buffers grow to the high-water mark of the chunks they serve and never
/// shrink, so a warmed scratch makes further detect passes over dense- or
/// hash-represented statements allocation-free (pinned by
/// `tests/alloc_free.rs`, extending the PR 3 counting-allocator
/// discipline).
#[derive(Debug, Default)]
pub struct DetectScratch {
    /// Packed determinant keys for the chunk being scanned.
    pub(crate) keys: Vec<u64>,
    /// Raw-violation staging area for paths that convert per chunk.
    pub(crate) raw: Vec<RawViolation>,
}

/// The set of branches covering one determinant key.
///
/// Most keys are covered by exactly one branch; branches with duplicated
/// conditions merge into shared multi-branch outcomes (branch ids
/// ascending, preserving legacy emission and cascade order).
#[derive(Debug, Clone)]
struct Outcome {
    /// Covering branch indices, ascending.
    branches: Vec<u32>,
    /// Dependent code that satisfies *every* covering branch, or
    /// [`NEVER_CODE`] when none exists (branches disagree, or a literal is
    /// not interned in the bound table).
    clean: u32,
}

/// Per-outcome rectify summary. The legacy cascade at a covered key —
/// `cur := original; for each covering branch: if cur ≠ code { cur :=
/// code; changed += 1 }` — always leaves `cur` equal to the branch's code
/// after each step, so it collapses to: `changed += base + (original ≠
/// first)`, final value `last`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RectEntry {
    /// First covering branch's (freshly interned) literal code.
    first: Code,
    /// Last covering branch's literal code — the value written.
    last: Code,
    /// Disagreements between consecutive covering branches' codes.
    base: usize,
}

/// How a statement's decision table is stored.
#[derive(Debug, Clone)]
enum Repr {
    /// Flat entry per key; the key domain fits the
    /// [`choose_path`] dense budget.
    Dense(Vec<u64>),
    /// Covered keys only; domain too large for a flat table but the
    /// covered set enumerates under [`ENUM_CAP`].
    Hash(HashMap<u64, u64>),
    /// No table: key domain overflows `u64` or covered-key enumeration is
    /// too large. Scans fall back to the hoisted-slice row walk.
    Legacy,
}

/// One statement's compiled decision table.
#[derive(Debug, Clone)]
pub(crate) struct StatementEngine {
    /// Distinct determinant columns, in first-use order across branches.
    det_cols: Vec<usize>,
    /// Compile-time dictionary size of each determinant column.
    cards: Vec<u32>,
    /// Per-column radix: `card + 2` (NULL digit + alien digit).
    radices: Vec<u64>,
    /// Key→entry mapping; entries pack `(outcome id << 32) | clean code`.
    repr: Repr,
    /// Outcome table; ids `0..branches.len()` are the per-branch singleton
    /// outcomes, higher ids are merged multi-branch outcomes.
    outcomes: Vec<Outcome>,
}

/// Packs `(outcome id, clean code)` into one table entry.
#[inline]
fn entry(oid: u32, clean: u32) -> u64 {
    (u64::from(oid) << 32) | u64::from(clean)
}

/// Maps a runtime code to its mixed-radix digit: `NULL` and alien codes
/// (minted after compilation) get the two reserved digits past the
/// compile-time dictionary.
#[inline]
fn digit_of(code: u32, card: u32) -> u64 {
    if code == NULL_CODE {
        u64::from(card)
    } else if code >= card {
        u64::from(card) + 1
    } else {
        u64::from(code)
    }
}

impl StatementEngine {
    /// Builds the decision table for `stmt` against the dictionaries of
    /// `table`. Never fails: shapes the table cannot represent keep the
    /// `Legacy` representation.
    pub(crate) fn build(stmt: &CompiledStatement, table: &Table) -> Self {
        let branches = stmt.branches();
        let mut det_cols: Vec<usize> = Vec::new();
        for b in branches {
            for &(col, _) in b.conjuncts() {
                if !det_cols.contains(&col) {
                    det_cols.push(col);
                }
            }
        }
        let cards: Vec<u32> = det_cols
            .iter()
            .map(|&c| table.column(c).expect("bound column").dictionary().len() as u32)
            .collect();
        let radices: Vec<u64> = cards.iter().map(|&c| u64::from(c) + 2).collect();
        let mut outcomes: Vec<Outcome> = branches
            .iter()
            .enumerate()
            .map(|(bi, b)| Outcome {
                branches: vec![bi as u32],
                clean: b.literal_code.unwrap_or(NEVER_CODE),
            })
            .collect();
        let legacy = Self {
            det_cols: det_cols.clone(),
            cards: cards.clone(),
            radices: radices.clone(),
            repr: Repr::Legacy,
            outcomes: outcomes.clone(),
        };
        if det_cols.is_empty() {
            return legacy;
        }
        // A dictionary would need u32::MAX entries to mint NEVER_CODE as a
        // real code; unreachable, but cheap to refuse outright.
        if branches.iter().any(|b| b.literal_code == Some(NEVER_CODE)) {
            return legacy;
        }
        let Some(domain) = radices.iter().try_fold(1u64, |d, &r| d.checked_mul(r)) else {
            return legacy;
        };

        // Per-branch constraint digits over det_cols: Some(d) pins the
        // column, None leaves it free (the branch covers every digit,
        // including NULL and alien). A branch with an un-interned conjunct
        // literal, or one pinning a column to two different codes, matches
        // no row and covers no keys.
        let mut branch_digits: Vec<Option<Vec<Option<u64>>>> = Vec::with_capacity(branches.len());
        let mut covered: u128 = 0;
        for b in branches {
            let mut digits: Vec<Option<u64>> = vec![None; det_cols.len()];
            let mut satisfiable = true;
            for &(col, code) in b.conjuncts() {
                let ci = det_cols.iter().position(|&c| c == col).expect("registered column");
                match code {
                    None => {
                        satisfiable = false;
                        break;
                    }
                    Some(c) => {
                        let d = digit_of(c, cards[ci]);
                        if digits[ci].is_some_and(|prev| prev != d) {
                            satisfiable = false;
                            break;
                        }
                        digits[ci] = Some(d);
                    }
                }
            }
            if satisfiable {
                covered += digits
                    .iter()
                    .zip(&radices)
                    .map(|(d, &r)| if d.is_some() { 1u128 } else { u128::from(r) })
                    .product::<u128>();
                branch_digits.push(Some(digits));
            } else {
                branch_digits.push(None);
            }
        }
        if covered > ENUM_CAP {
            return legacy;
        }

        // Positional weights: keys fold most-significant-column-first, so
        // weight_i = Π radices[i+1..].
        let mut weights = vec![1u64; radices.len()];
        for i in (0..radices.len().saturating_sub(1)).rev() {
            weights[i] = weights[i + 1] * radices[i + 1];
        }

        let dense = matches!(choose_path(table.num_rows(), 1, 1, domain), KernelPath::Dense);
        let mut dense_entries =
            if dense { vec![entry(NO_MATCH, NEVER_CODE); domain as usize] } else { Vec::new() };
        let mut hash_entries: HashMap<u64, u64> = HashMap::new();
        // Multi-branch outcome interning: covering branch list → outcome id.
        let mut multi: HashMap<Vec<u32>, u32> = HashMap::new();

        for (bi, digits) in branch_digits.iter().enumerate() {
            let Some(digits) = digits else { continue };
            let free: Vec<usize> = (0..digits.len()).filter(|&i| digits[i].is_none()).collect();
            let base: u64 = digits.iter().zip(&weights).map(|(d, &w)| d.unwrap_or(0) * w).sum();
            let mut counters = vec![0u64; free.len()];
            loop {
                let key =
                    base + free.iter().zip(&counters).map(|(&ci, &d)| d * weights[ci]).sum::<u64>();
                let slot = if dense {
                    &mut dense_entries[key as usize]
                } else {
                    hash_entries.entry(key).or_insert_with(|| entry(NO_MATCH, NEVER_CODE))
                };
                let oid = (*slot >> 32) as u32;
                let new_oid = if oid == NO_MATCH {
                    bi as u32
                } else {
                    merge_outcome(&mut outcomes, &mut multi, oid, bi as u32)
                };
                *slot = entry(new_oid, outcomes[new_oid as usize].clean);

                // Mixed-radix odometer over the free columns.
                let mut done = true;
                for i in (0..free.len()).rev() {
                    counters[i] += 1;
                    if counters[i] < radices[free[i]] {
                        done = false;
                        break;
                    }
                    counters[i] = 0;
                }
                if done {
                    break;
                }
            }
        }

        Self {
            det_cols,
            cards,
            radices,
            repr: if dense { Repr::Dense(dense_entries) } else { Repr::Hash(hash_entries) },
            outcomes,
        }
    }

    /// `true` when bulk scans must use the legacy row walk.
    pub(crate) fn is_legacy(&self) -> bool {
        matches!(self.repr, Repr::Legacy)
    }

    /// Folds the chunk's determinant codes into `keys` (one per row of
    /// `range`), reusing the caller's buffer. Also the key source for the
    /// incremental detector's determinant index, which must agree with the
    /// scan's fold order and digit map bit-for-bit.
    pub(crate) fn pack_range(&self, table: &Table, range: Range<usize>, keys: &mut Vec<u64>) {
        keys.clear();
        keys.resize(range.len(), 0);
        for ((&col, &card), &radix) in self.det_cols.iter().zip(&self.cards).zip(&self.radices) {
            let codes = &table.column(col).expect("bound column").codes()[range.clone()];
            fold_mixed_radix(keys, codes, radix, |c| digit_of(c, card));
        }
    }

    /// Appends this statement's raw violations over `range` to `out`
    /// (row-major within the statement; callers interleave statements by
    /// sorting, which reproduces legacy emission order exactly).
    pub(crate) fn check_range(
        &self,
        stmt: &CompiledStatement,
        table: &Table,
        range: Range<usize>,
        keys: &mut Vec<u64>,
        out: &mut Vec<RawViolation>,
    ) {
        if self.is_legacy() {
            return self.check_range_legacy(stmt, table, range, out);
        }
        self.pack_range(table, range.clone(), keys);
        let dep = &table.column(stmt.on_col).expect("bound column").codes()[range.clone()];
        let statement = stmt.statement_index as u32;
        match &self.repr {
            Repr::Dense(entries) => {
                for (i, (&key, &actual)) in keys.iter().zip(dep).enumerate() {
                    let e = entries[key as usize];
                    if e as u32 == actual {
                        continue;
                    }
                    let oid = (e >> 32) as u32;
                    if oid == NO_MATCH {
                        continue;
                    }
                    self.emit(stmt, oid, actual, range.start + i, statement, out);
                }
            }
            Repr::Hash(map) => {
                for (i, (&key, &actual)) in keys.iter().zip(dep).enumerate() {
                    let Some(&e) = map.get(&key) else { continue };
                    if e as u32 == actual {
                        continue;
                    }
                    self.emit(stmt, (e >> 32) as u32, actual, range.start + i, statement, out);
                }
            }
            Repr::Legacy => unreachable!("handled above"),
        }
    }

    /// Slow path of the scan: the row's key is covered and its dependent
    /// code is not clean — emit one violation per covering branch whose
    /// expectation disagrees.
    fn emit(
        &self,
        stmt: &CompiledStatement,
        oid: u32,
        actual: Code,
        row: usize,
        statement: u32,
        out: &mut Vec<RawViolation>,
    ) {
        for &bi in &self.outcomes[oid as usize].branches {
            let violated = match stmt.branches()[bi as usize].literal_code {
                Some(code) => code != actual,
                None => true,
            };
            if violated {
                out.push(RawViolation { row, statement, branch: bi });
            }
        }
    }

    /// Legacy fallback scan for statements without a decision table (the
    /// only detect path that allocates — it binds conjunct slices per
    /// call).
    fn check_range_legacy(
        &self,
        stmt: &CompiledStatement,
        table: &Table,
        range: Range<usize>,
        out: &mut Vec<RawViolation>,
    ) {
        let statement = stmt.statement_index as u32;
        let dep = table.column(stmt.on_col).expect("bound column").codes();
        let bound: Vec<_> = stmt.branches().iter().map(|b| b.bind(table)).collect();
        for row in range {
            let actual = dep[row];
            for (b, conj) in stmt.branches().iter().zip(&bound) {
                let Some(conj) = conj else { continue };
                if !conj.iter().all(|&(codes, c)| codes[row] == c) {
                    continue;
                }
                let violated = match b.literal_code {
                    Some(code) => code != actual,
                    None => true,
                };
                if violated {
                    out.push(RawViolation { row, statement, branch: b.branch_index as u32 });
                }
            }
        }
    }

    /// Collapses each outcome's branch cascade against the freshly
    /// interned `branch_codes` (see [`RectEntry`]).
    pub(crate) fn rect_entries(&self, branch_codes: &[Code]) -> Vec<RectEntry> {
        self.outcomes
            .iter()
            .map(|o| {
                let first = branch_codes[o.branches[0] as usize];
                let mut base = 0usize;
                let mut prev = first;
                for &bi in &o.branches[1..] {
                    let code = branch_codes[bi as usize];
                    if code != prev {
                        base += 1;
                    }
                    prev = code;
                }
                RectEntry { first, last: prev, base }
            })
            .collect()
    }

    /// Rectify scan over `range` against an immutable `snapshot`:
    /// accumulates the legacy change count and pushes `(row, code)` writes
    /// for rows whose final cascade value differs from the stored one.
    pub(crate) fn rectify_range(
        &self,
        stmt: &CompiledStatement,
        snapshot: &Table,
        range: Range<usize>,
        rect: &[RectEntry],
        keys: &mut Vec<u64>,
        writes: &mut Vec<(usize, Code)>,
    ) -> usize {
        self.pack_range(snapshot, range.clone(), keys);
        let dep = &snapshot.column(stmt.on_col).expect("bound column").codes()[range.clone()];
        let mut delta = 0usize;
        match &self.repr {
            Repr::Dense(entries) => {
                for (i, (&key, &original)) in keys.iter().zip(dep).enumerate() {
                    let oid = (entries[key as usize] >> 32) as u32;
                    if oid == NO_MATCH {
                        continue;
                    }
                    let r = rect[oid as usize];
                    delta += r.base + usize::from(original != r.first);
                    if original != r.last {
                        writes.push((range.start + i, r.last));
                    }
                }
            }
            Repr::Hash(map) => {
                for (i, (&key, &original)) in keys.iter().zip(dep).enumerate() {
                    let Some(&e) = map.get(&key) else { continue };
                    let r = rect[(e >> 32) as usize];
                    delta += r.base + usize::from(original != r.first);
                    if original != r.last {
                        writes.push((range.start + i, r.last));
                    }
                }
            }
            Repr::Legacy => unreachable!("caller dispatches legacy rectify"),
        }
        delta
    }
}

/// Interns the outcome covering `outcomes[oid].branches + [bi]`, creating
/// it on first sight. Branches insert keys in ascending index order and
/// each key at most once per branch, so the appended list stays sorted and
/// duplicate-free.
fn merge_outcome(
    outcomes: &mut Vec<Outcome>,
    multi: &mut HashMap<Vec<u32>, u32>,
    oid: u32,
    bi: u32,
) -> u32 {
    let mut branches = outcomes[oid as usize].branches.clone();
    debug_assert!(branches.last().is_some_and(|&last| last < bi));
    branches.push(bi);
    if let Some(&id) = multi.get(&branches) {
        return id;
    }
    let prev_clean = outcomes[oid as usize].clean;
    let bi_clean = outcomes[bi as usize].clean;
    let clean =
        if prev_clean != NEVER_CODE && prev_clean == bi_clean { prev_clean } else { NEVER_CODE };
    let id = outcomes.len() as u32;
    outcomes.push(Outcome { branches: branches.clone(), clean });
    multi.insert(branches, id);
    id
}
