//! The DSL interpreter: denotational semantics over rows and tables.
//!
//! Three evaluation paths are provided:
//!
//! * **Vectorized (code-level)** — [`CompiledProgram`] binds a program to a
//!   concrete [`Table`], resolving attribute names to column indices and
//!   literals to dictionary codes once, and compiles each statement into a
//!   [decision table](crate::engine): bulk scans pack determinant codes
//!   into mixed-radix keys and do one lookup + one compare per row. This
//!   is the serving path — [`CompiledProgram::check_table`],
//!   [`CompiledProgram::rectify_table`], [`CompiledProgram::coerce_table`]
//!   and their `_parallel` variants.
//! * **Legacy (code-level reference)** —
//!   [`CompiledProgram::check_table_reference`] /
//!   [`CompiledProgram::rectify_table_reference`] keep the row-at-a-time
//!   branch walk as the differential-testing oracle (mirroring the stats
//!   crate's `ci_test_reference`).
//! * **Row-level (value-level)** — [`Program::execute_row`] /
//!   [`Program::check_row`] interpret a program over a single owned
//!   [`Row`] by name, used by the SQL executor's per-row guardrail hook.

use crate::ast::{Branch, Program, Statement};
use crate::engine::{DetectScratch, RawViolation, StatementEngine};
use crate::error::DslError;
use guardrail_governor::{parallel_chunks, Parallelism};
use guardrail_obs as obs;
use guardrail_table::{Code, Row, Table, TableSource, Value, NULL_CODE};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::Arc;

/// Rows per work item in the chunk-parallel table scans: coarse enough that
/// per-chunk bookkeeping is negligible, fine enough that mid-size tables
/// still split across workers (and that per-chunk key buffers stay
/// cache-resident).
pub(crate) const ROW_CHUNK: usize = 4096;

thread_local! {
    /// Per-thread scan scratch: key and raw-violation buffers warm up to
    /// chunk size and are reused across chunks, statements, and calls, so
    /// steady-state detection does zero heap allocation (pinned by
    /// `tests/alloc_free.rs`).
    static SCRATCH: RefCell<DetectScratch> = RefCell::new(DetectScratch::default());
}

/// One detected constraint violation: executing branch `branch` of statement
/// `statement` on row `row` would assign `expected`, but the row holds
/// `actual` (Eqn. 1's `⟦p⟧t ≠ t`).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Row index in the checked table (0 for single-row checks).
    pub row: usize,
    /// Statement index within the program.
    pub statement: usize,
    /// Branch index within the statement.
    pub branch: usize,
    /// The dependent attribute. Interned once per compiled statement:
    /// emitting a violation bumps a refcount instead of copying the name.
    pub attribute: Arc<str>,
    /// Value the DGP program assigns.
    pub expected: Value,
    /// Value found in the data.
    pub actual: Value,
}

/// A program compiled against one table's schema and dictionaries.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    statements: Vec<CompiledStatement>,
    /// One decision table per statement, aligned with `statements`.
    engines: Vec<StatementEngine>,
}

/// A compiled statement.
#[derive(Debug, Clone)]
pub struct CompiledStatement {
    /// Index of this statement in the source program.
    pub statement_index: usize,
    /// Column index of the dependent attribute.
    pub on_col: usize,
    /// Dependent attribute name (interned for violation reporting).
    pub on_name: Arc<str>,
    branches: Vec<CompiledBranch>,
}

/// A compiled branch.
#[derive(Debug, Clone)]
pub struct CompiledBranch {
    /// Index of this branch in the source statement.
    pub branch_index: usize,
    /// `(column, code)` conjuncts; `code == None` means the literal does not
    /// occur in that column's dictionary, so the condition matches no row.
    pub(crate) conjuncts: Vec<(usize, Option<Code>)>,
    /// The assigned literal.
    pub literal: Value,
    /// Dictionary code of the literal in the dependent column, if interned.
    pub literal_code: Option<Code>,
}

impl CompiledBranch {
    /// The `(column, code)` conjuncts of the branch condition.
    pub(crate) fn conjuncts(&self) -> &[(usize, Option<Code>)] {
        &self.conjuncts
    }

    /// `true` when the branch's condition holds on row `row` of `table`.
    pub fn matches(&self, table: &Table, row: usize) -> bool {
        self.conjuncts.iter().all(|&(col, code)| match code {
            Some(c) => table.column(col).expect("bound column").code(row) == c,
            None => false,
        })
    }

    /// Binds the branch's conjuncts to their column code slices, hoisting
    /// `table.column(..)` resolution out of row loops. `None` when some
    /// conjunct literal is absent from the bound dictionary — such a
    /// condition matches no row.
    pub(crate) fn bind<'t>(&self, table: &'t Table) -> Option<Vec<(&'t [Code], Code)>> {
        self.conjuncts
            .iter()
            .map(|&(col, code)| code.map(|c| (table.column(col).expect("bound column").codes(), c)))
            .collect()
    }

    /// Row indices of `D^b`: rows satisfying the branch condition.
    pub fn matching_rows(&self, table: &Table) -> Vec<usize> {
        match self.bind(table) {
            None => Vec::new(),
            Some(conj) => (0..table.num_rows())
                .filter(|&row| conj.iter().all(|&(codes, c)| codes[row] == c))
                .collect(),
        }
    }
}

impl CompiledProgram {
    /// Compiles `program` against `table`, resolving names and literals.
    pub fn compile(program: &Program, table: &Table) -> Result<Self, DslError> {
        program.validate()?;
        let schema = table.schema();
        let mut statements = Vec::with_capacity(program.statements.len());
        for (si, s) in program.statements.iter().enumerate() {
            let on_col =
                schema.index_of(&s.on).ok_or_else(|| DslError::UnknownAttribute(s.on.clone()))?;
            let mut branches = Vec::with_capacity(s.branches.len());
            for (bi, b) in s.branches.iter().enumerate() {
                let mut conjuncts = Vec::with_capacity(b.condition.conjuncts().len());
                for (attr, lit) in b.condition.conjuncts() {
                    let col = schema
                        .index_of(attr)
                        .ok_or_else(|| DslError::UnknownAttribute(attr.clone()))?;
                    let code =
                        table.column(col).expect("schema-resolved column").dictionary().lookup(lit);
                    conjuncts.push((col, code));
                }
                let literal_code =
                    table.column(on_col).expect("bound column").dictionary().lookup(&b.literal);
                branches.push(CompiledBranch {
                    branch_index: bi,
                    conjuncts,
                    literal: b.literal.clone(),
                    literal_code,
                });
            }
            statements.push(CompiledStatement {
                statement_index: si,
                on_col,
                on_name: Arc::from(s.on.as_str()),
                branches,
            });
        }
        let engines = statements.iter().map(|s| StatementEngine::build(s, table)).collect();
        Ok(Self { statements, engines })
    }

    /// Compiled statements.
    pub fn statements(&self) -> &[CompiledStatement] {
        &self.statements
    }

    /// Per-statement decision tables, aligned with
    /// [`statements`](Self::statements).
    pub(crate) fn engines(&self) -> &[StatementEngine] {
        &self.engines
    }

    /// Number of statements in the compiled program.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Number of statements served by the legacy row-at-a-time interpreter
    /// because their packed key space exceeds the decision-table engine's
    /// enumeration cap. Zero means every statement runs vectorized.
    pub fn legacy_statement_count(&self) -> usize {
        self.engines.iter().filter(|e| e.is_legacy()).count()
    }

    /// All violations across the source's rows (vectorized decision-table
    /// scan). Accepts any [`TableSource`] — in-memory table, mmap segment,
    /// or persistent store.
    pub fn check_table<S: TableSource + ?Sized>(&self, source: &S) -> Vec<Violation> {
        self.check_table_parallel(source.as_table(), Parallelism::Sequential)
    }

    /// [`check_table`](Self::check_table) with row chunks scanned on worker
    /// threads. Checking only reads the table, so chunks are independent;
    /// per-chunk violation lists concatenate in range order, making the
    /// output bit-identical to the sequential scan for any worker count —
    /// and to [`check_table_reference`](Self::check_table_reference).
    pub fn check_table_parallel(&self, table: &Table, parallelism: Parallelism) -> Vec<Violation> {
        let mut check_span = obs::span("check_table");
        check_span.arg("rows", table.num_rows() as u64);
        check_span.arg("statements", self.statements.len() as u64);
        check_span.arg("legacy_statements", self.legacy_statement_count() as u64);
        let per_chunk = parallel_chunks(parallelism, table.num_rows(), ROW_CHUNK, &|range| {
            let mut chunk_span = obs::span("detect_chunk");
            chunk_span.arg("rows", range.len() as u64);
            SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                let DetectScratch { keys, raw } = &mut *scratch;
                raw.clear();
                self.check_chunk_raw(table, range, keys, raw);
                chunk_span.arg("violations", raw.len() as u64);
                raw.iter().map(|r| self.raw_to_violation(table, r)).collect::<Vec<_>>()
            })
        });
        let violations = per_chunk.concat();
        check_span.arg("violations", violations.len() as u64);
        violations
    }

    /// Allocation-free core of the vectorized scan: fills `out` with the
    /// table's violations in index form (same order as
    /// [`check_table`](Self::check_table)), reusing `out`'s and `scratch`'s
    /// buffers. Once those are warm, detection over dense- or
    /// hash-represented statements performs **zero** heap allocation — no
    /// name interning, no value decoding, no per-chunk lists.
    pub fn check_table_raw_into<S: TableSource + ?Sized>(
        &self,
        source: &S,
        out: &mut Vec<RawViolation>,
        scratch: &mut DetectScratch,
    ) {
        let table = source.as_table();
        out.clear();
        let mut check_span = obs::span("check_table");
        check_span.arg("rows", table.num_rows() as u64);
        let rows = table.num_rows();
        let mut start = 0;
        while start < rows {
            let end = (start + ROW_CHUNK).min(rows);
            let mut chunk_span = obs::span("detect_chunk");
            chunk_span.arg("rows", (end - start) as u64);
            self.check_chunk_raw(table, start..end, &mut scratch.keys, out);
            start = end;
        }
        check_span.arg("violations", out.len() as u64);
    }

    /// Scans one row chunk statement-by-statement, then sorts the appended
    /// segment into `(row, statement, branch)` order — exactly the legacy
    /// interpreter's row-major emission order.
    pub(crate) fn check_chunk_raw(
        &self,
        table: &Table,
        range: Range<usize>,
        keys: &mut Vec<u64>,
        out: &mut Vec<RawViolation>,
    ) {
        let start = out.len();
        for (s, engine) in self.statements.iter().zip(&self.engines) {
            engine.check_range(s, table, range.clone(), keys, out);
        }
        out[start..].sort_unstable();
    }

    /// Upgrades a raw violation at the API boundary: one `Arc` bump for the
    /// attribute name, one dictionary decode for the offending cell.
    pub(crate) fn raw_to_violation(&self, table: &Table, raw: &RawViolation) -> Violation {
        let s = &self.statements[raw.statement as usize];
        let b = &s.branches[raw.branch as usize];
        let col = table.column(s.on_col).expect("bound column");
        Violation {
            row: raw.row,
            statement: s.statement_index,
            branch: b.branch_index,
            attribute: s.on_name.clone(),
            expected: b.literal.clone(),
            actual: col.dictionary().decode(col.code(raw.row)),
        }
    }

    /// The legacy row-at-a-time interpreter, retained as the
    /// differential-testing oracle for the decision-table engine (mirroring
    /// the stats crate's `ci_test_reference`). Conjunct code slices are
    /// bound once per scan, so differential benches compare interpretation
    /// strategies rather than repeated column resolution.
    pub fn check_table_reference(&self, table: &Table) -> Vec<Violation> {
        let bound: Vec<_> = self
            .statements
            .iter()
            .map(|s| {
                let on = table.column(s.on_col).expect("bound column");
                let conj: Vec<_> = s.branches.iter().map(|b| b.bind(table)).collect();
                (s, on, conj)
            })
            .collect();
        let mut out = Vec::new();
        for row in 0..table.num_rows() {
            for (s, on, conj) in &bound {
                let actual_code = on.codes()[row];
                for (b, conj) in s.branches.iter().zip(conj) {
                    let Some(conj) = conj else { continue };
                    if !conj.iter().all(|&(codes, c)| codes[row] == c) {
                        continue;
                    }
                    let violated = match b.literal_code {
                        Some(code) => actual_code != code,
                        // Literal never interned in this table: every
                        // matching row disagrees with the assignment.
                        None => true,
                    };
                    if violated {
                        out.push(Violation {
                            row,
                            statement: s.statement_index,
                            branch: b.branch_index,
                            attribute: s.on_name.clone(),
                            expected: b.literal.clone(),
                            actual: on.dictionary().decode(actual_code),
                        });
                    }
                }
            }
        }
        out
    }

    /// Violations on a single row of the bound table.
    pub fn check_row(&self, table: &Table, row: usize) -> Vec<Violation> {
        let mut out = Vec::new();
        self.check_row_into(table, row, &mut out);
        out
    }

    fn check_row_into(&self, table: &Table, row: usize, out: &mut Vec<Violation>) {
        for s in &self.statements {
            let actual_code = table.column(s.on_col).expect("bound column").code(row);
            for b in &s.branches {
                if !b.matches(table, row) {
                    continue;
                }
                let violated = match b.literal_code {
                    Some(code) => actual_code != code,
                    // Literal never interned in this table: every matching
                    // row disagrees with the assignment.
                    None => true,
                };
                if violated {
                    out.push(Violation {
                        row,
                        statement: s.statement_index,
                        branch: b.branch_index,
                        attribute: s.on_name.clone(),
                        expected: b.literal.clone(),
                        actual: table
                            .column(s.on_col)
                            .expect("bound column")
                            .dictionary()
                            .decode(actual_code),
                    });
                }
            }
        }
    }

    /// Distinct row indices with at least one violation.
    pub fn violating_rows(&self, table: &Table) -> Vec<usize> {
        let mut rows: Vec<usize> = self.check_table(table).into_iter().map(|v| v.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Executes the program over the whole table **in place**: every matching
    /// branch writes its literal into the dependent cell (the paper's
    /// `rectify` scheme). Returns the number of cells changed.
    pub fn rectify_table(&self, table: &mut Table) -> usize {
        self.rectify_table_parallel(table, Parallelism::Sequential)
    }

    /// [`rectify_table`](Self::rectify_table) with row chunks scanned on
    /// worker threads, on the decision-table engine.
    ///
    /// Statements stay sequential — later statements must see earlier
    /// statements' writes (chained repairs, e.g. fix `city` then derive
    /// `state` from the corrected `city`), and the determinant keys of each
    /// statement are re-packed from the updated table. Within one statement
    /// every row is independent: validated programs never read a
    /// statement's dependent column in its own conditions, so the per-row
    /// branch cascade at a covered key is a static function of the key —
    /// workers scan an immutable snapshot through the precomputed
    /// per-outcome cascade summaries and push `(row, code)` write lists
    /// that a sequential pass applies in range order. Cell contents and
    /// the returned change count are bit-identical to
    /// [`rectify_table_reference`](Self::rectify_table_reference) for any
    /// worker count.
    pub fn rectify_table_parallel(&self, table: &mut Table, parallelism: Parallelism) -> usize {
        let mut rect_span = obs::span("rectify_table");
        rect_span.arg("rows", table.num_rows() as u64);
        rect_span.arg("statements", self.statements.len() as u64);
        rect_span.arg("legacy_statements", self.legacy_statement_count() as u64);
        let mut changed = 0;
        for (s, engine) in self.statements.iter().zip(&self.engines) {
            let branch_codes = Self::intern_branch_codes(s, table);
            if engine.is_legacy() {
                changed += Self::rectify_statement_legacy(s, &branch_codes, table, parallelism);
                continue;
            }
            let rect = engine.rect_entries(&branch_codes);
            let per_chunk: Vec<(usize, Vec<(usize, Code)>)> = {
                let snapshot: &Table = table;
                parallel_chunks(parallelism, snapshot.num_rows(), ROW_CHUNK, &|range| {
                    let mut chunk_span = obs::span("rectify_chunk");
                    chunk_span.arg("rows", range.len() as u64);
                    SCRATCH.with(|scratch| {
                        let mut scratch = scratch.borrow_mut();
                        let mut writes: Vec<(usize, Code)> = Vec::new();
                        let delta = engine.rectify_range(
                            s,
                            snapshot,
                            range,
                            &rect,
                            &mut scratch.keys,
                            &mut writes,
                        );
                        chunk_span.arg("cells_changed", delta as u64);
                        (delta, writes)
                    })
                })
            };
            for (delta, writes) in per_chunk {
                changed += delta;
                let col = table.column_mut(s.on_col).expect("bound column");
                for (row, code) in writes {
                    col.set_code(row, code);
                }
            }
        }
        rect_span.arg("cells_changed", changed as u64);
        changed
    }

    /// The legacy rectify scheme, retained as the differential-testing
    /// oracle: sequential per-row branch-cascade simulation.
    pub fn rectify_table_reference(&self, table: &mut Table) -> usize {
        let mut changed = 0;
        for s in &self.statements {
            let branch_codes = Self::intern_branch_codes(s, table);
            changed +=
                Self::rectify_statement_legacy(s, &branch_codes, table, Parallelism::Sequential);
        }
        changed
    }

    /// Interns a statement's branch literals once so new values (absent
    /// from this split's dictionary) can be written.
    fn intern_branch_codes(s: &CompiledStatement, table: &mut Table) -> Vec<Code> {
        let col = table.column_mut(s.on_col).expect("bound column");
        s.branches.iter().map(|b| col.dictionary_mut().encode(b.literal.clone())).collect()
    }

    /// Row-at-a-time rectify for one statement (reference path and engine
    /// fallback): workers simulate the per-row branch cascade against a
    /// snapshot with conjunct slices bound once, then a sequential pass
    /// applies the write lists in range order.
    fn rectify_statement_legacy(
        s: &CompiledStatement,
        branch_codes: &[Code],
        table: &mut Table,
        parallelism: Parallelism,
    ) -> usize {
        let per_chunk: Vec<(usize, Vec<(usize, Code)>)> = {
            let snapshot: &Table = table;
            // Validated programs never condition a statement on its own
            // dependent column, so the cascade can read determinants from
            // the immutable snapshot.
            let bound: Vec<_> = s.branches.iter().map(|b| b.bind(snapshot)).collect();
            let on = snapshot.column(s.on_col).expect("bound column").codes();
            parallel_chunks(parallelism, snapshot.num_rows(), ROW_CHUNK, &|range| {
                let mut delta = 0usize;
                let mut writes: Vec<(usize, Code)> = Vec::new();
                for row in range {
                    let original = on[row];
                    let mut cur = original;
                    for (conj, &code) in bound.iter().zip(branch_codes) {
                        let Some(conj) = conj else { continue };
                        if conj.iter().all(|&(codes, c)| codes[row] == c) && cur != code {
                            cur = code;
                            delta += 1;
                        }
                    }
                    if cur != original {
                        writes.push((row, cur));
                    }
                }
                (delta, writes)
            })
        };
        let mut changed = 0;
        for (delta, writes) in per_chunk {
            changed += delta;
            let col = table.column_mut(s.on_col).expect("bound column");
            for (row, code) in writes {
                col.set_code(row, code);
            }
        }
        changed
    }

    /// Replaces the dependent cell of every violating row with `Null`
    /// (the paper's `coerce` scheme). Returns the number of cells coerced.
    pub fn coerce_table(&self, table: &mut Table) -> usize {
        self.coerce_table_parallel(table, Parallelism::Sequential)
    }

    /// [`coerce_table`](Self::coerce_table) with the violation scan run on
    /// worker threads; the null writes themselves are a cheap sequential
    /// pass over the (deterministically ordered) violation list.
    pub fn coerce_table_parallel(&self, table: &mut Table, parallelism: Parallelism) -> usize {
        let mut coerce_span = obs::span("coerce_table");
        coerce_span.arg("rows", table.num_rows() as u64);
        let violations = self.check_table_parallel(table, parallelism);
        let mut coerced = 0;
        for v in violations {
            let s = &self.statements[v.statement];
            let col = table.column_mut(s.on_col).expect("bound column");
            if col.code(v.row) != NULL_CODE {
                col.set_code(v.row, NULL_CODE);
                coerced += 1;
            }
        }
        coerce_span.arg("cells_coerced", coerced as u64);
        coerced
    }
}

impl Program {
    /// Compiles this program against any [`TableSource`] (convenience
    /// wrapper around [`CompiledProgram::compile`]).
    pub fn compile_for<S: TableSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<CompiledProgram, DslError> {
        CompiledProgram::compile(self, source.as_table())
    }

    /// Denotational execution on an owned row: `⟦p⟧t = t'`. Branches whose
    /// conditions match assign their literal; everything else is untouched.
    pub fn execute_row(&self, row: &Row) -> Row {
        let mut out = row.clone();
        for s in &self.statements {
            for b in &s.branches {
                if condition_holds(b, &out) {
                    out.set_by_name(&b.target, b.literal.clone());
                }
            }
        }
        out
    }

    /// Violations of this program on a single row (value-level; used by the
    /// per-row guardrail at query time). The reported `row` index is 0.
    pub fn check_row(&self, row: &Row) -> Vec<Violation> {
        let mut out = Vec::new();
        for (si, s) in self.statements.iter().enumerate() {
            for (bi, b) in s.branches.iter().enumerate() {
                if condition_holds(b, row) {
                    let actual = row.get_by_name(&s.on).cloned().unwrap_or(Value::Null);
                    if actual != b.literal {
                        out.push(Violation {
                            row: 0,
                            statement: si,
                            branch: bi,
                            attribute: Arc::from(s.on.as_str()),
                            expected: b.literal.clone(),
                            actual,
                        });
                    }
                }
            }
        }
        out
    }
}

fn condition_holds(branch: &Branch, row: &Row) -> bool {
    branch
        .condition
        .conjuncts()
        .iter()
        .all(|(attr, lit)| row.get_by_name(attr).map(|v| v == lit).unwrap_or(false))
}

/// Row indices of `D^s` for a statement: the union of its branches' matching
/// rows (value-level convenience used by the semantics module).
pub fn statement_rows(statement: &Statement, table: &Table) -> Vec<usize> {
    let program = Program { statements: vec![statement.clone()] };
    let compiled = match CompiledProgram::compile(&program, table) {
        Ok(c) => c,
        Err(_) => return Vec::new(),
    };
    let mut rows: Vec<usize> =
        compiled.statements()[0].branches().iter().flat_map(|b| b.matching_rows(table)).collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

impl CompiledStatement {
    /// The compiled branches.
    pub fn branches(&self) -> &[CompiledBranch] {
        &self.branches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn zip_table() -> Table {
        Table::from_csv_str("zip,city\n94704,Berkeley\n94704,gibbon\n97201,Portland\n10001,NYC\n")
            .unwrap()
    }

    fn zip_program() -> Program {
        parse_program(
            r#"GIVEN zip ON city HAVING
                   IF zip = 94704 THEN city <- "Berkeley";
                   IF zip = 97201 THEN city <- "Portland";"#,
        )
        .unwrap()
    }

    #[test]
    fn detects_paper_example_error() {
        let table = zip_table();
        let compiled = zip_program().compile_for(&table).unwrap();
        let violations = compiled.check_table(&table);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(v.row, 1);
        assert_eq!(&*v.attribute, "city");
        assert_eq!(v.expected, Value::from("Berkeley"));
        assert_eq!(v.actual, Value::from("gibbon"));
        assert_eq!(compiled.violating_rows(&table), vec![1]);
    }

    #[test]
    fn uncovered_rows_are_not_flagged() {
        let table = zip_table();
        let compiled = zip_program().compile_for(&table).unwrap();
        // Row 3 (zip 10001) matches no branch — never a violation.
        assert!(compiled.check_row(&table, 3).is_empty());
    }

    #[test]
    fn rectify_fixes_and_is_idempotent() {
        let mut table = zip_table();
        let compiled = zip_program().compile_for(&table).unwrap();
        let changed = compiled.rectify_table(&mut table);
        assert_eq!(changed, 1);
        assert_eq!(table.get(1, 1), Some(Value::from("Berkeley")));
        // Idempotent: second run changes nothing.
        let compiled = zip_program().compile_for(&table).unwrap();
        assert_eq!(compiled.rectify_table(&mut table), 0);
        assert!(compiled.check_table(&table).is_empty());
    }

    #[test]
    fn rectify_interns_unseen_literal() {
        let mut table = Table::from_csv_str("zip,city\n94704,gibbon\n").unwrap();
        let compiled = zip_program().compile_for(&table).unwrap();
        assert_eq!(compiled.rectify_table(&mut table), 1);
        assert_eq!(table.get(0, 1), Some(Value::from("Berkeley")));
    }

    #[test]
    fn coerce_nulls_bad_cells() {
        let mut table = zip_table();
        let compiled = zip_program().compile_for(&table).unwrap();
        assert_eq!(compiled.coerce_table(&mut table), 1);
        assert_eq!(table.get(1, 1), Some(Value::Null));
        // clean rows untouched
        assert_eq!(table.get(0, 1), Some(Value::from("Berkeley")));
    }

    #[test]
    fn row_level_execute_matches_eqn1() {
        let program = zip_program();
        let table = zip_table();
        let bad = table.row_owned(1).unwrap();
        let fixed = program.execute_row(&bad);
        assert_eq!(fixed.get_by_name("city"), Some(&Value::from("Berkeley")));
        assert_ne!(&fixed, &bad, "⟦p⟧t ≠ t flags the error");
        let good = table.row_owned(0).unwrap();
        assert_eq!(program.execute_row(&good), good);
    }

    #[test]
    fn row_level_check() {
        let program = zip_program();
        let table = zip_table();
        assert_eq!(program.check_row(&table.row_owned(1).unwrap()).len(), 1);
        assert!(program.check_row(&table.row_owned(0).unwrap()).is_empty());
        assert!(program.check_row(&table.row_owned(3).unwrap()).is_empty());
    }

    #[test]
    fn literal_absent_from_dictionary_matches_nothing() {
        let table = Table::from_csv_str("zip,city\n11111,Nowhere\n").unwrap();
        let compiled = zip_program().compile_for(&table).unwrap();
        assert!(compiled.check_table(&table).is_empty());
    }

    #[test]
    fn expected_literal_absent_flags_matching_rows() {
        // Condition matches but "Berkeley" is not in this table's dictionary.
        let table = Table::from_csv_str("zip,city\n94704,Oakland\n").unwrap();
        let compiled = zip_program().compile_for(&table).unwrap();
        let violations = compiled.check_table(&table);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].expected, Value::from("Berkeley"));
    }

    #[test]
    fn unknown_attribute_fails_compile() {
        let table = Table::from_csv_str("a,b\n1,2\n").unwrap();
        let err = zip_program().compile_for(&table).unwrap_err();
        assert!(matches!(err, DslError::UnknownAttribute(_)));
    }

    /// A few-thousand-row table over (zip, city, state) with injected noise,
    /// plus a two-statement chained-repair program.
    fn noisy_chain() -> (Table, Program) {
        let cities = ["Berkeley", "Portland", "NYC"];
        let states = ["CA", "OR", "NY"];
        let mut csv = String::from("zip,city,state\n");
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..5000 {
            let z = (rng() % 3) as usize;
            let city = if rng() % 10 == 0 { "gibbon" } else { cities[z] };
            let state = if rng() % 10 == 0 { "XX" } else { states[z] };
            csv.push_str(&format!("{},{city},{state}\n", 94704 + z));
        }
        let table = Table::from_csv_str(&csv).unwrap();
        let program = parse_program(
            r#"GIVEN zip ON city HAVING
                   IF zip = 94704 THEN city <- "Berkeley";
                   IF zip = 94705 THEN city <- "Portland";
                   IF zip = 94706 THEN city <- "NYC";
               GIVEN city ON state HAVING
                   IF city = "Berkeley" THEN state <- "CA";
                   IF city = "Portland" THEN state <- "OR";
                   IF city = "NYC" THEN state <- "NY";"#,
        )
        .unwrap();
        (table, program)
    }

    fn assert_same_cells(a: &Table, b: &Table, context: &str) {
        assert_eq!(a.num_rows(), b.num_rows(), "{context}");
        assert_eq!(a.num_columns(), b.num_columns(), "{context}");
        for row in 0..a.num_rows() {
            for col in 0..a.num_columns() {
                assert_eq!(a.get(row, col), b.get(row, col), "{context}: cell ({row},{col})");
            }
        }
    }

    #[test]
    fn parallel_check_is_bit_identical() {
        let (table, program) = noisy_chain();
        let compiled = program.compile_for(&table).unwrap();
        let seq = compiled.check_table(&table);
        assert!(!seq.is_empty());
        for threads in [2, 3, 8, 64] {
            let par = compiled.check_table_parallel(&table, Parallelism::threads(threads));
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn parallel_rectify_is_bit_identical() {
        let (table, program) = noisy_chain();
        for threads in [2, 3, 8, 64] {
            let mut seq_table = table.clone();
            let mut par_table = table.clone();
            let seq_changed =
                program.compile_for(&seq_table).unwrap().rectify_table(&mut seq_table);
            let par_changed = program
                .compile_for(&par_table)
                .unwrap()
                .rectify_table_parallel(&mut par_table, Parallelism::threads(threads));
            assert!(seq_changed > 0);
            assert_eq!(seq_changed, par_changed, "{threads} threads: change count");
            assert_same_cells(&seq_table, &par_table, &format!("{threads} threads"));
            // The chained second statement must have seen the repaired city:
            // every row is clean after one pass.
            assert!(program.compile_for(&par_table).unwrap().check_table(&par_table).is_empty());
        }
    }

    #[test]
    fn parallel_coerce_is_bit_identical() {
        let (table, program) = noisy_chain();
        let mut seq_table = table.clone();
        let seq_coerced = program.compile_for(&seq_table).unwrap().coerce_table(&mut seq_table);
        for threads in [2, 8] {
            let mut par_table = table.clone();
            let par_coerced = program
                .compile_for(&par_table)
                .unwrap()
                .coerce_table_parallel(&mut par_table, Parallelism::threads(threads));
            assert!(seq_coerced > 0);
            assert_eq!(seq_coerced, par_coerced, "{threads} threads");
            assert_same_cells(&seq_table, &par_table, &format!("{threads} threads"));
        }
    }

    #[test]
    fn later_statements_see_earlier_assignments() {
        // Statement order matters in execute_row: city is fixed first, then
        // state derives from the corrected city.
        let program = parse_program(
            r#"GIVEN zip ON city HAVING
                   IF zip = 94704 THEN city <- "Berkeley";
               GIVEN city ON state HAVING
                   IF city = "Berkeley" THEN state <- "CA";"#,
        )
        .unwrap();
        let table = Table::from_csv_str("zip,city,state\n94704,gibbon,XX\n").unwrap();
        let fixed = program.execute_row(&table.row_owned(0).unwrap());
        assert_eq!(fixed.get_by_name("city"), Some(&Value::from("Berkeley")));
        assert_eq!(fixed.get_by_name("state"), Some(&Value::from("CA")));
    }
}
