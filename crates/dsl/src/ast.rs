//! Abstract syntax of the Guardrail DSL.

use crate::error::DslError;
use guardrail_table::Value;
use std::fmt;

/// An equality conjunction: `a₁ = l₁ AND … AND aₖ = lₖ`.
///
/// The grammar's `Condition` production. Conjuncts are kept in insertion
/// order for printing; evaluation is order-insensitive.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    conjuncts: Vec<(String, Value)>,
}

impl Condition {
    /// Builds a condition from `(attribute, literal)` pairs.
    ///
    /// # Panics
    /// Panics if `conjuncts` is empty — the grammar has no empty condition.
    pub fn new(conjuncts: Vec<(String, Value)>) -> Self {
        assert!(!conjuncts.is_empty(), "a condition needs at least one conjunct");
        Self { conjuncts }
    }

    /// The conjuncts in order.
    pub fn conjuncts(&self) -> &[(String, Value)] {
        &self.conjuncts
    }

    /// Attributes mentioned by the condition.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.conjuncts.iter().map(|(a, _)| a.as_str())
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (a, l)) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{} = {}", ident(a), literal(l))?;
        }
        Ok(())
    }
}

/// `IF c THEN a ← l`: a conditional assignment of literal `l` to attribute
/// `a`.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// Guard condition.
    pub condition: Condition,
    /// Assigned (dependent) attribute; must equal the enclosing statement's
    /// ON attribute (checked by [`Statement::validate`]).
    pub target: String,
    /// Assigned literal.
    pub literal: Value,
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IF {} THEN {} <- {}",
            self.condition,
            ident(&self.target),
            literal(&self.literal)
        )
    }
}

/// `GIVEN a⁺ ON a HAVING b⁺`: the DGP of one dependent attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Determinant attributes.
    pub given: Vec<String>,
    /// Dependent attribute.
    pub on: String,
    /// Conditional assignments.
    pub branches: Vec<Branch>,
}

impl Statement {
    /// Structural validation: non-empty GIVEN, at least one branch, branch
    /// targets match ON, no self-dependence, and branch conditions only
    /// mention GIVEN attributes.
    pub fn validate(&self) -> Result<(), DslError> {
        if self.given.is_empty() {
            return Err(DslError::MalformedStatement("empty GIVEN clause".into()));
        }
        if self.branches.is_empty() {
            return Err(DslError::MalformedStatement("no branches in HAVING clause".into()));
        }
        if self.given.iter().any(|g| g == &self.on) {
            return Err(DslError::SelfDependence(self.on.clone()));
        }
        for b in &self.branches {
            if b.target != self.on {
                return Err(DslError::BranchTargetMismatch {
                    expected: self.on.clone(),
                    actual: b.target.clone(),
                });
            }
            for attr in b.condition.attributes() {
                if !self.given.iter().any(|g| g == attr) {
                    return Err(DslError::MalformedStatement(format!(
                        "condition attribute {attr:?} is not in the GIVEN clause"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GIVEN ")?;
        for (i, g) in self.given.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(&ident(g))?;
        }
        writeln!(f, " ON {} HAVING", ident(&self.on))?;
        for b in &self.branches {
            writeln!(f, "    {b};")?;
        }
        Ok(())
    }
}

/// A whole program: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The statements, applied in order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// The empty program (always 0-loss, detects nothing — `p₁` in
    /// Example 3.1).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Validates every statement.
    pub fn validate(&self) -> Result<(), DslError> {
        self.statements.iter().try_for_each(Statement::validate)
    }

    /// Total number of branches across statements.
    pub fn num_branches(&self) -> usize {
        self.statements.iter().map(|s| s.branches.len()).sum()
    }

    /// Whether the program has no statements (detects nothing). Serving
    /// registries treat an empty re-synthesis as a failed fit when a
    /// non-empty predecessor exists.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Quotes an identifier when it is not a plain word.
fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().next().unwrap().is_ascii_alphabetic()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !is_keyword(name);
    if plain {
        name.to_string()
    } else {
        format!("`{}`", name.replace('`', "``"))
    }
}

/// Renders a literal in parseable form.
fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // Guarantee a float-shaped token so parsing preserves the type.
            let s = f.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
    }
}

pub(crate) fn is_keyword(word: &str) -> bool {
    matches!(
        word.to_ascii_uppercase().as_str(),
        "GIVEN" | "ON" | "HAVING" | "IF" | "THEN" | "AND" | "NULL" | "TRUE" | "FALSE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(cond: Vec<(&str, Value)>, target: &str, lit: Value) -> Branch {
        Branch {
            condition: Condition::new(cond.into_iter().map(|(a, v)| (a.to_string(), v)).collect()),
            target: target.to_string(),
            literal: lit,
        }
    }

    #[test]
    fn statement_validation_passes() {
        let s = Statement {
            given: vec!["zip".into()],
            on: "city".into(),
            branches: vec![branch(
                vec![("zip", Value::Int(94704))],
                "city",
                Value::from("Berkeley"),
            )],
        };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_structure_errors() {
        let good = branch(vec![("zip", Value::Int(1))], "city", Value::from("x"));
        let empty_given =
            Statement { given: vec![], on: "city".into(), branches: vec![good.clone()] };
        assert!(matches!(empty_given.validate(), Err(DslError::MalformedStatement(_))));

        let no_branches =
            Statement { given: vec!["zip".into()], on: "city".into(), branches: vec![] };
        assert!(matches!(no_branches.validate(), Err(DslError::MalformedStatement(_))));

        let self_dep = Statement {
            given: vec!["city".into()],
            on: "city".into(),
            branches: vec![branch(vec![("city", Value::Int(1))], "city", Value::Int(1))],
        };
        assert!(matches!(self_dep.validate(), Err(DslError::SelfDependence(_))));

        let wrong_target = Statement {
            given: vec!["zip".into()],
            on: "city".into(),
            branches: vec![branch(vec![("zip", Value::Int(1))], "state", Value::from("CA"))],
        };
        assert!(matches!(wrong_target.validate(), Err(DslError::BranchTargetMismatch { .. })));

        let foreign_attr = Statement {
            given: vec!["zip".into()],
            on: "city".into(),
            branches: vec![branch(vec![("state", Value::from("CA"))], "city", Value::from("x"))],
        };
        assert!(matches!(foreign_attr.validate(), Err(DslError::MalformedStatement(_))));
    }

    #[test]
    fn display_is_stable() {
        let s = Statement {
            given: vec!["rel".into()],
            on: "marital".into(),
            branches: vec![branch(
                vec![("rel", Value::from("Husband"))],
                "marital",
                Value::from("Married"),
            )],
        };
        let text = s.to_string();
        assert!(text.starts_with("GIVEN rel ON marital HAVING"));
        assert!(text.contains("IF rel = \"Husband\" THEN marital <- \"Married\";"));
    }

    #[test]
    fn odd_identifiers_are_quoted() {
        assert_eq!(ident("marital-status"), "marital-status");
        assert_eq!(ident("has space"), "`has space`");
        assert_eq!(ident("1starts_digit"), "`1starts_digit`");
        assert_eq!(ident("GIVEN"), "`GIVEN`");
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(literal(&Value::Int(3)), "3");
        assert_eq!(literal(&Value::Float(3.0)), "3.0");
        assert_eq!(literal(&Value::Bool(true)), "true");
        assert_eq!(literal(&Value::Null), "NULL");
        assert_eq!(literal(&Value::from("a\"b")), "\"a\\\"b\"");
    }

    #[test]
    fn empty_program_properties() {
        let p = Program::empty();
        assert!(p.validate().is_ok());
        assert_eq!(p.num_branches(), 0);
        assert_eq!(p.to_string(), "");
    }

    #[test]
    #[should_panic(expected = "at least one conjunct")]
    fn empty_condition_rejected() {
        Condition::new(vec![]);
    }
}
