//! Quantitative semantics: loss, coverage, and ε-validity.
//!
//! These are the objective functions of the synthesis problem:
//!
//! * **Branch loss** (Eqn. 2): `L(b, D) = |{t ∈ D^b : ⟦b⟧t ≠ t}|` — the
//!   number of covered rows that disagree with the branch's assignment.
//! * **ε-validity** (Eqn. 3–4): every branch's loss is at most `|D^b|·ε`.
//! * **Coverage** (Eqn. 5–6): `cov(b, D) = |D^b| / |D|`, summed over a
//!   statement's branches and averaged over a program's statements.

use crate::ast::{Branch, Program, Statement};
use crate::interp::CompiledProgram;
use guardrail_table::Table;

/// `(loss, support)` of a branch on `table`: `loss = L(b, D)` and
/// `support = |D^b|`.
pub fn branch_loss(branch: &Branch, table: &Table) -> (usize, usize) {
    let stmt = Statement {
        given: branch.condition.attributes().map(str::to_string).collect(),
        on: branch.target.clone(),
        branches: vec![branch.clone()],
    };
    let program = Program { statements: vec![stmt] };
    let compiled = match CompiledProgram::compile(&program, table) {
        Ok(c) => c,
        Err(_) => return (0, 0),
    };
    let cb = &compiled.statements()[0].branches()[0];
    let support = cb.matching_rows(table).len();
    let loss = compiled.check_table(table).len();
    (loss, support)
}

/// `cov(b, D) = |D^b| / |D|`. Zero for an empty table.
pub fn coverage(branch: &Branch, table: &Table) -> f64 {
    if table.num_rows() == 0 {
        return 0.0;
    }
    let (_, support) = branch_loss(branch, table);
    support as f64 / table.num_rows() as f64
}

/// `cov(s, D) = Σ_b cov(b, D)` (Eqn. 6). Branch conditions produced by the
/// synthesizer are mutually exclusive (distinct determinant valuations), so
/// the sum equals the coverage of the union `D^s`.
pub fn statement_coverage(statement: &Statement, table: &Table) -> f64 {
    statement.branches.iter().map(|b| coverage(b, table)).sum()
}

/// Statement-level ε-validity (Eqn. 4): `∀ b ∈ s, L(b, D) ≤ |D^b|·ε`.
pub fn epsilon_valid(statement: &Statement, table: &Table, epsilon: f64) -> bool {
    statement.branches.iter().all(|b| {
        let (loss, support) = branch_loss(b, table);
        loss as f64 <= support as f64 * epsilon
    })
}

/// Program-level ε-validity (Eqn. 3): every statement is ε-valid.
pub fn program_epsilon_valid(program: &Program, table: &Table, epsilon: f64) -> bool {
    program.statements.iter().all(|s| epsilon_valid(s, table, epsilon))
}

/// Program coverage: the average statement coverage (§2.2). Zero for the
/// empty program.
pub fn program_coverage(program: &Program, table: &Table) -> f64 {
    if program.statements.is_empty() {
        return 0.0;
    }
    let total: f64 = program.statements.iter().map(|s| statement_coverage(s, table)).sum();
    total / program.statements.len() as f64
}

/// Program loss: total branch loss across all statements.
pub fn program_loss(program: &Program, table: &Table) -> usize {
    program.statements.iter().flat_map(|s| s.branches.iter()).map(|b| branch_loss(b, table).0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn table() -> Table {
        // 6 rows: zip 94704 → Berkeley (3 good, 1 corrupted), 97201 → Portland (2 good).
        Table::from_csv_str(
            "zip,city\n94704,Berkeley\n94704,Berkeley\n94704,Berkeley\n94704,gibbon\n97201,Portland\n97201,Portland\n",
        )
        .unwrap()
    }

    fn program() -> Program {
        parse_program(
            r#"GIVEN zip ON city HAVING
                   IF zip = 94704 THEN city <- "Berkeley";
                   IF zip = 97201 THEN city <- "Portland";"#,
        )
        .unwrap()
    }

    #[test]
    fn branch_loss_and_support() {
        let p = program();
        let t = table();
        let b0 = &p.statements[0].branches[0];
        assert_eq!(branch_loss(b0, &t), (1, 4)); // one corrupted of four covered
        let b1 = &p.statements[0].branches[1];
        assert_eq!(branch_loss(b1, &t), (0, 2));
    }

    #[test]
    fn coverage_values() {
        let p = program();
        let t = table();
        assert!((coverage(&p.statements[0].branches[0], &t) - 4.0 / 6.0).abs() < 1e-12);
        assert!((statement_coverage(&p.statements[0], &t) - 1.0).abs() < 1e-12);
        assert!((program_coverage(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_thresholds() {
        let p = program();
        let t = table();
        let s = &p.statements[0];
        // Branch 0 loss = 1, support = 4 → needs ε ≥ 0.25.
        assert!(!epsilon_valid(s, &t, 0.1));
        assert!(epsilon_valid(s, &t, 0.25));
        assert!(program_epsilon_valid(&p, &t, 0.25));
        assert!(!program_epsilon_valid(&p, &t, 0.2));
    }

    #[test]
    fn empty_program_is_trivially_valid() {
        let t = table();
        let p = Program::empty();
        assert!(program_epsilon_valid(&p, &t, 0.0));
        assert_eq!(program_coverage(&p, &t), 0.0);
        assert_eq!(program_loss(&p, &t), 0);
    }

    #[test]
    fn program_loss_totals_branches() {
        assert_eq!(program_loss(&program(), &table()), 1);
    }

    #[test]
    fn coverage_of_empty_table() {
        // Header-only CSV parses to a zero-row table.
        let t = Table::from_csv_str("zip,city\n").unwrap();
        assert_eq!(t.num_rows(), 0);
        let p = program();
        assert_eq!(coverage(&p.statements[0].branches[0], &t), 0.0);
    }
}
