//! The 12 evaluation datasets, mirroring Table 2 of the paper.
//!
//! Each spec reproduces the paper's dataset id, name, category, attribute
//! count, and row count; content is sampled from a seeded ground-truth SEM
//! (see `DESIGN.md`, substitution 1). Datasets #4–#6 are deliberately given
//! high-cardinality attributes relative to their small row counts: that is
//! the regime where learning on the raw data starves the independence tests
//! and the auxiliary sampler earns its keep (the Table 8 ablation, where the
//! identity sampler's coverage collapses to 0 on exactly those datasets).

use crate::cancer::cancer_network;
use crate::random::{random_sem, RandomSemConfig};
use crate::sem::DiscreteSem;
use guardrail_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Static description of one evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Paper dataset id (1–12).
    pub id: u8,
    /// Dataset name from Table 2.
    pub name: &'static str,
    /// Category from Table 2.
    pub category: &'static str,
    /// Attribute count from Table 2.
    pub attrs: usize,
    /// Row count from Table 2.
    pub rows: usize,
}

/// A materialized dataset: clean table + the SEM that generated it.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The static spec.
    pub spec: DatasetSpec,
    /// Clean sampled table (`spec.rows` rows unless capped).
    pub clean: Table,
    /// Ground-truth SEM (known exactly, unlike the paper's real data).
    pub sem: DiscreteSem,
    /// Column index of the ML prediction target.
    pub label_col: usize,
}

impl GeneratedDataset {
    /// Name of the label column.
    pub fn label_name(&self) -> &str {
        self.clean.schema().field(self.label_col).expect("label in schema").name()
    }
}

const SPECS: [DatasetSpec; 12] = [
    DatasetSpec { id: 1, name: "Adult", category: "Demographic", attrs: 15, rows: 48842 },
    DatasetSpec { id: 2, name: "Lung Cancer", category: "Medical", attrs: 5, rows: 20000 },
    DatasetSpec { id: 3, name: "Cylinder Bands", category: "Manufacturing", attrs: 40, rows: 540 },
    DatasetSpec { id: 4, name: "Diabetes", category: "Medical", attrs: 9, rows: 520 },
    DatasetSpec {
        id: 5,
        name: "Contraceptive Method Choice",
        category: "Demographic",
        attrs: 10,
        rows: 1473,
    },
    DatasetSpec {
        id: 6,
        name: "Blood Transfusion Service Center",
        category: "Medical",
        attrs: 4,
        rows: 748,
    },
    DatasetSpec {
        id: 7,
        name: "Steel Plates Faults",
        category: "Manufacturing",
        attrs: 28,
        rows: 1941,
    },
    DatasetSpec { id: 8, name: "Jungle Chess", category: "Game", attrs: 7, rows: 44819 },
    DatasetSpec {
        id: 9,
        name: "Telco Customer Churn",
        category: "Business",
        attrs: 21,
        rows: 7043,
    },
    DatasetSpec { id: 10, name: "Bank Marketing", category: "Business", attrs: 17, rows: 45211 },
    DatasetSpec { id: 11, name: "Phishing Websites", category: "Security", attrs: 31, rows: 11055 },
    DatasetSpec {
        id: 12,
        name: "Hotel Reservations",
        category: "Business",
        attrs: 18,
        rows: 36275,
    },
];

/// The Adult dataset's real attribute names, used so example SQL queries read
/// like the paper's case study.
const ADULT_NAMES: [&str; 15] = [
    "age",
    "workclass",
    "fnlwgt",
    "education",
    "education-num",
    "marital-status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital-gain",
    "capital-loss",
    "hours-per-week",
    "native-country",
    "income",
];

/// All valid dataset ids.
pub fn paper_dataset_ids() -> impl Iterator<Item = u8> {
    1..=12
}

/// The static spec for dataset `id` (1–12).
pub fn dataset_spec(id: u8) -> DatasetSpec {
    assert!((1..=12).contains(&id), "dataset id must be 1–12");
    SPECS[id as usize - 1]
}

/// Materializes dataset `id`, sampling at most `rows_cap` rows (use
/// `usize::MAX` for paper-scale row counts).
pub fn paper_dataset(id: u8, rows_cap: usize) -> GeneratedDataset {
    let spec = dataset_spec(id);
    let rows = spec.rows.min(rows_cap);
    let sem = build_sem(spec);
    let mut rng = StdRng::seed_from_u64(0xD5_0000 + id as u64);
    let clean = sem.sample(rows, &mut rng);
    let label_col = spec.attrs - 1;
    GeneratedDataset { spec, clean, sem, label_col }
}

fn build_sem(spec: DatasetSpec) -> DiscreteSem {
    if spec.id == 2 {
        // The paper's Lung Cancer dataset is sampled from the CANCER network;
        // sharpen the symptom CPTs into the near-deterministic regime so the
        // network carries discoverable constraints. The label is `dysp` —
        // the very attribute Bob's ML query predicts in Example 1.1.
        return cancer_network(0.997);
    }
    // Small datasets (#3–#6) get higher cardinalities: with few rows, raw
    // contingency tests starve there while the binary auxiliary view stays
    // testable.
    let (min_card, max_card) = match spec.id {
        3 => (3, 8),
        // High enough that raw contingency tests starve at 500–1500 rows
        // (5·12·12 ≈ 720 observations needed per pairwise test), low enough
        // that the binary auxiliary view stays informative.
        4..=6 => (4, 12),
        8 => (2, 8),
        _ => (2, 7),
    };
    let config = RandomSemConfig {
        attrs: spec.attrs,
        min_card,
        max_card,
        frac_deterministic: 0.45,
        frac_quasi: 0.25,
        // Real deterministic relationships (zip → city) hold essentially
        // exactly in clean data; residual exogenous noise is kept tiny so
        // natural violations do not drown injected errors. The synthesizer's
        // noise tolerance is exercised by the quasi-deterministic nodes and
        // by the injected errors themselves.
        det_noise: 0.0005,
        frac_roots: 0.3,
        seed: 0x5EE_D00 + spec.id as u64,
    };
    let sem = random_sem(&config);
    if spec.id == 1 {
        rename_to(sem, &ADULT_NAMES)
    } else {
        sem
    }
}

fn rename_to(sem: DiscreteSem, names: &[&str]) -> DiscreteSem {
    assert_eq!(sem.names().len(), names.len());
    sem.with_names(names.iter().map(|s| s.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2() {
        assert_eq!(dataset_spec(1).rows, 48842);
        assert_eq!(dataset_spec(1).attrs, 15);
        assert_eq!(dataset_spec(3).attrs, 40);
        assert_eq!(dataset_spec(6).attrs, 4);
        assert_eq!(dataset_spec(12).name, "Hotel Reservations");
        assert_eq!(paper_dataset_ids().count(), 12);
    }

    #[test]
    fn materialization_matches_spec() {
        for id in [2u8, 4, 6] {
            let d = paper_dataset(id, 500);
            assert_eq!(d.clean.num_columns(), d.spec.attrs);
            assert_eq!(d.clean.num_rows(), d.spec.rows.min(500));
            assert_eq!(d.label_col, d.spec.attrs - 1);
        }
    }

    #[test]
    fn adult_uses_real_names() {
        let d = paper_dataset(1, 100);
        assert_eq!(d.clean.schema().names()[5], "marital-status");
        assert_eq!(d.label_name(), "income");
    }

    #[test]
    fn lung_cancer_is_cancer_network() {
        let d = paper_dataset(2, 1000);
        assert_eq!(d.clean.schema().names(), vec!["pollution", "smoker", "cancer", "xray", "dysp"]);
        assert_eq!(d.label_name(), "dysp");
        assert_eq!(d.sem.dag().num_edges(), 4);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = paper_dataset(7, 200);
        let b = paper_dataset(7, 200);
        assert_eq!(a.clean.to_csv_string(), b.clean.to_csv_string());
    }

    #[test]
    #[should_panic(expected = "1–12")]
    fn invalid_id_rejected() {
        dataset_spec(0);
    }
}
