//! Dataset substrate: synthetic stand-ins for the paper's 12 datasets.
//!
//! The paper evaluates on UCI / OpenML / Kaggle datasets (Table 2) with
//! synthetically injected errors. Those files are not available offline, so —
//! per the substitution policy in `DESIGN.md` — this crate generates
//! datasets from known **structural equation models** (Def. 4.3):
//!
//! * [`sem`] — discrete SEMs: a DAG, per-node categorical functions
//!   (deterministic maps with flip noise, or full CPTs), and a sampler.
//! * [`cancer`] — the CANCER Bayesian network (bnlearn), the actual source
//!   the paper cites for its Lung Cancer dataset.
//! * [`random`] — seeded random SEM generation with a deterministic
//!   "backbone" (the relationships Guardrail can discover) plus noisy and
//!   independent attributes.
//! * [`paper`] — the 12 dataset specs mirroring Table 2 (ids, names,
//!   attribute counts, row counts) built on the generators above.
//! * [`inject`] — cell-level error injection with ground-truth tracking
//!   (§8's 1% rate with a small-dataset cap).
//! * [`chaos`] — fault-injection inputs (malformed CSV, adversarial
//!   schemas, statistically hostile tables) for the robustness suite.
//! * [`stream`] — streaming CSV → persistent-store batch ingestion, the
//!   loader behind the CLI's `ingest` command.
//!
//! Because the generating SEM is known, every experiment gains exact ground
//! truth: the true DAG, the true deterministic constraints, and the exact
//! set of corrupted cells.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancer;
pub mod chaos;
pub mod inject;
pub mod paper;
pub mod random;
pub mod sem;
pub mod stream;

pub use cancer::cancer_network;
pub use inject::{inject_errors, InjectConfig, InjectedError, InjectionReport};
pub use paper::{paper_dataset, paper_dataset_ids, DatasetSpec, GeneratedDataset};
pub use random::{random_sem, RandomSemConfig};
pub use sem::{DiscreteSem, NodeFunction};
pub use stream::{ingest_csv, CsvStream, IngestReport};
