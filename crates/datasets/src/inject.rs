//! Cell-level error injection with ground-truth tracking.
//!
//! §8 of the paper: "we ensure a fair comparison by randomly injecting data
//! errors into the datasets at a fixed error rate of 1% (or slightly higher
//! for datasets with fewer rows; capped at 30 errors)". Injection here is
//! cell-level: a corrupted cell either takes *another valid category* of its
//! column (a plausible-looking error) or a random garbage string (the
//! "Berkeley → gibbon" corruption of §2.1).

use guardrail_table::{Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Injection parameters.
#[derive(Debug, Clone)]
pub struct InjectConfig {
    /// Fraction of rows to corrupt (one cell per corrupted row).
    pub rate: f64,
    /// Row-count threshold under which the small-dataset rule applies.
    pub small_threshold: usize,
    /// Minimum errors for small datasets ("slightly higher" rate).
    pub small_floor: usize,
    /// Error cap for small datasets.
    pub small_cap: usize,
    /// Exact error count override; bypasses the rate computation.
    pub count: Option<usize>,
    /// Columns eligible for corruption (`None` = all).
    pub columns: Option<Vec<usize>>,
    /// Probability that a corrupted cell takes another valid category rather
    /// than a typo or garbage string.
    pub plausible_prob: f64,
    /// Probability that a corrupted cell becomes a single-character typo of
    /// its original value (tried after the plausible roll fails; the
    /// remainder becomes a garbage string).
    pub typo_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InjectConfig {
    fn default() -> Self {
        Self {
            rate: 0.01,
            small_threshold: 3000,
            small_floor: 10,
            small_cap: 30,
            count: None,
            columns: None,
            plausible_prob: 0.8,
            typo_prob: 0.1,
            seed: 0xBAD,
        }
    }
}

impl InjectConfig {
    /// Number of errors this config yields on a table with `rows` rows.
    pub fn error_count(&self, rows: usize) -> usize {
        if let Some(c) = self.count {
            return c.min(rows);
        }
        let target = (self.rate * rows as f64).ceil() as usize;
        let target = if rows < self.small_threshold {
            target.max(self.small_floor).min(self.small_cap)
        } else {
            target
        };
        target.min(rows)
    }
}

/// One injected error, with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedError {
    /// Corrupted row.
    pub row: usize,
    /// Corrupted column.
    pub col: usize,
    /// Original cell value.
    pub original: Value,
    /// Value written in its place.
    pub corrupted: Value,
}

/// Ground truth of an injection run.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// All injected errors.
    pub errors: Vec<InjectedError>,
}

impl InjectionReport {
    /// Sorted, distinct row indices that were corrupted.
    pub fn dirty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.errors.iter().map(|e| e.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// `true` when the given row holds at least one injected error.
    pub fn is_dirty(&self, row: usize) -> bool {
        self.errors.iter().any(|e| e.row == row)
    }
}

/// Corrupts `table` in place per `config`, returning the ground truth.
///
/// Each corrupted row gets exactly one corrupted cell; rows are drawn without
/// replacement so `report.dirty_rows().len()` equals the configured count
/// (up to the number of rows available).
pub fn inject_errors(table: &mut Table, config: &InjectConfig) -> InjectionReport {
    let rows = table.num_rows();
    let cols: Vec<usize> = match &config.columns {
        Some(c) => c.clone(),
        None => (0..table.num_columns()).collect(),
    };
    assert!(!cols.is_empty(), "no corruptible columns");
    let count = config.error_count(rows);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Sample distinct victim rows.
    let mut victims: Vec<usize> = (0..rows).collect();
    for i in (1..victims.len()).rev() {
        let j = rng.gen_range(0..=i);
        victims.swap(i, j);
    }
    victims.truncate(count);
    victims.sort_unstable();

    let mut report = InjectionReport::default();
    for (k, &row) in victims.iter().enumerate() {
        let col = cols[rng.gen_range(0..cols.len())];
        let original = table.get(row, col).expect("cell in range");
        let corrupted = corrupt_value(table, row, col, k, config, &mut rng);
        table.set(row, col, corrupted.clone()).expect("cell in range");
        report.errors.push(InjectedError { row, col, original, corrupted });
    }
    report
}

/// Draws a corrupted replacement for cell `(row, col)`: another valid
/// category, a one-character typo, or a garbage string, per `config`'s
/// probabilities. Shared with the adversarial error models in
/// [`crate::chaos`] so every injection flavor corrupts cells identically.
pub(crate) fn corrupt_value<R: Rng>(
    table: &Table,
    row: usize,
    col: usize,
    salt: usize,
    config: &InjectConfig,
    rng: &mut R,
) -> Value {
    let column = table.column(col).expect("column in range");
    let current = column.code(row);
    let distinct = column.distinct_count();
    let roll: f64 = rng.gen();
    if distinct >= 2 && roll < config.plausible_prob {
        // Swap in a different valid category.
        loop {
            let candidate = rng.gen_range(0..distinct) as u32;
            if candidate != current {
                return column.dictionary().decode(candidate);
            }
        }
    }
    if roll < config.plausible_prob + config.typo_prob {
        // Single-character typo of the rendered value (Berkeley → Berkeoey).
        let original = column.dictionary().decode(current).to_string();
        if let Some(typo) = make_typo(&original, rng) {
            return Value::from(typo);
        }
    }
    Value::from(format!("__corrupt_{salt}_{}", rng.gen_range(0..u32::MAX)))
}

/// Mutates one character of `s`; `None` for empty strings.
fn make_typo<R: Rng>(s: &str, rng: &mut R) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let pos = rng.gen_range(0..chars.len());
    let replacement = (b'a' + rng.gen_range(0..26u8)) as char;
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out[pos] = replacement,       // substitute
        1 => out.insert(pos, replacement), // insert
        _ => {
            out.remove(pos); // delete
            if out.is_empty() {
                out.push(replacement);
            }
        }
    }
    let typo: String = out.into_iter().collect();
    if typo == s {
        None
    } else {
        Some(typo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize) -> Table {
        let mut b = guardrail_table::TableBuilder::new(vec!["a".into(), "b".into()]);
        for i in 0..rows {
            b.push_row(vec![Value::Int((i % 5) as i64), Value::from(format!("v{}", i % 3))])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn error_count_rules() {
        let c = InjectConfig::default();
        assert_eq!(c.error_count(48_842), 489); // ceil(1%)
        assert_eq!(c.error_count(540), 10); // small floor
        assert_eq!(c.error_count(2900), 29); // 1% within [10, 30]
        assert_eq!(c.error_count(2999), 30); // capped at 30
        let exact = InjectConfig { count: Some(7), ..Default::default() };
        assert_eq!(exact.error_count(1000), 7);
        assert_eq!(exact.error_count(3), 3); // never exceeds rows
    }

    #[test]
    fn injection_matches_ground_truth() {
        let mut t = table(500);
        let clean = t.clone();
        let report = inject_errors(&mut t, &InjectConfig::default());
        assert_eq!(report.errors.len(), 10);
        assert_eq!(report.dirty_rows().len(), 10);
        for e in &report.errors {
            assert_ne!(e.original, e.corrupted, "corruption must change the value");
            assert_eq!(t.get(e.row, e.col), Some(e.corrupted.clone()));
            assert_eq!(clean.get(e.row, e.col), Some(e.original.clone()));
        }
        // Untouched rows are identical to the clean table.
        for row in 0..500 {
            if !report.is_dirty(row) {
                for col in 0..2 {
                    assert_eq!(t.get(row, col), clean.get(row, col));
                }
            }
        }
    }

    #[test]
    fn column_restriction_respected() {
        let mut t = table(400);
        let config = InjectConfig { columns: Some(vec![1]), ..Default::default() };
        let report = inject_errors(&mut t, &config);
        assert!(report.errors.iter().all(|e| e.col == 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut t1 = table(300);
        let mut t2 = table(300);
        let r1 = inject_errors(&mut t1, &InjectConfig::default());
        let r2 = inject_errors(&mut t2, &InjectConfig::default());
        assert_eq!(r1.errors, r2.errors);
        let r3 = inject_errors(&mut table(300), &InjectConfig { seed: 1, ..Default::default() });
        assert_ne!(r1.errors, r3.errors);
    }

    #[test]
    fn garbage_corruption_possible() {
        let mut t = table(200);
        let config = InjectConfig {
            plausible_prob: 0.0,
            typo_prob: 0.0,
            count: Some(20),
            ..Default::default()
        };
        let report = inject_errors(&mut t, &config);
        assert!(report
            .errors
            .iter()
            .all(|e| matches!(&e.corrupted, Value::Str(s) if s.starts_with("__corrupt_"))));
    }

    #[test]
    fn typo_corruption_mutates_one_character() {
        let mut t = table(300);
        let config = InjectConfig {
            plausible_prob: 0.0,
            typo_prob: 1.0,
            count: Some(40),
            ..Default::default()
        };
        let report = inject_errors(&mut t, &config);
        for e in &report.errors {
            let orig = e.original.to_string();
            let corr = e.corrupted.to_string();
            assert_ne!(orig, corr);
            // Edit distance 1 bound: lengths differ by at most one.
            assert!(
                (orig.len() as i64 - corr.len() as i64).abs() <= 1,
                "{orig:?} → {corr:?} is not a single-character typo"
            );
        }
    }

    #[test]
    fn make_typo_properties() {
        let mut rng = StdRng::seed_from_u64(5);
        for s in ["Berkeley", "x", "94704"] {
            let mut produced = 0;
            for _ in 0..30 {
                // None is legal (a substitution may draw the same character);
                // any produced typo must differ from the original.
                if let Some(t) = make_typo(s, &mut rng) {
                    assert_ne!(t, s);
                    produced += 1;
                }
            }
            assert!(produced > 20, "typos should usually succeed ({produced}/30 for {s:?})");
        }
        assert_eq!(make_typo("", &mut rng), None);
    }
}
