//! Discrete structural equation models.

use guardrail_graph::Dag;
use guardrail_table::{Table, TableBuilder, Value};
use rand::Rng;

/// How one node's value is generated from its parents (Def. 4.3's `f_X`).
#[derive(Debug, Clone)]
pub enum NodeFunction {
    /// Root node: sampled from a categorical marginal.
    Root {
        /// Marginal probabilities, one per category (must sum to ~1).
        probs: Vec<f64>,
    },
    /// Deterministic function of the parents with exogenous flip noise:
    /// with probability `1 − noise` the value is `table[parent_config]`,
    /// otherwise a uniformly random category. `noise = 0` gives the pure
    /// deterministic DGP of §2.1.
    Deterministic {
        /// `table[mixed-radix parent configuration] = output code`.
        table: Vec<u32>,
        /// Exogenous flip probability in `[0, 1)`.
        noise: f64,
    },
    /// Full conditional probability table: `probs[config * card + code]`.
    Cpt {
        /// Row-major CPT over parent configurations.
        probs: Vec<f64>,
    },
}

/// A discrete SEM: ground-truth DAG, per-node cardinalities, and generating
/// functions. Sampling a SEM yields a [`Table`]; the DAG is the ground truth
/// that structure learning should recover (up to Markov equivalence).
#[derive(Debug, Clone)]
pub struct DiscreteSem {
    dag: Dag,
    cards: Vec<usize>,
    names: Vec<String>,
    funcs: Vec<NodeFunction>,
    /// Per-node value labels used when materializing tables; `None` renders
    /// codes as `v<code>` integers.
    labels: Vec<Option<Vec<String>>>,
}

impl DiscreteSem {
    /// Assembles a SEM, validating shape consistency.
    ///
    /// # Panics
    /// Panics when lengths disagree, a function's table does not match the
    /// node's parent configuration count, or probabilities are malformed.
    pub fn new(dag: Dag, cards: Vec<usize>, names: Vec<String>, funcs: Vec<NodeFunction>) -> Self {
        let n = dag.num_nodes();
        assert_eq!(cards.len(), n);
        assert_eq!(names.len(), n);
        assert_eq!(funcs.len(), n);
        for v in 0..n {
            let configs: usize = dag.parents(v).iter().map(|p| cards[p]).product();
            match &funcs[v] {
                NodeFunction::Root { probs } => {
                    assert!(dag.parents(v).is_empty(), "root function on non-root node {v}");
                    assert_eq!(probs.len(), cards[v], "marginal size mismatch at node {v}");
                }
                NodeFunction::Deterministic { table, noise } => {
                    assert!(!dag.parents(v).is_empty(), "deterministic function needs parents");
                    assert_eq!(table.len(), configs, "table size mismatch at node {v}");
                    assert!(table.iter().all(|&c| (c as usize) < cards[v]));
                    assert!((0.0..1.0).contains(noise));
                }
                NodeFunction::Cpt { probs } => {
                    assert_eq!(
                        probs.len(),
                        configs.max(1) * cards[v],
                        "CPT size mismatch at node {v}"
                    );
                }
            }
        }
        let labels = vec![None; n];
        Self { dag, cards, names, funcs, labels }
    }

    /// Replaces all attribute names (arity must match).
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.names.len(), "one name per attribute");
        self.names = names;
        self
    }

    /// Attaches human-readable value labels to a node.
    pub fn with_labels(mut self, node: usize, labels: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.cards[node], "one label per category");
        self.labels[node] = Some(labels);
        self
    }

    /// The ground-truth DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Per-node cardinalities.
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Attribute names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Nodes whose function is (noisily) deterministic — the relationships a
    /// constraint synthesizer can hope to discover.
    pub fn deterministic_nodes(&self) -> Vec<usize> {
        (0..self.funcs.len())
            .filter(|&v| matches!(self.funcs[v], NodeFunction::Deterministic { .. }))
            .collect()
    }

    /// Samples one value for node `v` given parent codes (mixed-radix packed
    /// by [`DiscreteSem::config_index`]).
    fn sample_node<R: Rng>(&self, v: usize, config: usize, rng: &mut R) -> u32 {
        let card = self.cards[v];
        match &self.funcs[v] {
            NodeFunction::Root { probs } => sample_categorical(probs, rng),
            NodeFunction::Deterministic { table, noise } => {
                if *noise > 0.0 && rng.gen::<f64>() < *noise {
                    rng.gen_range(0..card) as u32
                } else {
                    table[config]
                }
            }
            NodeFunction::Cpt { probs } => {
                sample_categorical(&probs[config * card..(config + 1) * card], rng)
            }
        }
    }

    /// Mixed-radix index of the parent configuration of node `v` in `codes`.
    fn config_index(&self, v: usize, codes: &[u32]) -> usize {
        let mut idx = 0usize;
        for p in self.dag.parents(v).iter() {
            idx = idx * self.cards[p] + codes[p] as usize;
        }
        idx
    }

    /// Samples `rows` rows into a [`Table`].
    pub fn sample<R: Rng>(&self, rows: usize, rng: &mut R) -> Table {
        let order = self.dag.topological_order().expect("SEM DAG is acyclic");
        let n = self.dag.num_nodes();
        let mut builder = TableBuilder::new(self.names.clone());
        let mut codes = vec![0u32; n];
        for _ in 0..rows {
            for &v in &order {
                let config = self.config_index(v, &codes);
                codes[v] = self.sample_node(v, config, rng);
            }
            let values = (0..n).map(|v| self.render(v, codes[v])).collect();
            builder.push_row(values).expect("arity matches");
        }
        builder.finish().expect("non-empty schema")
    }

    /// Renders a code of node `v` as a cell value.
    pub fn render(&self, v: usize, code: u32) -> Value {
        match &self.labels[v] {
            Some(labels) => Value::from(labels[code as usize].clone()),
            None => Value::Int(code as i64),
        }
    }
}

fn sample_categorical<R: Rng>(probs: &[f64], rng: &mut R) -> u32 {
    let total: f64 = probs.iter().sum();
    debug_assert!((total - 1.0).abs() < 1e-6, "probabilities must sum to 1, got {total}");
    let mut x = rng.gen::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        x -= p;
        if x <= 0.0 {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// zip → city, deterministic, 4 zips → 2 cities.
    fn zip_city_sem(noise: f64) -> DiscreteSem {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        DiscreteSem::new(
            dag,
            vec![4, 2],
            vec!["zip".into(), "city".into()],
            vec![
                NodeFunction::Root { probs: vec![0.25; 4] },
                NodeFunction::Deterministic { table: vec![0, 0, 1, 1], noise },
            ],
        )
    }

    #[test]
    fn deterministic_sampling_obeys_table() {
        let sem = zip_city_sem(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let t = sem.sample(500, &mut rng);
        assert_eq!(t.num_rows(), 500);
        for row in 0..500 {
            let zip = t.get(row, 0).unwrap().as_i64().unwrap();
            let city = t.get(row, 1).unwrap().as_i64().unwrap();
            assert_eq!(city, if zip < 2 { 0 } else { 1 });
        }
    }

    #[test]
    fn noise_rate_is_respected() {
        let sem = zip_city_sem(0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let t = sem.sample(5000, &mut rng);
        let mismatches = (0..5000)
            .filter(|&row| {
                let zip = t.get(row, 0).unwrap().as_i64().unwrap();
                let city = t.get(row, 1).unwrap().as_i64().unwrap();
                city != if zip < 2 { 0 } else { 1 }
            })
            .count();
        // flip noise 0.2 lands on the wrong value half the time (card 2).
        let rate = mismatches as f64 / 5000.0;
        assert!((0.05..0.15).contains(&rate), "observed mismatch rate {rate}");
    }

    #[test]
    fn labels_render_as_strings() {
        let sem = zip_city_sem(0.0).with_labels(1, vec!["Berkeley".into(), "Portland".into()]);
        let mut rng = StdRng::seed_from_u64(3);
        let t = sem.sample(10, &mut rng);
        let v = t.get(0, 1).unwrap();
        assert!(matches!(v, Value::Str(_)));
    }

    #[test]
    fn cpt_sampling_matches_marginal() {
        // Single root with skewed marginal.
        let dag = Dag::new(1);
        let sem = DiscreteSem::new(
            dag,
            vec![2],
            vec!["x".into()],
            vec![NodeFunction::Root { probs: vec![0.9, 0.1] }],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let t = sem.sample(10_000, &mut rng);
        let ones = t.column(0).unwrap().iter().filter(|v| v.as_i64() == Some(1)).count();
        let rate = ones as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn deterministic_nodes_listed() {
        let sem = zip_city_sem(0.01);
        assert_eq!(sem.deterministic_nodes(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn shape_validation() {
        let dag = Dag::from_edges(2, &[(0, 1)]).unwrap();
        DiscreteSem::new(
            dag,
            vec![4, 2],
            vec!["a".into(), "b".into()],
            vec![
                NodeFunction::Root { probs: vec![0.25; 4] },
                NodeFunction::Deterministic { table: vec![0, 1], noise: 0.0 },
            ],
        );
    }
}
