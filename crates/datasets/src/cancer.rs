//! The CANCER Bayesian network (bnlearn's discrete-small repository).
//!
//! This is the actual source the paper cites for its "Lung Cancer" dataset
//! (Table 9 of the appendix): five binary variables with the structure
//!
//! ```text
//! Pollution → Cancer ← Smoker
//!             Cancer → Xray
//!             Cancer → Dyspnoea
//! ```
//!
//! We reproduce the published CPTs, with a `determinism` knob that sharpens
//! the symptom CPTs toward the deterministic DGP regime Guardrail targets
//! (at `1.0` the published probabilities are used unchanged).

use crate::sem::{DiscreteSem, NodeFunction};
use guardrail_graph::Dag;

/// Node indices of the CANCER network.
pub mod nodes {
    /// Pollution (low/high).
    pub const POLLUTION: usize = 0;
    /// Smoker (true/false).
    pub const SMOKER: usize = 1;
    /// Cancer (true/false).
    pub const CANCER: usize = 2;
    /// X-ray result (positive/negative).
    pub const XRAY: usize = 3;
    /// Dyspnoea / shortness of breath (true/false).
    pub const DYSP: usize = 4;
}

/// Builds the CANCER network as a [`DiscreteSem`].
///
/// `sharpen ∈ [0, 1]` interpolates the symptom CPTs between the published
/// probabilistic tables (`0.0`) and fully deterministic indicators (`1.0`).
/// The paper's constraint-synthesis experiments need near-deterministic
/// symptom links; its ML experiments use the stochastic ones.
pub fn cancer_network(sharpen: f64) -> DiscreteSem {
    assert!((0.0..=1.0).contains(&sharpen), "sharpen must be in [0,1]");
    let dag = Dag::from_edges(
        5,
        &[
            (nodes::POLLUTION, nodes::CANCER),
            (nodes::SMOKER, nodes::CANCER),
            (nodes::CANCER, nodes::XRAY),
            (nodes::CANCER, nodes::DYSP),
        ],
    )
    .expect("CANCER structure is acyclic");

    // Published parameters (bnlearn "cancer"):
    //   P(Pollution = low) = 0.9
    //   P(Smoker = true)   = 0.3
    //   P(Cancer | low,  smoker)    = 0.03
    //   P(Cancer | low,  nonsmoker) = 0.001
    //   P(Cancer | high, smoker)    = 0.05
    //   P(Cancer | high, nonsmoker) = 0.02
    //   P(Xray = positive | cancer) = 0.9,  | no cancer) = 0.2
    //   P(Dysp = true     | cancer) = 0.65, | no cancer) = 0.3
    // Encoding: code 0 = "low"/"false"/"negative", code 1 = "high"/"true"/"positive".
    let cancer_cpt = {
        // parent order follows node index: Pollution (outer), Smoker (inner).
        let p = [
            0.001, // low, nonsmoker
            0.03,  // low, smoker
            0.02,  // high, nonsmoker
            0.05,  // high, smoker
        ];
        let mut cpt = Vec::with_capacity(8);
        for &pc in &p {
            cpt.push(1.0 - pc);
            cpt.push(pc);
        }
        cpt
    };
    let sharpened = |p_true_given_false: f64, p_true_given_true: f64| {
        let lo = p_true_given_false * (1.0 - sharpen);
        let hi = p_true_given_true * (1.0 - sharpen) + sharpen;
        vec![1.0 - lo, lo, 1.0 - hi, hi]
    };

    DiscreteSem::new(
        dag,
        vec![2, 2, 2, 2, 2],
        vec!["pollution".into(), "smoker".into(), "cancer".into(), "xray".into(), "dysp".into()],
        vec![
            NodeFunction::Root { probs: vec![0.9, 0.1] },
            NodeFunction::Root { probs: vec![0.7, 0.3] },
            NodeFunction::Cpt { probs: cancer_cpt },
            NodeFunction::Cpt { probs: sharpened(0.2, 0.9) },
            NodeFunction::Cpt { probs: sharpened(0.3, 0.65) },
        ],
    )
    .with_labels(nodes::POLLUTION, vec!["low".into(), "high".into()])
    .with_labels(nodes::SMOKER, vec!["no".into(), "yes".into()])
    .with_labels(nodes::CANCER, vec!["no".into(), "yes".into()])
    .with_labels(nodes::XRAY, vec!["negative".into(), "positive".into()])
    .with_labels(nodes::DYSP, vec!["no".into(), "yes".into()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_matches_published_network() {
        let sem = cancer_network(0.0);
        let dag = sem.dag();
        assert!(dag.has_edge(nodes::POLLUTION, nodes::CANCER));
        assert!(dag.has_edge(nodes::SMOKER, nodes::CANCER));
        assert!(dag.has_edge(nodes::CANCER, nodes::XRAY));
        assert!(dag.has_edge(nodes::CANCER, nodes::DYSP));
        assert_eq!(dag.num_edges(), 4);
    }

    #[test]
    fn marginals_match_published_parameters() {
        let sem = cancer_network(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let t = sem.sample(20_000, &mut rng);
        let frac = |col: usize, label: &str| {
            t.column(col).unwrap().iter().filter(|v| v.as_str() == Some(label)).count() as f64
                / 20_000.0
        };
        assert!((frac(nodes::POLLUTION, "high") - 0.1).abs() < 0.01);
        assert!((frac(nodes::SMOKER, "yes") - 0.3).abs() < 0.015);
        // P(cancer) = 0.9(0.7·0.001 + 0.3·0.03) + 0.1(0.7·0.02 + 0.3·0.05) ≈ 0.0116
        let pc = frac(nodes::CANCER, "yes");
        assert!((pc - 0.0116).abs() < 0.005, "P(cancer) = {pc}");
    }

    #[test]
    fn sharpened_network_is_nearly_deterministic() {
        let sem = cancer_network(0.97);
        let mut rng = StdRng::seed_from_u64(6);
        let t = sem.sample(5000, &mut rng);
        let mismatch = (0..5000)
            .filter(|&r| {
                t.get(r, nodes::XRAY).unwrap().as_str()
                    != Some(if t.get(r, nodes::CANCER).unwrap().as_str() == Some("yes") {
                        "positive"
                    } else {
                        "negative"
                    })
            })
            .count();
        // residual noise ≈ 0.03 · 0.2 on the no-cancer branch.
        assert!(mismatch < 100, "mismatches = {mismatch}");
    }
}
