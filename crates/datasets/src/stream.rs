//! Streaming batch ingestion: CSV files → persistent [`TableStore`]s.
//!
//! The whole-file loaders elsewhere in the workspace cap table size at
//! available RAM and make every append a full reload. This module is the
//! loader the CLI's `ingest` command drives instead: a [`CsvStream`] pulls
//! bounded row batches off a [`CsvBatchReader`] (same record grammar and
//! type inference as `Table::from_csv_str`, so streamed ingestion is
//! bit-identical to a whole-file load), and [`ingest_csv`] feeds those
//! batches into a segment + WAL store — the first batch becomes the base
//! segment on a fresh store, every later batch a durable WAL append.
//!
//! ```no_run
//! use guardrail_datasets::stream::ingest_csv;
//!
//! let report = ingest_csv("data.csv", "store_dir", 8192).unwrap();
//! eprintln!("{} rows in {} batch(es)", report.rows_ingested, report.batches);
//! ```

use guardrail_table::{CsvBatchReader, Table, TableBuilder, TableError, TableSource, TableStore};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// A streaming CSV source yielding row batches of bounded size, with
/// running row/batch accounting for progress reporting.
pub struct CsvStream {
    reader: CsvBatchReader<BufReader<File>>,
    rows_read: usize,
    batches_read: usize,
}

impl CsvStream {
    /// Opens `path` and parses the header; batches hold at most
    /// `batch_rows` rows (minimum 1).
    pub fn open(path: impl AsRef<Path>, batch_rows: usize) -> Result<Self, TableError> {
        let file = File::open(path.as_ref())?;
        let reader = CsvBatchReader::new(BufReader::new(file), batch_rows)?;
        Ok(CsvStream { reader, rows_read: 0, batches_read: 0 })
    }

    /// The trimmed header fields.
    pub fn header(&self) -> &[String] {
        self.reader.header()
    }

    /// The next batch of rows, or `None` once the file is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        let batch = self.reader.next_batch()?;
        if let Some(batch) = &batch {
            self.rows_read += batch.num_rows();
            self.batches_read += 1;
        }
        Ok(batch)
    }

    /// Data rows yielded so far (header excluded).
    pub fn rows_read(&self) -> usize {
        self.rows_read
    }

    /// Batches yielded so far.
    pub fn batches_read(&self) -> usize {
        self.batches_read
    }
}

/// What [`ingest_csv`] did, for `--report`-style output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Whether the store was created by this ingest (vs appended to).
    pub created: bool,
    /// Rows read from the CSV and written to the store.
    pub rows_ingested: usize,
    /// Batches the rows arrived in.
    pub batches: usize,
    /// Store row count after the ingest.
    pub rows_total: usize,
    /// WAL batches pending compaction after the ingest.
    pub wal_batches: usize,
}

/// Streams `csv_path` into the store at `store_dir` in `batch_rows`-row
/// batches.
///
/// A fresh store is created with the first batch as its base segment (or
/// an empty table of the CSV's schema when the file holds only a header);
/// an existing store gains one durable WAL batch per streamed batch.
/// Because batches are interned in row order, the resulting store is
/// bit-identical to one created from the whole file at once.
pub fn ingest_csv(
    csv_path: impl AsRef<Path>,
    store_dir: impl AsRef<Path>,
    batch_rows: usize,
) -> Result<IngestReport, TableError> {
    let mut stream = CsvStream::open(csv_path, batch_rows)?;
    let mut store: Option<TableStore> =
        if TableStore::exists(&store_dir) { Some(TableStore::open(&store_dir)?) } else { None };
    let created = store.is_none();
    while let Some(batch) = stream.next_batch()? {
        match &mut store {
            Some(store) => {
                store.append_table(&batch)?;
            }
            None => store = Some(TableStore::create(&store_dir, &batch)?),
        }
    }
    let store = match store {
        Some(store) => store,
        // Header-only CSV onto a fresh store: create it empty so the
        // schema is pinned and later appends have something to land in.
        None => {
            let empty = TableBuilder::new(stream.header().to_vec()).finish()?;
            TableStore::create(&store_dir, &empty)?
        }
    };
    Ok(IngestReport {
        created,
        rows_ingested: stream.rows_read(),
        batches: stream.batches_read(),
        rows_total: store.num_rows(),
        wal_batches: store.wal_batches().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_table::TableSource;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("guardrail-stream-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_csv(dir: &Path, name: &str, rows: usize) -> std::path::PathBuf {
        let mut csv = String::from("zip,city\n");
        for i in 0..rows {
            csv.push_str(if i % 2 == 0 { "west,Berkeley\n" } else { "north,Portland\n" });
        }
        let path = dir.join(name);
        std::fs::write(&path, csv).unwrap();
        path
    }

    #[test]
    fn streamed_ingest_matches_whole_file_load() {
        let dir = tmp("match");
        let csv = write_csv(&dir, "data.csv", 1000);
        let report = ingest_csv(&csv, dir.join("store"), 64).unwrap();
        assert!(report.created);
        assert_eq!((report.rows_ingested, report.rows_total), (1000, 1000));
        assert_eq!(report.batches, 16, "1000 rows in 64-row batches");
        let store = TableStore::open(dir.join("store")).unwrap();
        let whole = Table::from_csv_path(&csv).unwrap();
        assert_eq!(*store.as_table(), whole, "streamed store equals whole-file load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_ingest_appends_to_the_existing_store() {
        let dir = tmp("append");
        let csv = write_csv(&dir, "data.csv", 10);
        let first = ingest_csv(&csv, dir.join("store"), 4).unwrap();
        assert!(first.created);
        let second = ingest_csv(&csv, dir.join("store"), 4).unwrap();
        assert!(!second.created);
        assert_eq!(second.rows_total, 20);
        // First ingest: base segment + 2 WAL batches; second: 3 more.
        assert_eq!(second.wal_batches, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_only_csv_creates_an_empty_store_with_schema() {
        let dir = tmp("empty");
        let csv = dir.join("data.csv");
        std::fs::write(&csv, "zip,city\n").unwrap();
        let report = ingest_csv(&csv, dir.join("store"), 8).unwrap();
        assert!(report.created);
        assert_eq!((report.rows_ingested, report.rows_total), (0, 0));
        let store = TableStore::open(dir.join("store")).unwrap();
        assert_eq!(store.schema().names(), ["zip", "city"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
