//! Fault-injection inputs for robustness testing.
//!
//! Everything the outside world can throw at Guardrail's ingestion and
//! synthesis paths, generated deterministically from a seed so failures
//! reproduce: malformed CSV (ragged records, quote bombs, raw garbage
//! bytes), adversarial schemas (hundreds of columns, astronomically large
//! determinant key spaces), and statistically hostile data (near-uniform
//! noise, densely entangled attributes that blow up the MEC). The
//! `tests/robustness.rs` suite feeds these to the typed-error entry points
//! and to budgeted synthesis and asserts two invariants: *never panic* and
//! *always return within budget*.

use crate::inject::{corrupt_value, InjectConfig, InjectedError, InjectionReport};
use guardrail_table::{Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CSV whose records disagree about the number of fields (the most common
/// real-world corruption). The header has 4 columns; data rows have 0–8.
pub fn ragged_csv(seed: u64, rows: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut csv = String::from("a,b,c,d\n");
    for i in 0..rows {
        let fields = rng.gen_range(0usize..=8);
        let row: Vec<String> = (0..fields).map(|f| format!("v{i}_{f}")).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// Deterministic pseudo-random bytes, including nulls, non-UTF-8 sequences,
/// stray quotes, and control characters — a stand-in for feeding Guardrail a
/// binary file by mistake.
pub fn garbage_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

/// CSV with pathological quoting: unterminated quotes, quotes mid-field, and
/// embedded newlines designed to desynchronize naive parsers.
pub fn quote_bomb() -> String {
    let mut csv = String::from("a,b\n");
    csv.push_str("\"embedded\nnewline\",ok\n");
    csv.push_str("\"doubled \"\" quote\",ok\n");
    csv.push_str("plain,als\"o fine?\n"); // quote inside unquoted field
    csv.push_str("\"unterminated,oops\n"); // never closed
    csv
}

/// A syntactically valid CSV with `cols` columns and `rows` rows — wide
/// enough to exceed structure learning's node capacity when `cols > 128`,
/// which must surface as a typed error rather than a panic.
pub fn wide_csv(cols: usize, rows: usize) -> String {
    let header: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
    let mut csv = header.join(",");
    csv.push('\n');
    for r in 0..rows {
        let row: Vec<String> = (0..cols).map(|c| ((r + c) % 10).to_string()).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// A table of i.i.d. near-uniform noise: no attribute explains any other, so
/// every candidate branch hovers at the ε-validity boundary and synthesis
/// should return an empty (or near-empty) program rather than inventing
/// constraints.
pub fn near_uniform_table(attrs: usize, rows: usize, cardinality: usize, seed: u64) -> Table {
    assert!(attrs > 0 && cardinality > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..attrs).map(|a| format!("u{a}")).collect();
    let mut b = TableBuilder::new(names);
    for _ in 0..rows {
        let row: Vec<Value> =
            (0..attrs).map(|_| Value::Int(rng.gen_range(0..cardinality as i64))).collect();
        b.push_row(row).unwrap_or_else(|e| unreachable!("row arity is fixed: {e}"));
    }
    b.finish().unwrap_or_else(|e| unreachable!("columns are consistent: {e}"))
}

/// A table whose attributes are all noisy copies of one latent variable:
/// pairwise dependence everywhere with no colliders, so the learned CPDAG is
/// dense and largely undirected and the MEC is combinatorially large — the
/// worst case for Alg. 2's enumeration, used to exercise deadlines.
pub fn entangled_table(attrs: usize, rows: usize, seed: u64) -> Table {
    assert!(attrs > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..attrs).map(|a| format!("e{a}")).collect();
    let mut b = TableBuilder::new(names);
    for _ in 0..rows {
        let latent = rng.gen_range(0i64..4);
        let row: Vec<Value> = (0..attrs)
            .map(|_| {
                let v = if rng.gen_ratio(1, 40) { rng.gen_range(0i64..4) } else { latent };
                Value::Int(v)
            })
            .collect();
        b.push_row(row).unwrap_or_else(|e| unreachable!("row arity is fixed: {e}"));
    }
    b.finish().unwrap_or_else(|e| unreachable!("columns are consistent: {e}"))
}

/// Adversarial error models beyond [`crate::inject`]'s i.i.d. one-cell-per-
/// row injection (the paper's fixed 1%-rate / 30-error-cap regime). Real
/// corruption is rarely independent: a bad upstream join corrupts several
/// cells of the *same* record at once, and a failed batch load corrupts a
/// *contiguous range* of records. Both models reuse the same cell-level
/// corruption kernel as `inject_errors` (plausible swap / typo / garbage),
/// are fully determined by their seed, and return the same ground-truth
/// [`InjectionReport`], so detection suites can score them identically.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorModel {
    /// Correlated corruption: each victim row gets `cells_per_row` distinct
    /// corrupted cells (co-occurring within the row), across `rows` victim
    /// rows drawn without replacement.
    Correlated {
        /// Victim rows to corrupt.
        rows: usize,
        /// Distinct cells corrupted in each victim row (clamped to the
        /// table's column count).
        cells_per_row: usize,
    },
    /// Bursty corruption: `bursts` contiguous row ranges of `burst_len`
    /// rows each, every row in a burst getting one corrupted cell.
    /// Overlapping bursts merge (a row is corrupted at most once).
    Bursty {
        /// Number of contiguous corrupted ranges.
        bursts: usize,
        /// Rows per range (clamped to the table's row count).
        burst_len: usize,
    },
}

/// Corrupts `table` in place under the adversarial `model`, seeded by
/// `seed`, returning the ground truth. Cell-level corruption style
/// (plausible category swap vs typo vs garbage) follows
/// [`InjectConfig::default`].
pub fn inject_adversarial(table: &mut Table, model: &ErrorModel, seed: u64) -> InjectionReport {
    let config = InjectConfig { seed, ..InjectConfig::default() };
    let n_rows = table.num_rows();
    let n_cols = table.num_columns();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = InjectionReport::default();
    if n_rows == 0 || n_cols == 0 {
        return report;
    }

    // (row, cols-to-corrupt) victims, rows strictly increasing.
    let victims: Vec<(usize, Vec<usize>)> = match *model {
        ErrorModel::Correlated { rows, cells_per_row } => {
            let cells = cells_per_row.clamp(1, n_cols);
            let mut pool: Vec<usize> = (0..n_rows).collect();
            for i in (1..pool.len()).rev() {
                let j = rng.gen_range(0..=i);
                pool.swap(i, j);
            }
            pool.truncate(rows.min(n_rows));
            pool.sort_unstable();
            pool.into_iter()
                .map(|row| {
                    // Distinct victim columns per row, in column order so the
                    // co-occurrence pattern is stable under re-runs.
                    let mut cols: Vec<usize> = (0..n_cols).collect();
                    for i in (1..cols.len()).rev() {
                        let j = rng.gen_range(0..=i);
                        cols.swap(i, j);
                    }
                    cols.truncate(cells);
                    cols.sort_unstable();
                    (row, cols)
                })
                .collect()
        }
        ErrorModel::Bursty { bursts, burst_len } => {
            let len = burst_len.clamp(1, n_rows);
            let mut hit = vec![false; n_rows];
            for _ in 0..bursts {
                let start = rng.gen_range(0..=n_rows - len);
                for flag in &mut hit[start..start + len] {
                    *flag = true;
                }
            }
            hit.iter()
                .enumerate()
                .filter(|(_, &h)| h)
                .map(|(row, _)| (row, vec![rng.gen_range(0..n_cols)]))
                .collect()
        }
    };

    for (salt, (row, cols)) in victims.iter().enumerate() {
        for &col in cols {
            let original = table.get(*row, col).expect("cell in range");
            let corrupted = corrupt_value(table, *row, col, salt, &config, &mut rng);
            table.set(*row, col, corrupted.clone()).expect("cell in range");
            report.errors.push(InjectedError { row: *row, col, original, corrupted });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ragged_csv(7, 20), ragged_csv(7, 20));
        assert_eq!(garbage_bytes(7, 256), garbage_bytes(7, 256));
        let a = near_uniform_table(4, 50, 6, 3);
        let b = near_uniform_table(4, 50, 6, 3);
        assert_eq!(a.to_csv_string(), b.to_csv_string());
    }

    #[test]
    fn malformed_inputs_yield_typed_errors_not_panics() {
        assert!(Table::from_csv_str(&ragged_csv(1, 50)).is_err());
        assert!(Table::from_csv_str(&quote_bomb()).is_err());
        // Garbage bytes either parse (as opaque strings) or error — both are
        // acceptable; panicking is not.
        for seed in 0..16 {
            let _ = Table::from_csv_bytes(garbage_bytes(seed, 512));
        }
    }

    fn plain_table(rows: usize, cols: usize) -> Table {
        let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let mut b = TableBuilder::new(names);
        for r in 0..rows {
            let row: Vec<Value> = (0..cols).map(|c| Value::Int(((r + c) % 6) as i64)).collect();
            b.push_row(row).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn correlated_model_corrupts_cooccurring_cells_per_row() {
        let clean = plain_table(200, 5);
        let mut t = clean.clone();
        let model = ErrorModel::Correlated { rows: 12, cells_per_row: 3 };
        let report = inject_adversarial(&mut t, &model, 9);
        assert_eq!(report.dirty_rows().len(), 12);
        assert_eq!(report.errors.len(), 12 * 3);
        // Every victim row has exactly 3 distinct corrupted columns.
        for row in report.dirty_rows() {
            let mut cols: Vec<usize> =
                report.errors.iter().filter(|e| e.row == row).map(|e| e.col).collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), 3, "row {row}");
        }
        for e in &report.errors {
            assert_ne!(e.original, e.corrupted);
            assert_eq!(t.get(e.row, e.col), Some(e.corrupted.clone()));
            assert_eq!(clean.get(e.row, e.col), Some(e.original.clone()));
        }
        // Determinism in both the mutated table and the ground truth.
        let mut t2 = clean.clone();
        let report2 = inject_adversarial(&mut t2, &model, 9);
        assert_eq!(report.errors, report2.errors);
        assert_eq!(t.to_csv_string(), t2.to_csv_string());
        // A different seed picks different victims.
        let mut t3 = clean.clone();
        assert_ne!(inject_adversarial(&mut t3, &model, 10).errors, report.errors);
    }

    #[test]
    fn bursty_model_corrupts_contiguous_row_ranges() {
        let mut t = plain_table(500, 4);
        let model = ErrorModel::Bursty { bursts: 3, burst_len: 20 };
        let report = inject_adversarial(&mut t, &model, 4);
        let rows = report.dirty_rows();
        assert!(!rows.is_empty() && rows.len() <= 60);
        assert_eq!(report.errors.len(), rows.len(), "one cell per burst row");
        // The dirty set decomposes into runs of length ≥ burst ∩ table, and
        // at most `bursts` maximal runs exist.
        let mut runs = 1;
        for w in rows.windows(2) {
            if w[1] != w[0] + 1 {
                runs += 1;
            }
        }
        assert!(runs <= 3, "at most 3 maximal runs, got {runs}: {rows:?}");
        // Each maximal run is at least 20 rows (merged overlaps only grow).
        let mut run_len = 1;
        let mut min_run = usize::MAX;
        for w in rows.windows(2) {
            if w[1] == w[0] + 1 {
                run_len += 1;
            } else {
                min_run = min_run.min(run_len);
                run_len = 1;
            }
        }
        min_run = min_run.min(run_len);
        assert!(min_run >= 20, "shortest run {min_run}");
    }

    #[test]
    fn adversarial_models_handle_degenerate_shapes() {
        // More victim rows than the table holds clamps to every row.
        let mut tiny = plain_table(3, 2);
        let rep = inject_adversarial(
            &mut tiny,
            &ErrorModel::Correlated { rows: 50, cells_per_row: 1 },
            1,
        );
        assert_eq!(rep.dirty_rows(), vec![0, 1, 2]);
        // Burst longer than the table clamps to the whole table.
        let mut small = plain_table(7, 2);
        let rep =
            inject_adversarial(&mut small, &ErrorModel::Bursty { bursts: 1, burst_len: 99 }, 2);
        assert_eq!(rep.dirty_rows(), (0..7).collect::<Vec<_>>());
        // cells_per_row clamps to the column count.
        let mut narrow = plain_table(10, 2);
        let rep = inject_adversarial(
            &mut narrow,
            &ErrorModel::Correlated { rows: 4, cells_per_row: 10 },
            3,
        );
        assert_eq!(rep.errors.len(), 4 * 2);
    }

    #[test]
    fn structured_generators_have_requested_shape() {
        let t = Table::from_csv_str(&wide_csv(200, 3)).expect("wide CSV is well-formed");
        assert_eq!(t.num_columns(), 200);
        assert_eq!(t.num_rows(), 3);
        let u = near_uniform_table(5, 100, 4, 1);
        assert_eq!((u.num_columns(), u.num_rows()), (5, 100));
        let e = entangled_table(6, 100, 2);
        assert_eq!((e.num_columns(), e.num_rows()), (6, 100));
    }
}
