//! Fault-injection inputs for robustness testing.
//!
//! Everything the outside world can throw at Guardrail's ingestion and
//! synthesis paths, generated deterministically from a seed so failures
//! reproduce: malformed CSV (ragged records, quote bombs, raw garbage
//! bytes), adversarial schemas (hundreds of columns, astronomically large
//! determinant key spaces), and statistically hostile data (near-uniform
//! noise, densely entangled attributes that blow up the MEC). The
//! `tests/robustness.rs` suite feeds these to the typed-error entry points
//! and to budgeted synthesis and asserts two invariants: *never panic* and
//! *always return within budget*.

use guardrail_table::{Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CSV whose records disagree about the number of fields (the most common
/// real-world corruption). The header has 4 columns; data rows have 0–8.
pub fn ragged_csv(seed: u64, rows: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut csv = String::from("a,b,c,d\n");
    for i in 0..rows {
        let fields = rng.gen_range(0usize..=8);
        let row: Vec<String> = (0..fields).map(|f| format!("v{i}_{f}")).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// Deterministic pseudo-random bytes, including nulls, non-UTF-8 sequences,
/// stray quotes, and control characters — a stand-in for feeding Guardrail a
/// binary file by mistake.
pub fn garbage_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

/// CSV with pathological quoting: unterminated quotes, quotes mid-field, and
/// embedded newlines designed to desynchronize naive parsers.
pub fn quote_bomb() -> String {
    let mut csv = String::from("a,b\n");
    csv.push_str("\"embedded\nnewline\",ok\n");
    csv.push_str("\"doubled \"\" quote\",ok\n");
    csv.push_str("plain,als\"o fine?\n"); // quote inside unquoted field
    csv.push_str("\"unterminated,oops\n"); // never closed
    csv
}

/// A syntactically valid CSV with `cols` columns and `rows` rows — wide
/// enough to exceed structure learning's node capacity when `cols > 128`,
/// which must surface as a typed error rather than a panic.
pub fn wide_csv(cols: usize, rows: usize) -> String {
    let header: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
    let mut csv = header.join(",");
    csv.push('\n');
    for r in 0..rows {
        let row: Vec<String> = (0..cols).map(|c| ((r + c) % 10).to_string()).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    csv
}

/// A table of i.i.d. near-uniform noise: no attribute explains any other, so
/// every candidate branch hovers at the ε-validity boundary and synthesis
/// should return an empty (or near-empty) program rather than inventing
/// constraints.
pub fn near_uniform_table(attrs: usize, rows: usize, cardinality: usize, seed: u64) -> Table {
    assert!(attrs > 0 && cardinality > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..attrs).map(|a| format!("u{a}")).collect();
    let mut b = TableBuilder::new(names);
    for _ in 0..rows {
        let row: Vec<Value> =
            (0..attrs).map(|_| Value::Int(rng.gen_range(0..cardinality as i64))).collect();
        b.push_row(row).unwrap_or_else(|e| unreachable!("row arity is fixed: {e}"));
    }
    b.finish().unwrap_or_else(|e| unreachable!("columns are consistent: {e}"))
}

/// A table whose attributes are all noisy copies of one latent variable:
/// pairwise dependence everywhere with no colliders, so the learned CPDAG is
/// dense and largely undirected and the MEC is combinatorially large — the
/// worst case for Alg. 2's enumeration, used to exercise deadlines.
pub fn entangled_table(attrs: usize, rows: usize, seed: u64) -> Table {
    assert!(attrs > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..attrs).map(|a| format!("e{a}")).collect();
    let mut b = TableBuilder::new(names);
    for _ in 0..rows {
        let latent = rng.gen_range(0i64..4);
        let row: Vec<Value> = (0..attrs)
            .map(|_| {
                let v = if rng.gen_ratio(1, 40) { rng.gen_range(0i64..4) } else { latent };
                Value::Int(v)
            })
            .collect();
        b.push_row(row).unwrap_or_else(|e| unreachable!("row arity is fixed: {e}"));
    }
    b.finish().unwrap_or_else(|e| unreachable!("columns are consistent: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ragged_csv(7, 20), ragged_csv(7, 20));
        assert_eq!(garbage_bytes(7, 256), garbage_bytes(7, 256));
        let a = near_uniform_table(4, 50, 6, 3);
        let b = near_uniform_table(4, 50, 6, 3);
        assert_eq!(a.to_csv_string(), b.to_csv_string());
    }

    #[test]
    fn malformed_inputs_yield_typed_errors_not_panics() {
        assert!(Table::from_csv_str(&ragged_csv(1, 50)).is_err());
        assert!(Table::from_csv_str(&quote_bomb()).is_err());
        // Garbage bytes either parse (as opaque strings) or error — both are
        // acceptable; panicking is not.
        for seed in 0..16 {
            let _ = Table::from_csv_bytes(garbage_bytes(seed, 512));
        }
    }

    #[test]
    fn structured_generators_have_requested_shape() {
        let t = Table::from_csv_str(&wide_csv(200, 3)).expect("wide CSV is well-formed");
        assert_eq!(t.num_columns(), 200);
        assert_eq!(t.num_rows(), 3);
        let u = near_uniform_table(5, 100, 4, 1);
        assert_eq!((u.num_columns(), u.num_rows()), (5, 100));
        let e = entangled_table(6, 100, 2);
        assert_eq!((e.num_columns(), e.num_rows()), (6, 100));
    }
}
