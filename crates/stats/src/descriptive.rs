//! Descriptive statistics and small linear-algebra helpers.
//!
//! The FDX baseline (Zhang et al. [43]) estimates a precision matrix from the
//! auxiliary binary matrix; the covariance and matrix-inversion routines it
//! needs live here so the baselines crate stays algorithm-only.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). `NaN` for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample covariance matrix of `data` given as `n` rows × `d` columns
/// (row-major), with the n−1 denominator. Returns a `d × d` row-major matrix.
pub fn covariance_matrix(data: &[f64], n: usize, d: usize) -> Vec<f64> {
    assert_eq!(data.len(), n * d, "data must be n*d row-major");
    assert!(n >= 2, "need at least two rows");
    let mut means = vec![0.0; d];
    for row in 0..n {
        for col in 0..d {
            means[col] += data[row * d + col];
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut cov = vec![0.0; d * d];
    for row in 0..n {
        for i in 0..d {
            let di = data[row * d + i] - means[i];
            for j in i..d {
                let dj = data[row * d + j] - means[j];
                cov[i * d + j] += di * dj;
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            cov[i * d + j] /= denom;
            cov[j * d + i] = cov[i * d + j];
        }
    }
    cov
}

/// Inverts a `d × d` row-major matrix via Gauss–Jordan elimination with
/// partial pivoting. Returns `None` when the matrix is singular or too
/// ill-conditioned (pivot below `1e-12`) — the failure mode FDX hits on the
/// paper's dataset #3.
pub fn invert_matrix(matrix: &[f64], d: usize) -> Option<Vec<f64>> {
    assert_eq!(matrix.len(), d * d, "matrix must be d*d");
    let mut a = matrix.to_vec();
    let mut inv = vec![0.0; d * d];
    for i in 0..d {
        inv[i * d + i] = 1.0;
    }
    for col in 0..d {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * d + col].abs();
        for row in (col + 1)..d {
            let v = a[row * d + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..d {
                a.swap(col * d + k, pivot_row * d + k);
                inv.swap(col * d + k, pivot_row * d + k);
            }
        }
        let pivot = a[col * d + col];
        for k in 0..d {
            a[col * d + k] /= pivot;
            inv[col * d + k] /= pivot;
        }
        for row in 0..d {
            if row == col {
                continue;
            }
            let factor = a[row * d + col];
            if factor == 0.0 {
                continue;
            }
            for k in 0..d {
                a[row * d + k] -= factor * a[col * d + k];
                inv[row * d + k] -= factor * inv[col * d + k];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn covariance_of_correlated_columns() {
        // Two columns, second = 2 * first.
        let data = [1.0, 2.0, 2.0, 4.0, 3.0, 6.0];
        let cov = covariance_matrix(&data, 3, 2);
        assert!((cov[0] - 1.0).abs() < 1e-12); // var(x)
        assert!((cov[1] - 2.0).abs() < 1e-12); // cov(x, 2x)
        assert!((cov[3] - 4.0).abs() < 1e-12); // var(2x)
        assert_eq!(cov[1], cov[2]);
    }

    #[test]
    fn invert_identity_and_known() {
        let id = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(invert_matrix(&id, 2).unwrap(), id.to_vec());
        // [[4,7],[2,6]]^-1 = [[0.6,-0.7],[-0.2,0.4]]
        let m = [4.0, 7.0, 2.0, 6.0];
        let inv = invert_matrix(&m, 2).unwrap();
        let expect = [0.6, -0.7, -0.2, 0.4];
        for (a, b) in inv.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn invert_requires_pivoting() {
        // Zero on the diagonal but nonsingular.
        let m = [0.0, 1.0, 1.0, 0.0];
        let inv = invert_matrix(&m, 2).unwrap();
        assert_eq!(inv, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn singular_returns_none() {
        let m = [1.0, 2.0, 2.0, 4.0];
        assert!(invert_matrix(&m, 2).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = [3.0, 1.0, 0.5, 1.0, 4.0, 0.0, 0.25, 0.0, 2.0];
        let inv = invert_matrix(&m, 3).unwrap();
        // m * inv ≈ I
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += m[i * 3 + k] * inv[k * 3 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-10, "cell ({i},{j}) = {s}");
            }
        }
    }
}
