//! Statistics kernel for Guardrail.
//!
//! Everything the rest of the workspace needs from `scipy.stats` is
//! implemented here from first principles:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma and beta functions.
//! * [`chi2`] — the chi-squared distribution (CDF / survival function).
//! * [`contingency`] — contingency tables over dictionary codes.
//! * [`independence`] — Pearson X² and G² (likelihood-ratio) conditional
//!   independence tests: the oracle behind the PC algorithm (§4 of the paper).
//! * [`suffstats`] — the fused, allocation-free sufficient-statistics kernel
//!   the CI tests run on (dense flat-tensor tabulation with a counting-sort
//!   sparse fallback, bit-identical to the contingency-table reference).
//! * [`metrics`] — F1, MCC, precision/recall and normalization helpers used by
//!   the evaluation harness (Tables 3, 5, 8; Fig. 6).
//! * [`rank`] — Spearman rank correlation with a Student-t p-value (Table 1's
//!   ρ = 0.947 claim).
//! * [`descriptive`] — mean/variance/covariance helpers (used by FDX).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chi2;
pub mod contingency;
pub mod descriptive;
pub mod independence;
pub mod metrics;
pub mod rank;
pub mod special;
pub mod suffstats;

pub use chi2::ChiSquared;
pub use contingency::ContingencyTable;
pub use independence::{ci_test, ci_test_reference, CiTestKind, CiTestResult};
pub use metrics::BinaryConfusion;
pub use rank::spearman;
pub use suffstats::{choose_path, fold_mixed_radix, CiScratch, KernelPath, Strata, StratumPack};
