//! Special functions: log-gamma, regularized incomplete gamma and beta.
//!
//! Implementations follow the classic Lanczos / series / continued-fraction
//! formulations (Numerical Recipes, 3rd ed., §6), which are accurate to
//! ~1e-12 over the parameter ranges our tests exercise. These are the only
//! transcendental building blocks needed for chi-squared and Student-t
//! p-values.

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, verbatim from the published table.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_gamma(a)).exp()).clamp(0.0, 1.0)
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued-fraction representation of Q(a, x).
    let fpmin = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - ln_gamma(a)).exp() * h).clamp(0.0, 1.0)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation with the symmetry transformation for
/// convergence, used for Student-t tail probabilities in [`crate::rank`].
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let fpmin = f64::MIN_POSITIVE / EPS;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < fpmin {
        d = fpmin;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = 1.0 + aa / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value for a Student-t statistic with `df` degrees of freedom.
pub fn student_t_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // Γ(5) = 4!
        close(ln_gamma(0.5), (std::f64::consts::PI).sqrt().ln(), 1e-10);
        // Γ(10.5) = 9.5·8.5·…·0.5·√π; ln of that product is 13.9406252…
        close(ln_gamma(10.5), 13.940_625_219_403_763, 1e-10);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // scipy.special.gammainc reference values.
        close(gamma_p(1.0, 1.0), 0.632_120_558_828_557_7, 1e-12);
        close(gamma_p(2.5, 2.0), 0.450_584_048_6, 1e-8);
        close(gamma_p(0.5, 0.5), 0.682_689_492_137_085_9, 1e-10);
    }

    #[test]
    fn gamma_edge_cases() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert_eq!(gamma_q(3.0, 0.0), 1.0);
        close(gamma_p(1.0, 700.0), 1.0, 1e-12);
        close(gamma_q(1.0, 700.0), 0.0, 1e-12);
    }

    #[test]
    fn beta_inc_known_values() {
        // scipy.special.betainc reference values.
        close(beta_inc(2.0, 3.0, 0.5), 0.687_5, 1e-12);
        close(beta_inc(0.5, 0.5, 0.25), 0.333_333_333_333_333_3, 1e-9);
        close(beta_inc(5.0, 1.0, 0.8), 0.327_68, 1e-10); // x^5
    }

    #[test]
    fn beta_inc_symmetry() {
        for &(a, b, x) in &[(1.5, 2.5, 0.3), (4.0, 4.0, 0.7), (0.5, 3.0, 0.9)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-10);
        }
    }

    #[test]
    fn student_t_reference() {
        // scipy.stats.t.sf(2.0, 10) * 2 ≈ 0.0733880
        close(student_t_two_sided(2.0, 10.0), 0.073_388_0, 1e-6);
        close(student_t_two_sided(0.0, 5.0), 1.0, 1e-12);
        assert!(student_t_two_sided(50.0, 10.0) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
