//! Conditional independence tests over coded data.
//!
//! These tests are the statistical oracle of the sketch-learning stage: the
//! PC algorithm asks "is X ⫫ Y | Z?" and we answer with a G² or Pearson X²
//! test over the stratified contingency tables. Degrees of freedom follow the
//! standard convention `(|X|−1)(|Y|−1)·Π|Z|`, computed per observed stratum
//! with structural-zero correction (rows/columns that never occur in a
//! stratum do not contribute df).

use crate::chi2::ChiSquared;
use crate::contingency::ContingencyTable;
use crate::suffstats::{ci_test_fused, Strata};

/// Which test statistic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CiTestKind {
    /// Likelihood-ratio G² test (default; standard for discrete PC).
    #[default]
    G2,
    /// Pearson chi-squared test.
    Pearson,
}

/// Outcome of a conditional independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiTestResult {
    /// The test statistic (G² or X²).
    pub statistic: f64,
    /// Degrees of freedom after structural-zero correction.
    pub df: f64,
    /// p-value under the chi-squared null.
    pub p_value: f64,
}

impl CiTestResult {
    /// Declares independence at significance level `alpha`.
    pub fn independent(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Tests `x ⫫ y | z` where `x`/`y` are code slices with cardinalities
/// `nx`/`ny` and `z[i]` is a packed stratum key for row `i` (empty `z` slice =
/// marginal test).
///
/// Returns a result with `df = 0` and `p_value = 1` when there is no
/// information at all (e.g. every stratum is a single observation), which the
/// PC algorithm treats as "cannot reject independence" — the conservative
/// choice for sparse conditioning sets.
///
/// Dispatches to the fused tabulation kernel in [`crate::suffstats`]
/// (dense flat-tensor path when the stratum domain is small relative to the
/// data, counting-sort group-by otherwise), which is bit-identical to the
/// legacy contingency-table walk retained as [`ci_test_reference`]. Callers
/// that already know the key domain (`Π |Z|`) should call
/// [`crate::suffstats::ci_test_fused`] directly and skip the max-key scan.
pub fn ci_test(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    z: Option<&[u64]>,
    nx: usize,
    ny: usize,
) -> CiTestResult {
    ci_test_fused(kind, x, y, z.map(Strata::infer), nx, ny)
}

/// The pre-kernel implementation of [`ci_test`]: materializes one
/// [`ContingencyTable`] per observed stratum via a `HashMap` and folds the
/// statistic table by table.
///
/// Kept as the differential-testing and benchmark reference — the fused
/// kernels must reproduce its output bit-for-bit (`tests/ci_kernel.rs`, the
/// `ci_kernel` bench equality gate). Not a hot path: prefer [`ci_test`].
pub fn ci_test_reference(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    z: Option<&[u64]>,
    nx: usize,
    ny: usize,
) -> CiTestResult {
    let tables = match z {
        None => vec![ContingencyTable::from_codes(x, y, nx, ny)],
        Some(z) => ContingencyTable::stratified(x, y, z, nx, ny),
    };

    let mut statistic = 0.0;
    let mut df = 0.0;
    for t in &tables {
        let rows = t.nonzero_rows();
        let cols = t.nonzero_cols();
        if rows < 2 || cols < 2 {
            continue; // stratum carries no information about dependence
        }
        statistic += match kind {
            CiTestKind::G2 => t.g2(),
            CiTestKind::Pearson => t.pearson_x2(),
        };
        df += ((rows - 1) * (cols - 1)) as f64;
    }

    if df == 0.0 {
        return CiTestResult { statistic: 0.0, df: 0.0, p_value: 1.0 };
    }
    let p_value = ChiSquared::new(df).sf(statistic);
    CiTestResult { statistic, df, p_value }
}

/// Packs per-row conditioning codes into stratum keys by mixed-radix
/// encoding. `columns` holds one code slice per conditioning attribute and
/// `cards` the matching cardinalities (null codes must be remapped by the
/// caller beforehand).
///
/// Returns `None` on overflow (product of cardinalities exceeding u64), which
/// callers treat as an untestable conditioning set.
pub fn pack_strata(columns: &[&[u32]], cards: &[usize]) -> Option<Vec<u64>> {
    assert_eq!(columns.len(), cards.len());
    if columns.is_empty() {
        return Some(Vec::new());
    }
    Some(crate::suffstats::StratumPack::pack(columns, cards)?.into_keys())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream for test data.
    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn detects_marginal_dependence() {
        let mut rng = xorshift(42);
        let n = 2000;
        let x: Vec<u32> = (0..n).map(|_| (rng() % 3) as u32).collect();
        let y: Vec<u32> = x.iter().map(|&v| v).collect(); // Y = X
        let r = ci_test(CiTestKind::G2, &x, &y, None, 3, 3);
        assert!(r.p_value < 1e-10);
        assert!(!r.independent(0.05));
        assert_eq!(r.df, 4.0);
    }

    #[test]
    fn accepts_marginal_independence() {
        let mut rng = xorshift(7);
        let n = 5000;
        let x: Vec<u32> = (0..n).map(|_| (rng() % 2) as u32).collect();
        let y: Vec<u32> = (0..n).map(|_| (rng() % 2) as u32).collect();
        let r = ci_test(CiTestKind::G2, &x, &y, None, 2, 2);
        assert!(r.independent(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn conditional_independence_in_chain() {
        // X -> Z -> Y: X and Y dependent marginally, independent given Z.
        let mut rng = xorshift(99);
        let n = 8000;
        let mut x = Vec::with_capacity(n);
        let mut zc = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let xv = (rng() % 2) as u32;
            // Z copies X with 10% flip noise.
            let zv = if rng() % 10 == 0 { 1 - xv } else { xv };
            // Y copies Z with 10% flip noise.
            let yv = if rng() % 10 == 0 { 1 - zv } else { zv };
            x.push(xv);
            zc.push(zv);
            y.push(yv);
        }
        let marginal = ci_test(CiTestKind::G2, &x, &y, None, 2, 2);
        assert!(!marginal.independent(0.05), "X and Y should be marginally dependent");
        let strata = pack_strata(&[&zc], &[2]).unwrap();
        let conditional = ci_test(CiTestKind::G2, &x, &y, Some(&strata), 2, 2);
        assert!(conditional.independent(0.01), "p = {}", conditional.p_value);
    }

    #[test]
    fn pearson_matches_g2_direction() {
        let mut rng = xorshift(3);
        let n = 1000;
        let x: Vec<u32> = (0..n).map(|_| (rng() % 2) as u32).collect();
        let y: Vec<u32> = x.iter().map(|&v| if rng() % 5 == 0 { 1 - v } else { v }).collect();
        let g = ci_test(CiTestKind::G2, &x, &y, None, 2, 2);
        let p = ci_test(CiTestKind::Pearson, &x, &y, None, 2, 2);
        assert!(!g.independent(0.05));
        assert!(!p.independent(0.05));
    }

    #[test]
    fn degenerate_data_is_conservative() {
        // Constant y: no information, never reject.
        let x = [0u32, 1, 0, 1];
        let y = [0u32, 0, 0, 0];
        let r = ci_test(CiTestKind::G2, &x, &y, None, 2, 1);
        assert_eq!(r.df, 0.0);
        assert!(r.independent(0.05));
    }

    #[test]
    fn pack_strata_mixed_radix() {
        let a = [0u32, 1, 2];
        let b = [1u32, 0, 1];
        let keys = pack_strata(&[&a, &b], &[3, 2]).unwrap();
        assert_eq!(keys, vec![1, 2, 5]);
    }

    #[test]
    fn pack_strata_overflow_detected() {
        let col = [0u32];
        let cards = [u32::MAX as usize; 3];
        assert!(pack_strata(&[&col, &col, &col], &cards).is_none());
    }

    #[test]
    fn pack_strata_empty() {
        assert_eq!(pack_strata(&[], &[]), Some(vec![]));
    }
}
