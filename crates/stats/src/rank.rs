//! Spearman rank correlation.

use crate::special::student_t_two_sided;

/// Result of a Spearman rank-correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanResult {
    /// The rank correlation coefficient ρ.
    pub rho: f64,
    /// Two-sided p-value from the Student-t approximation.
    pub p_value: f64,
}

/// Spearman's ρ between two samples, with tie-aware fractional ranking and a
/// Student-t p-value (`t = ρ·√((n−2)/(1−ρ²))`, df = n−2) — the same
/// approximation scipy uses for n beyond the exact tables.
///
/// Used to reproduce the Table 1 claim that error counts and mis-prediction
/// counts correlate at ρ ≈ 0.947.
pub fn spearman(x: &[f64], y: &[f64]) -> SpearmanResult {
    assert_eq!(x.len(), y.len(), "samples must be aligned");
    let n = x.len();
    assert!(n >= 3, "spearman needs at least 3 observations");
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    let rho = pearson(&rx, &ry);
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let df = (n - 2) as f64;
        let t = rho * (df / (1.0 - rho * rho)).sqrt();
        student_t_two_sided(t, df)
    };
    SpearmanResult { rho, p_value }
}

/// Fractional (average) ranks, 1-based; ties share the mean of their ranks.
fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // items i..=j are tied; assign mean rank
        let mean_rank = ((i + 1 + j + 1) as f64) / 2.0;
        for k in i..=j {
            ranks[order[k]] = mean_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson product-moment correlation.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [10.0, 20.0, 25.0, 40.0, 100.0];
        let r = spearman(&x, &y);
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn perfect_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [9.0, 7.0, 5.0, 1.0];
        let r = spearman(&x, &y);
        assert!((r.rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn scipy_reference() {
        // scipy.stats.spearmanr([1,2,3,4,5],[5,6,7,8,7]) -> rho=0.8207, p=0.0886
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [5.0, 6.0, 7.0, 8.0, 7.0];
        let r = spearman(&x, &y);
        assert!((r.rho - 0.820_782_681_668_384).abs() < 1e-9, "rho = {}", r.rho);
        assert!((r.p_value - 0.088_586_510_597_579_5).abs() < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn ties_use_fractional_ranks() {
        let ranks = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_input_gives_zero() {
        let r = spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.rho, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_observations() {
        spearman(&[1.0, 2.0], &[3.0, 4.0]);
    }
}
