//! The chi-squared distribution.

use crate::special::{gamma_p, gamma_q};

/// A chi-squared distribution with `k` degrees of freedom.
///
/// Both the G² likelihood-ratio statistic and Pearson's X² are asymptotically
/// chi-squared under the null hypothesis of (conditional) independence; this
/// type converts those statistics into p-values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates the distribution. `df` must be positive.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "chi-squared df must be positive, got {df}");
        Self { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.df / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)` — the p-value of a statistic `x`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        gamma_q(self.df / 2.0, x / 2.0)
    }

    /// Mean of the distribution (= df).
    pub fn mean(&self) -> f64 {
        self.df
    }

    /// Variance of the distribution (= 2·df).
    pub fn variance(&self) -> f64 {
        2.0 * self.df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn sf_reference_values() {
        // scipy.stats.chi2.sf reference values.
        close(ChiSquared::new(1.0).sf(3.841_458_820_694_124), 0.05, 1e-10);
        close(ChiSquared::new(2.0).sf(5.991_464_547_107_979), 0.05, 1e-10);
        close(ChiSquared::new(10.0).sf(18.307_038_053_275_146), 0.05, 1e-9);
        close(ChiSquared::new(5.0).sf(11.070_497_693_516_351), 0.05, 1e-9);
    }

    #[test]
    fn cdf_sf_complement() {
        let d = ChiSquared::new(7.0);
        for x in [0.1, 1.0, 5.0, 20.0] {
            close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn boundaries() {
        let d = ChiSquared::new(3.0);
        assert_eq!(d.sf(0.0), 1.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.sf(-1.0), 1.0);
        assert!(d.sf(1e6) < 1e-12);
    }

    #[test]
    fn moments() {
        let d = ChiSquared::new(4.0);
        assert_eq!(d.mean(), 4.0);
        assert_eq!(d.variance(), 8.0);
    }

    #[test]
    #[should_panic(expected = "df must be positive")]
    fn rejects_zero_df() {
        ChiSquared::new(0.0);
    }
}
