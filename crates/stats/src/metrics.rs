//! Evaluation metrics for the experiment harness.
//!
//! The paper evaluates error detection with F1 and MCC (Table 3), ML-query
//! accuracy with min-max-normalized relative L1 error (Fig. 6), and sampler
//! quality with normalized coverage (Table 8). All of those primitives live
//! here.

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryConfusion {
    /// Tallies predictions against ground truth.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "label slices must be aligned");
        let mut c = BinaryConfusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision `tp / (tp + fp)`; `NaN` when undefined (matching the paper's
    /// "NaN" table entries for degenerate detectors).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; `NaN` when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score; `NaN` when precision+recall are undefined or both zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            return f64::NAN;
        }
        2.0 * p * r / (p + r)
    }

    /// Matthews correlation coefficient; `NaN` when any marginal is zero.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (self.tp as f64, self.fp as f64, self.tn as f64, self.fn_ as f64);
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            return f64::NAN;
        }
        (tp * tn - fp * fn_) / denom
    }

    /// Accuracy over all observations.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

/// Tallies a confusion matrix directly from index sets: `detected` vs
/// `actual` positive row indices out of `n` rows.
pub fn confusion_from_indices(detected: &[usize], actual: &[usize], n: usize) -> BinaryConfusion {
    let mut pred = vec![false; n];
    let mut act = vec![false; n];
    for &i in detected {
        pred[i] = true;
    }
    for &i in actual {
        act[i] = true;
    }
    BinaryConfusion::from_labels(&pred, &act)
}

/// L1 distance between two equal-length vectors.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must be aligned");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Relative L1 error of `observed` against `reference`:
/// `‖observed − reference‖₁ / ‖reference‖₁` (Fig. 6's per-query error before
/// normalization). Returns 0 when both are zero, `inf` when only the
/// reference is zero.
pub fn relative_l1_error(observed: &[f64], reference: &[f64]) -> f64 {
    let denom: f64 = reference.iter().map(|x| x.abs()).sum();
    let num = l1_distance(observed, reference);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Min-max normalization to `[0, 1]`. A constant vector maps to all zeros.
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return vec![0.0; values.len()];
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                1.0
            } else if span == 0.0 {
                0.0
            } else {
                (v - min) / span
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false, true];
        let act = [true, false, false, true, true];
        let c = BinaryConfusion::from_labels(&pred, &act);
        assert_eq!(c, BinaryConfusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn mcc_reference() {
        // sklearn.metrics.matthews_corrcoef for tp=2,fp=1,tn=1,fn=1 = 0.1666...
        let c = BinaryConfusion { tp: 2, fp: 1, tn: 1, fn_: 1 };
        assert!((c.mcc() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_inverted_detectors() {
        let perfect = BinaryConfusion { tp: 5, fp: 0, tn: 5, fn_: 0 };
        assert!((perfect.f1() - 1.0).abs() < 1e-12);
        assert!((perfect.mcc() - 1.0).abs() < 1e-12);
        let inverted = BinaryConfusion { tp: 0, fp: 5, tn: 0, fn_: 5 };
        assert!((inverted.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_is_nan() {
        // Detector that never fires on data with no positives.
        let c = BinaryConfusion::from_labels(&[false, false], &[false, false]);
        assert!(c.precision().is_nan());
        assert!(c.f1().is_nan());
        assert!(c.mcc().is_nan());
    }

    #[test]
    fn confusion_from_index_sets() {
        let c = confusion_from_indices(&[0, 2], &[2, 3], 5);
        assert_eq!(c, BinaryConfusion { tp: 1, fp: 1, tn: 2, fn_: 1 });
    }

    #[test]
    fn relative_error_cases() {
        assert!((relative_l1_error(&[1.0, 2.0], &[1.0, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(relative_l1_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_l1_error(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn min_max_cases() {
        assert_eq!(min_max_normalize(&[2.0, 4.0, 3.0]), vec![0.0, 1.0, 0.5]);
        assert_eq!(min_max_normalize(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert_eq!(min_max_normalize(&[1.0, f64::INFINITY, 3.0]), vec![0.0, 1.0, 1.0]);
        assert_eq!(min_max_normalize(&[]), Vec::<f64>::new());
    }
}
