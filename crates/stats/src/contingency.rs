//! Contingency tables over dictionary codes.

use std::collections::HashMap;

/// A two-way contingency table of counts `n[x][y]`, optionally one per
/// stratum of conditioning values.
///
/// Built directly from dictionary-code slices, so constructing the table is a
/// single pass with integer keys. Row/column marginals are accumulated during
/// that same pass and stored, so the statistics below are O(nx·ny) rather
/// than rescanning a marginal per cell.
///
/// This is the *reference* tabulation path; the hot path of the PC
/// algorithm's CI tests is the fused kernel in [`crate::suffstats`], which
/// must agree with this type bit-for-bit.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// `counts[x * ny + y]`.
    counts: Vec<u64>,
    /// `row_marg[x] = n[x][·]`, maintained alongside `counts`.
    row_marg: Vec<u64>,
    /// `col_marg[y] = n[·][y]`, maintained alongside `counts`.
    col_marg: Vec<u64>,
    nx: usize,
    ny: usize,
    total: u64,
}

impl ContingencyTable {
    fn empty(nx: usize, ny: usize) -> Self {
        Self {
            counts: vec![0; nx * ny],
            row_marg: vec![0; nx],
            col_marg: vec![0; ny],
            nx,
            ny,
            total: 0,
        }
    }

    fn add(&mut self, x: usize, y: usize) {
        self.counts[x * self.ny + y] += 1;
        self.row_marg[x] += 1;
        self.col_marg[y] += 1;
        self.total += 1;
    }

    /// Counts joint occurrences of `(x[i], y[i])`. `nx`/`ny` are the code
    /// cardinalities (codes must be `< nx`/`< ny` respectively).
    pub fn from_codes(x: &[u32], y: &[u32], nx: usize, ny: usize) -> Self {
        assert_eq!(x.len(), y.len(), "code slices must be aligned");
        let mut table = Self::empty(nx, ny);
        for (&a, &b) in x.iter().zip(y) {
            table.add(a as usize, b as usize);
        }
        table
    }

    /// Builds one table per configuration of the conditioning codes `z`.
    ///
    /// `z` holds, per row, a single combined stratum key (the caller packs the
    /// conditioning attributes into one `u64`). Only observed strata are
    /// materialized, which is what keeps high-arity conditioning tractable on
    /// sparse data.
    pub fn stratified(x: &[u32], y: &[u32], z: &[u64], nx: usize, ny: usize) -> Vec<Self> {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), z.len());
        let mut strata: HashMap<u64, ContingencyTable> = HashMap::new();
        for i in 0..x.len() {
            let table = strata.entry(z[i]).or_insert_with(|| ContingencyTable::empty(nx, ny));
            table.add(x[i] as usize, y[i] as usize);
        }
        let mut out: Vec<(u64, ContingencyTable)> = strata.into_iter().collect();
        out.sort_by_key(|(k, _)| *k); // deterministic order
        out.into_iter().map(|(_, t)| t).collect()
    }

    /// Count in cell `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> u64 {
        self.counts[x * self.ny + y]
    }

    /// Row marginal `n[x][·]` (precomputed at construction).
    pub fn row_marginal(&self, x: usize) -> u64 {
        self.row_marg[x]
    }

    /// Column marginal `n[·][y]` (precomputed at construction).
    pub fn col_marginal(&self, y: usize) -> u64 {
        self.col_marg[y]
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cardinalities `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of rows (x values) with a nonzero marginal.
    pub fn nonzero_rows(&self) -> usize {
        (0..self.nx).filter(|&x| self.row_marginal(x) > 0).count()
    }

    /// Number of columns (y values) with a nonzero marginal.
    pub fn nonzero_cols(&self) -> usize {
        (0..self.ny).filter(|&y| self.col_marginal(y) > 0).count()
    }

    /// G² (likelihood-ratio) statistic of this table:
    /// `2 Σ O · ln(O / E)` with `E = row·col/total`. Zero cells contribute 0.
    pub fn g2(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut g2 = 0.0;
        for x in 0..self.nx {
            let rm = self.row_marginal(x);
            if rm == 0 {
                continue;
            }
            for y in 0..self.ny {
                let o = self.count(x, y);
                if o == 0 {
                    continue;
                }
                let cm = self.col_marginal(y);
                let e = (rm as f64) * (cm as f64) / n;
                g2 += 2.0 * (o as f64) * ((o as f64) / e).ln();
            }
        }
        g2.max(0.0)
    }

    /// Pearson's X² statistic. Cells with zero expected count are skipped.
    pub fn pearson_x2(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut x2 = 0.0;
        for x in 0..self.nx {
            let rm = self.row_marginal(x) as f64;
            if rm == 0.0 {
                continue;
            }
            for y in 0..self.ny {
                let cm = self.col_marginal(y) as f64;
                let e = rm * cm / n;
                if e == 0.0 {
                    continue;
                }
                let o = self.count(x, y) as f64;
                x2 += (o - e) * (o - e) / e;
            }
        }
        x2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_marginals() {
        let x = [0u32, 0, 1, 1, 1];
        let y = [0u32, 1, 0, 0, 1];
        let t = ContingencyTable::from_codes(&x, &y, 2, 2);
        assert_eq!(t.count(0, 0), 1);
        assert_eq!(t.count(1, 0), 2);
        assert_eq!(t.row_marginal(1), 3);
        assert_eq!(t.col_marginal(1), 2);
        assert_eq!(t.total(), 5);
        assert_eq!(t.shape(), (2, 2));
    }

    #[test]
    fn g2_zero_for_perfectly_independent() {
        // Uniform joint: X and Y independent, G² = 0 exactly.
        let x = [0u32, 0, 1, 1];
        let y = [0u32, 1, 0, 1];
        let t = ContingencyTable::from_codes(&x, &y, 2, 2);
        assert!(t.g2().abs() < 1e-12);
        assert!(t.pearson_x2().abs() < 1e-12);
    }

    #[test]
    fn g2_large_for_functional_dependence() {
        // Y = X: strongest possible dependence.
        let x: Vec<u32> = (0..100).map(|i| (i % 2) as u32).collect();
        let y = x.clone();
        let t = ContingencyTable::from_codes(&x, &y, 2, 2);
        // G² for a perfect 2x2 dependence with n=100 is 2*100*ln(2).
        let expected = 2.0 * 100.0 * (2.0f64).ln();
        assert!((t.g2() - expected).abs() < 1e-9, "{}", t.g2());
        assert!((t.pearson_x2() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn g2_reference_value() {
        // 2x2 table [[10, 20], [30, 5]]; scipy G-test statistic.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (cnt, (a, b)) in [(10, (0, 0)), (20, (0, 1)), (30, (1, 0)), (5, (1, 1))] {
            for _ in 0..cnt {
                x.push(a as u32);
                y.push(b as u32);
            }
        }
        let t = ContingencyTable::from_codes(&x, &y, 2, 2);
        // Hand-computed: E = [[18.4615, 11.5385], [21.5385, 13.4615]],
        // G² = 2·Σ O·ln(O/E) = 19.7172…
        assert!((t.g2() - 19.717_205_136_030_48).abs() < 1e-10, "{}", t.g2());
    }

    #[test]
    fn stratified_splits_by_key() {
        let x = [0u32, 1, 0, 1];
        let y = [0u32, 1, 1, 0];
        let z = [7u64, 7, 9, 9];
        let tables = ContingencyTable::stratified(&x, &y, &z, 2, 2);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].total(), 2);
        assert_eq!(tables[0].count(0, 0), 1);
        assert_eq!(tables[1].count(0, 1), 1);
    }

    #[test]
    fn empty_table_statistics() {
        let t = ContingencyTable::from_codes(&[], &[], 2, 2);
        assert_eq!(t.g2(), 0.0);
        assert_eq!(t.pearson_x2(), 0.0);
        assert_eq!(t.nonzero_rows(), 0);
    }
}
