//! Fused sufficient-statistics kernel: the CI-test hot path.
//!
//! Every edge decision the PC algorithm makes bottoms out in tabulating a
//! stratified contingency tensor and reducing it to a G²/X² statistic with
//! structural-zero degrees of freedom. The legacy path
//! ([`crate::contingency::ContingencyTable::stratified`]) hashes a `u64`
//! stratum key per row into a `HashMap` and allocates one `nx·ny` count
//! vector per stratum; this module replaces it on the hot path with two
//! allocation-free tabulation kernels that produce **bit-identical**
//! results:
//!
//! * **Dense** — one flat count tensor indexed `(z·nx + x)·ny + y`, filled
//!   in a single branch-free pass (no hashing, no per-stratum allocation),
//!   then reduced stratum by stratum in ascending key order. The
//!   `DataOracle` reliability floor bounds `nx·ny·Π|Z| ≤ n/min_obs`, so the
//!   tensor of every *testable* query is at most a fifth of the data size —
//!   the dense path covers essentially all real queries.
//! * **Sparse** — a counting-sort-style group-by: sort a row-index
//!   permutation by stratum key, then tabulate one `nx·ny` table per
//!   observed run. Used by callers that bypass the reliability floor and
//!   condition on key spaces far larger than the data.
//!
//! Both paths share one per-stratum reduction that computes row/column
//! marginals **once** and folds the statistic and df in the same cell order
//! and with the same summation order as the legacy table walk, so all three
//! implementations agree to the last bit (enforced by the differential
//! tests in `tests/ci_kernel.rs`).
//!
//! Scratch buffers live in a [`CiScratch`] that callers reuse across tests;
//! [`ci_test_fused`] keeps one per thread, so the thousands of CI tests a
//! PC level fans out perform zero steady-state heap allocation (verified by
//! `tests/alloc_free.rs`).

use crate::chi2::ChiSquared;
use crate::independence::{CiTestKind, CiTestResult};
use std::cell::RefCell;

/// Packed stratum keys for a conditioning set, together with their
/// mixed-radix domain size `Π cards`.
///
/// Keys are built most-significant-column-first over the conditioning
/// columns in the order given, exactly like
/// [`crate::independence::pack_strata`]; knowing the domain is what lets
/// the dense kernel index strata directly instead of hashing, and what lets
/// a cached pack be [extended](StratumPack::extend) by one more column in
/// O(n) instead of re-packing every column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumPack {
    keys: Vec<u64>,
    domain: u64,
}

impl StratumPack {
    /// Packs per-row conditioning codes into stratum keys (mixed-radix over
    /// `columns` in order). Returns `None` when `Π cards` overflows `u64` —
    /// the same condition under which
    /// [`crate::independence::pack_strata`] reports an untestable set.
    pub fn pack(columns: &[&[u32]], cards: &[usize]) -> Option<Self> {
        assert_eq!(columns.len(), cards.len());
        assert!(!columns.is_empty(), "cannot pack zero conditioning columns");
        let mut domain = 1u64;
        for &c in cards {
            domain = domain.checked_mul(c as u64)?;
        }
        let n = columns[0].len();
        let mut keys = vec![0u64; n];
        for (col, &card) in columns.iter().zip(cards) {
            assert_eq!(col.len(), n, "conditioning columns must be aligned");
            fold_mixed_radix(&mut keys, col, card as u64, |code| code as u64);
        }
        Some(Self { keys, domain })
    }

    /// Extends this pack by one more conditioning column as the new
    /// least-significant radix digit: `key' = key·card + code`.
    ///
    /// Because [`StratumPack::pack`] folds columns in order, extending a
    /// pack over columns `c₁..cₖ₋₁` with column `cₖ` yields exactly the
    /// pack of `c₁..cₖ` — same keys, same domain, same overflow behaviour
    /// (`None` when the domain no longer fits in `u64`). This is the O(n)
    /// shortcut the oracle's statistics cache uses to derive level-ℓ
    /// conditioning keys from a cached level-(ℓ−1) pack.
    pub fn extend(&self, col: &[u32], card: usize) -> Option<Self> {
        assert_eq!(col.len(), self.keys.len(), "conditioning columns must be aligned");
        let domain = self.domain.checked_mul(card as u64)?;
        let mut keys = self.keys.clone();
        fold_mixed_radix(&mut keys, col, card as u64, |code| code as u64);
        Some(Self { keys, domain })
    }

    /// Appends the keys of a freshly arrived row batch to this pack in
    /// O(batch) — the incremental counterpart of [`StratumPack::extend`]:
    /// `extend` adds a *column* to every row, `append_rows` adds *rows*
    /// under the same columns. `columns`/`cards` must be the batch's slices
    /// of the same conditioning columns this pack was built over (same
    /// order, same cardinalities); `None` when the cardinalities disagree
    /// with the pack's domain or overflow `u64`, leaving the pack
    /// untouched.
    ///
    /// This is what lets sufficient statistics over a persistent table
    /// update per appended WAL batch instead of re-packing every row from
    /// scratch: the resulting pack is bit-identical to
    /// [`StratumPack::pack`] over the concatenated columns.
    pub fn append_rows(&mut self, columns: &[&[u32]], cards: &[usize]) -> Option<()> {
        let batch = Self::pack(columns, cards)?;
        if batch.domain != self.domain {
            return None;
        }
        self.keys.extend_from_slice(&batch.keys);
        Some(())
    }

    /// The per-row stratum keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Number of representable strata (`Π cards`); every key is `< domain`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Borrowed view for the kernel entry points.
    pub fn strata(&self) -> Strata<'_> {
        Strata { keys: &self.keys, domain: self.domain }
    }

    /// Consumes the pack, returning the bare key vector.
    pub fn into_keys(self) -> Vec<u64> {
        self.keys
    }
}

/// Folds one more mixed-radix digit into `keys` in place:
/// `key' = key·radix + digit(code)`.
///
/// This is the primitive underneath [`StratumPack::pack`] /
/// [`StratumPack::extend`] (where `digit` is the identity and `radix` the
/// column cardinality), exported so other key-packing consumers — notably
/// the DSL's decision-table engine, whose digit map sends `NULL_CODE` and
/// out-of-dictionary codes to reserved digits — share the exact fold order
/// and arithmetic. `digit` must return values `< radix` or downstream
/// dense indexing is out of bounds; the caller is responsible for keeping
/// the accumulated domain within `u64`.
#[inline]
pub fn fold_mixed_radix(keys: &mut [u64], codes: &[u32], radix: u64, digit: impl Fn(u32) -> u64) {
    assert_eq!(keys.len(), codes.len(), "key and code slices must be aligned");
    for (k, &code) in keys.iter_mut().zip(codes.iter()) {
        *k = *k * radix + digit(code);
    }
}

/// Borrowed stratum keys plus their domain, as consumed by the kernel.
///
/// Every key must be `< domain` for the dense path to index its tensor;
/// [`StratumPack`] guarantees this by construction.
#[derive(Debug, Clone, Copy)]
pub struct Strata<'a> {
    /// One packed conditioning key per row.
    pub keys: &'a [u64],
    /// Exclusive upper bound on the keys (`Π cards` for mixed-radix packs).
    pub domain: u64,
}

impl<'a> Strata<'a> {
    /// Wraps bare keys, inferring the tightest domain (`max key + 1`) in
    /// one pass. For packs built by [`StratumPack`] prefer
    /// [`StratumPack::strata`], which knows the domain for free.
    pub fn infer(keys: &'a [u64]) -> Self {
        let domain = keys.iter().copied().max().map_or(0, |m| m.saturating_add(1));
        Self { keys, domain }
    }
}

/// Which tabulation kernel to run. The two paths are bit-identical in
/// output; the choice is purely a space/time trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Flat `domain·nx·ny` count tensor, single branch-free fill pass.
    Dense,
    /// Sort a row permutation by key, tabulate per observed stratum run.
    Sparse,
}

/// Tensors smaller than this are always tabulated densely, regardless of
/// the row count (covers small-n unit-test workloads).
const DENSE_CELL_FLOOR: u128 = 1 << 12;

/// Dense-path space budget as a multiple of the row count. Queries passing
/// the oracle's reliability floor satisfy `cells ≤ n/min_obs ≤ n`, so they
/// sit far below this bound; only floor-bypassing callers ever spill to the
/// sparse path.
const DENSE_CELLS_PER_ROW: u128 = 4;

/// Picks the kernel for a query shape: dense whenever the full count tensor
/// is small relative to the data (or outright tiny), sparse otherwise.
pub fn choose_path(rows: usize, nx: usize, ny: usize, domain: u64) -> KernelPath {
    let cells = (nx as u128) * (ny as u128) * (domain as u128);
    let budget = DENSE_CELL_FLOOR.max(DENSE_CELLS_PER_ROW * rows as u128);
    if cells <= budget {
        KernelPath::Dense
    } else {
        KernelPath::Sparse
    }
}

/// Reusable scratch for the tabulation kernels.
///
/// Buffers grow to the high-water mark of the queries they serve and are
/// never shrunk, so a warmed scratch makes every further test of
/// like-or-smaller shape allocation-free.
#[derive(Debug, Default)]
pub struct CiScratch {
    /// Count tensor: `domain·nx·ny` cells on the dense path, `nx·ny` on the
    /// sparse and marginal paths.
    counts: Vec<u64>,
    /// Row marginals of the stratum being reduced.
    row: Vec<u64>,
    /// Column marginals of the stratum being reduced.
    col: Vec<u64>,
    /// Row-index permutation, sorted by stratum key (sparse path only).
    order: Vec<u32>,
}

impl CiScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clears `buf` and zero-fills it to `len` without deallocating (and
/// without allocating once capacity has grown past `len`).
fn reset(buf: &mut Vec<u64>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Running statistic/df accumulator shared by all strata of one test.
#[derive(Debug, Default)]
struct StatAcc {
    statistic: f64,
    df: f64,
}

impl StatAcc {
    fn finish(self) -> CiTestResult {
        if self.df == 0.0 {
            return CiTestResult { statistic: 0.0, df: 0.0, p_value: 1.0 };
        }
        let p_value = ChiSquared::new(self.df).sf(self.statistic);
        CiTestResult { statistic: self.statistic, df: self.df, p_value }
    }
}

/// Reduces one stratum's `nx·ny` count block into the accumulator.
///
/// Marginals are computed once (exact integer sums, so identical to the
/// legacy per-cell rescans), then the statistic is folded in the same cell
/// order, with the same per-cell expression and the same per-stratum
/// summation order as [`crate::contingency::ContingencyTable::g2`] /
/// [`pearson_x2`](crate::contingency::ContingencyTable::pearson_x2) — the
/// float result is bit-identical by construction.
fn accumulate_stratum(
    kind: CiTestKind,
    counts: &[u64],
    nx: usize,
    ny: usize,
    row: &mut Vec<u64>,
    col: &mut Vec<u64>,
    acc: &mut StatAcc,
) {
    debug_assert_eq!(counts.len(), nx * ny);
    reset(row, nx);
    reset(col, ny);
    let mut total = 0u64;
    for (xi, slot) in row.iter_mut().enumerate() {
        let base = xi * ny;
        let mut rm = 0u64;
        for (yi, cm) in col.iter_mut().enumerate() {
            let c = counts[base + yi];
            rm += c;
            *cm += c;
        }
        *slot = rm;
        total += rm;
    }
    if total == 0 {
        return;
    }
    let rows = row.iter().filter(|&&v| v > 0).count();
    let cols = col.iter().filter(|&&v| v > 0).count();
    if rows < 2 || cols < 2 {
        return; // stratum carries no information about dependence
    }
    let n = total as f64;
    match kind {
        CiTestKind::G2 => {
            let mut g2 = 0.0;
            for (xi, &rm) in row.iter().enumerate() {
                if rm == 0 {
                    continue;
                }
                let base = xi * ny;
                for yi in 0..ny {
                    let o = counts[base + yi];
                    if o == 0 {
                        continue;
                    }
                    let e = (rm as f64) * (col[yi] as f64) / n;
                    g2 += 2.0 * (o as f64) * ((o as f64) / e).ln();
                }
            }
            acc.statistic += g2.max(0.0);
        }
        CiTestKind::Pearson => {
            let mut x2 = 0.0;
            for (xi, &rm) in row.iter().enumerate() {
                let rm = rm as f64;
                if rm == 0.0 {
                    continue;
                }
                let base = xi * ny;
                for yi in 0..ny {
                    let cm = col[yi] as f64;
                    let e = rm * cm / n;
                    if e == 0.0 {
                        continue;
                    }
                    let o = counts[base + yi] as f64;
                    x2 += (o - e) * (o - e) / e;
                }
            }
            acc.statistic += x2;
        }
    }
    acc.df += ((rows - 1) * (cols - 1)) as f64;
}

/// Runs the CI test through an explicit kernel path with caller-provided
/// scratch. `x`/`y` are code slices with codes `< nx`/`< ny`; `strata`
/// carries one packed key per row (`None` = marginal test). All paths
/// iterate strata in ascending key order and agree bit-for-bit with the
/// legacy [`crate::independence::ci_test_reference`].
#[allow(clippy::too_many_arguments)] // mirrors ci_test's signature + path/scratch
pub fn ci_test_kernel(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    strata: Option<Strata<'_>>,
    nx: usize,
    ny: usize,
    path: KernelPath,
    scratch: &mut CiScratch,
) -> CiTestResult {
    assert_eq!(x.len(), y.len(), "code slices must be aligned");
    let mut acc = StatAcc::default();
    match strata {
        None => {
            let cells = nx * ny;
            reset(&mut scratch.counts, cells);
            for (&a, &b) in x.iter().zip(y.iter()) {
                scratch.counts[a as usize * ny + b as usize] += 1;
            }
            accumulate_stratum(
                kind,
                &scratch.counts,
                nx,
                ny,
                &mut scratch.row,
                &mut scratch.col,
                &mut acc,
            );
        }
        Some(s) => {
            assert_eq!(x.len(), s.keys.len(), "stratum keys must be aligned");
            if x.is_empty() {
                return acc.finish();
            }
            match path {
                KernelPath::Dense => dense_strata(kind, x, y, s, nx, ny, scratch, &mut acc),
                KernelPath::Sparse => sparse_strata(kind, x, y, s, nx, ny, scratch, &mut acc),
            }
        }
    }
    acc.finish()
}

/// Dense path: one flat `domain·nx·ny` tensor, one branch-free fill pass,
/// then a stratum-major reduction. Ascending stratum index *is* ascending
/// key order because keys are mixed-radix packed below `domain`.
#[allow(clippy::too_many_arguments)]
fn dense_strata(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    s: Strata<'_>,
    nx: usize,
    ny: usize,
    scratch: &mut CiScratch,
    acc: &mut StatAcc,
) {
    let cells = nx * ny;
    let domain = s.domain as usize;
    reset(&mut scratch.counts, domain * cells);
    for i in 0..x.len() {
        let k = s.keys[i] as usize;
        debug_assert!(k < domain, "stratum key {k} outside domain {domain}");
        scratch.counts[(k * nx + x[i] as usize) * ny + y[i] as usize] += 1;
    }
    for z in 0..domain {
        accumulate_stratum(
            kind,
            &scratch.counts[z * cells..(z + 1) * cells],
            nx,
            ny,
            &mut scratch.row,
            &mut scratch.col,
            acc,
        );
    }
}

/// Sparse fallback: sort a row-index permutation by stratum key (in place,
/// no per-stratum allocation) and tabulate each observed run into one
/// reused `nx·ny` block. Runs come out in ascending key order, matching the
/// dense path and the legacy sorted-`HashMap` walk.
#[allow(clippy::too_many_arguments)]
fn sparse_strata(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    s: Strata<'_>,
    nx: usize,
    ny: usize,
    scratch: &mut CiScratch,
    acc: &mut StatAcc,
) {
    let n = x.len();
    assert!(n <= u32::MAX as usize, "sparse kernel indexes rows with u32");
    let cells = nx * ny;
    scratch.order.clear();
    scratch.order.extend(0..n as u32);
    scratch.order.sort_unstable_by_key(|&i| s.keys[i as usize]);
    reset(&mut scratch.counts, cells);
    let mut start = 0;
    while start < n {
        let key = s.keys[scratch.order[start] as usize];
        let mut end = start + 1;
        while end < n && s.keys[scratch.order[end] as usize] == key {
            end += 1;
        }
        for &i in &scratch.order[start..end] {
            scratch.counts[x[i as usize] as usize * ny + y[i as usize] as usize] += 1;
        }
        accumulate_stratum(kind, &scratch.counts, nx, ny, &mut scratch.row, &mut scratch.col, acc);
        scratch.counts[..cells].fill(0);
        start = end;
    }
}

thread_local! {
    /// Per-thread scratch: PC fans thousands of CI tests out to each worker
    /// thread, and after the first few tests warm these buffers the rest
    /// run with zero heap allocation.
    static SCRATCH: RefCell<CiScratch> = RefCell::new(CiScratch::new());
}

/// The fused CI test: picks dense/sparse via [`choose_path`] and runs on
/// the calling thread's reused scratch. Bit-identical to
/// [`crate::independence::ci_test_reference`] for every input.
pub fn ci_test_fused(
    kind: CiTestKind,
    x: &[u32],
    y: &[u32],
    strata: Option<Strata<'_>>,
    nx: usize,
    ny: usize,
) -> CiTestResult {
    let path = match &strata {
        Some(s) => choose_path(x.len(), nx, ny, s.domain),
        None => KernelPath::Dense,
    };
    SCRATCH.with(|s| ci_test_kernel(kind, x, y, strata, nx, ny, path, &mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::{ci_test_reference, pack_strata};

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn pack_matches_pack_strata() {
        let a = [0u32, 1, 2];
        let b = [1u32, 0, 1];
        let pack = StratumPack::pack(&[&a, &b], &[3, 2]).unwrap();
        assert_eq!(pack.keys(), &[1, 2, 5]);
        assert_eq!(pack.domain(), 6);
        assert_eq!(pack_strata(&[&a, &b], &[3, 2]).unwrap(), pack.keys());
    }

    #[test]
    fn extend_matches_full_pack() {
        let mut rng = xorshift(5);
        let n = 500;
        let cols: Vec<Vec<u32>> = [3usize, 4, 2]
            .iter()
            .map(|&c| (0..n).map(|_| (rng() % c as u64) as u32).collect())
            .collect();
        let refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
        let full = StratumPack::pack(&refs, &[3, 4, 2]).unwrap();
        let extended = StratumPack::pack(&refs[..2], &[3, 4]).unwrap().extend(&cols[2], 2).unwrap();
        assert_eq!(full, extended);
    }

    #[test]
    fn append_rows_matches_pack_of_concatenation() {
        let mut rng = xorshift(11);
        let cards = [3usize, 4, 2];
        let gen_cols = |rng: &mut dyn FnMut() -> u64, n: usize| -> Vec<Vec<u32>> {
            cards.iter().map(|&c| (0..n).map(|_| (rng() % c as u64) as u32).collect()).collect()
        };
        let base = gen_cols(&mut rng, 400);
        let batch1 = gen_cols(&mut rng, 37);
        let batch2 = gen_cols(&mut rng, 1);
        let empty = gen_cols(&mut rng, 0);

        fn refs(cols: &[Vec<u32>]) -> Vec<&[u32]> {
            cols.iter().map(|c| c.as_slice()).collect()
        }
        let mut incremental = StratumPack::pack(&refs(&base), &cards).unwrap();
        for batch in [&batch1, &batch2, &empty] {
            incremental.append_rows(&refs(batch), &cards).unwrap();
        }

        let concat: Vec<Vec<u32>> = (0..cards.len())
            .map(|c| {
                let mut col = base[c].clone();
                col.extend_from_slice(&batch1[c]);
                col.extend_from_slice(&batch2[c]);
                col
            })
            .collect();
        let scratch = StratumPack::pack(&refs(&concat), &cards).unwrap();
        assert_eq!(incremental, scratch, "per-batch appends equal a from-scratch repack");
    }

    #[test]
    fn append_rows_rejects_mismatched_cards() {
        let a = [0u32, 1, 2];
        let b = [1u32, 0, 1];
        let mut pack = StratumPack::pack(&[&a, &b], &[3, 2]).unwrap();
        let before = pack.clone();
        assert!(pack.append_rows(&[&a[..1], &b[..1]], &[4, 2]).is_none(), "wrong cardinality");
        assert_eq!(pack, before, "failed append leaves the pack untouched");
    }

    #[test]
    fn extend_overflow_matches_pack_overflow() {
        let col = vec![0u32; 4];
        let huge = 1usize << 31;
        let base = StratumPack::pack(&[&col, &col], &[huge, huge]).unwrap();
        assert!(base.extend(&col, huge).is_none());
        assert!(StratumPack::pack(&[&col, &col, &col], &[huge, huge, huge]).is_none());
    }

    #[test]
    fn dense_and_sparse_match_reference() {
        let mut rng = xorshift(17);
        let n = 3000;
        let (nx, ny, zc) = (3usize, 4usize, 5usize);
        let x: Vec<u32> = (0..n).map(|_| (rng() % nx as u64) as u32).collect();
        let y: Vec<u32> = (0..n).map(|_| (rng() % ny as u64) as u32).collect();
        let z: Vec<u32> = (0..n).map(|_| (rng() % zc as u64) as u32).collect();
        let pack = StratumPack::pack(&[&z], &[zc]).unwrap();
        for kind in [CiTestKind::G2, CiTestKind::Pearson] {
            let legacy = ci_test_reference(kind, &x, &y, Some(pack.keys()), nx, ny);
            let mut scratch = CiScratch::new();
            for path in [KernelPath::Dense, KernelPath::Sparse] {
                let got =
                    ci_test_kernel(kind, &x, &y, Some(pack.strata()), nx, ny, path, &mut scratch);
                assert_eq!(
                    got.statistic.to_bits(),
                    legacy.statistic.to_bits(),
                    "{kind:?} {path:?}"
                );
                assert_eq!(got.df.to_bits(), legacy.df.to_bits());
                assert_eq!(got.p_value.to_bits(), legacy.p_value.to_bits());
            }
        }
    }

    #[test]
    fn empty_input_is_conservative() {
        let r = ci_test_fused(CiTestKind::G2, &[], &[], Some(Strata::infer(&[])), 2, 2);
        assert_eq!(r.df, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn choose_path_prefers_dense_under_floor() {
        assert_eq!(choose_path(100, 2, 2, 8), KernelPath::Dense);
        assert_eq!(choose_path(1000, 4, 4, 1 << 40), KernelPath::Sparse);
        // Reliability-floor shape: cells ≤ n/5 is always dense.
        assert_eq!(choose_path(100_000, 4, 5, 1000), KernelPath::Dense);
    }
}
