//! The TCP serving loop: accept, frame, isolate, drain.
//!
//! One OS thread per connection, framed by newlines. The loop enforces
//! the socket-hygiene half of the robustness story:
//!
//! - **Slow-loris**: a frame that stays incomplete past
//!   [`ServerConfig::read_timeout`] hangs up — a trickling client cannot
//!   pin a thread.
//! - **Idle**: a silent connection past [`ServerConfig::idle_timeout`]
//!   hangs up.
//! - **Oversize**: a frame past [`ServerConfig::max_frame_bytes`] gets a
//!   typed `PAYLOAD_TOO_LARGE` response, then the connection closes.
//! - **Panic isolation**: each request runs under `catch_unwind`; a
//!   panicking handler produces a typed `INTERNAL` response and the
//!   connection (and every other connection) lives on. Admission permits
//!   are RAII, so the unwind releases capacity.
//! - **Graceful drain**: `shutdown` (the verb or [`ServerHandle::shutdown`])
//!   stops accepting, lets in-flight requests finish, then joins every
//!   thread. No request is abandoned mid-verb.

use crate::admission::Admission;
use crate::handlers::{self, Counters, Ctx, Outcome};
use crate::proto::{self, ErrorKind, WireError};
use crate::registry::EngineRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads / the acceptor wake to check for drain.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Deadline applied when a request carries no `deadline_ms`.
    pub default_deadline: Duration,
    /// Upper clamp on client-supplied deadlines.
    pub max_deadline: Duration,
    /// Per-tenant in-flight quota (admission control).
    pub tenant_inflight: usize,
    /// Global in-flight quota (admission control).
    pub global_inflight: usize,
    /// Maximum bytes in one request frame.
    pub max_frame_bytes: usize,
    /// Maximum wall time a frame may stay incomplete (slow-loris bound).
    pub read_timeout: Duration,
    /// Maximum wall time a connection may sit idle between frames.
    pub idle_timeout: Duration,
    /// Back-off hint attached to `RETRY_AFTER` shed responses.
    pub retry_after_ms: u64,
    /// Enables the chaos-harness debug verbs (`sleep`, `boom`).
    pub debug_ops: bool,
    /// Root directory for persistent `(tenant, table)` stores; `None`
    /// disables the `append` / `detect_batch` verbs.
    pub store_root: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            tenant_inflight: 4,
            global_inflight: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 50,
            debug_ops: false,
            store_root: None,
        }
    }
}

/// Drain signal shared by the acceptor, every connection, and the
/// `shutdown` verb.
#[derive(Debug, Default)]
pub struct Lifecycle {
    draining: AtomicBool,
}

impl Lifecycle {
    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Requests drain: stop accepting connections and new frames; finish
    /// in-flight requests.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }
}

/// The server; use [`Server::spawn`] to start one.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds and starts serving on background threads. Returns a handle
    /// for the picked address, shared state, and graceful shutdown.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            admission: Admission::new(config.tenant_inflight, config.global_inflight),
            registry: EngineRegistry::new(),
            stores: config
                .store_root
                .as_ref()
                .map(|p| crate::stores::StoreRegistry::new(p.clone())),
            lifecycle: Arc::new(Lifecycle::default()),
            started: Instant::now(),
            counters: Counters::new(),
            config,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("guardrail-acceptor".to_string())
                .spawn(move || accept_loop(listener, ctx, conns))?
        };
        Ok(ServerHandle { addr, ctx, acceptor: Some(acceptor), conns })
    }
}

/// Handle to a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared request context (registry, admission, counters) — what the
    /// chaos suite asserts invariants against.
    pub fn ctx(&self) -> &Arc<Ctx> {
        &self.ctx
    }

    /// The admission controller.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.ctx.admission
    }

    /// The engine registry.
    pub fn registry(&self) -> &Arc<EngineRegistry> {
        &self.ctx.registry
    }

    /// Graceful drain: stop accepting, let in-flight requests finish, join
    /// every server thread.
    pub fn shutdown(mut self) {
        self.ctx.lifecycle.request_drain();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = {
            let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *conns)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle still signals drain so the threads exit on
        // their own; only an explicit `shutdown()` joins them.
        self.ctx.lifecycle.request_drain();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        if ctx.lifecycle.is_draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = Arc::clone(&ctx);
                let spawned = thread::Builder::new()
                    .name("guardrail-conn".to_string())
                    .spawn(move || serve_conn(stream, &ctx));
                match spawned {
                    Ok(handle) => {
                        conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                    }
                    Err(_) => {
                        // Thread exhaustion: shed the connection rather
                        // than die; the client sees a closed socket.
                    }
                }
            }
            // Nonblocking accept: nothing pending — nap, re-check drain.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_SLICE),
            Err(_) => thread::sleep(POLL_SLICE),
        }
    }
}

/// Serves one connection until close, timeout, violation, or drain.
fn serve_conn(mut stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_SLICE)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Clock for both timeouts: reset on each completed frame and when the
    // first byte of a new frame arrives.
    let mut wait_started = Instant::now();
    loop {
        // Drain every complete frame already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            wait_started = Instant::now();
            if !process_frame(&line[..line.len() - 1], &mut stream, ctx) {
                return;
            }
        }
        if ctx.lifecycle.is_draining() {
            return;
        }
        if buf.len() > ctx.config.max_frame_bytes {
            let err = WireError::new(
                ErrorKind::PayloadTooLarge,
                format!("frame exceeds {} bytes", ctx.config.max_frame_bytes),
            );
            ctx.counters.bump(Outcome::Error);
            let _ = write_line(&mut stream, &proto::render_err(None, &err));
            drain_before_close(&mut stream);
            return;
        }
        let limit = if buf.is_empty() { ctx.config.idle_timeout } else { ctx.config.read_timeout };
        if wait_started.elapsed() > limit {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed (possibly mid-frame: drop the partial)
            Ok(n) => {
                if buf.is_empty() {
                    wait_started = Instant::now();
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Parses and executes one frame; `false` closes the connection.
fn process_frame(raw: &[u8], stream: &mut TcpStream, ctx: &Arc<Ctx>) -> bool {
    let raw = match raw.last() {
        Some(b'\r') => &raw[..raw.len() - 1],
        _ => raw,
    };
    if raw.iter().all(u8::is_ascii_whitespace) {
        return true; // blank keep-alive line
    }
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s,
        Err(_) => {
            ctx.counters.bump(Outcome::Error);
            let err = WireError::new(ErrorKind::BadRequest, "frame is not valid UTF-8");
            return write_line(stream, &proto::render_err(None, &err));
        }
    };
    let req = match proto::parse_request(line) {
        Ok(req) => req,
        Err(err) => {
            ctx.counters.bump(Outcome::Error);
            return write_line(stream, &proto::render_err(None, &err));
        }
    };
    let op = req.op;
    // Panic isolation: a poisoned request yields a typed INTERNAL error;
    // the admission permit (RAII) was released by the unwind.
    let response = match catch_unwind(AssertUnwindSafe(|| handlers::handle(ctx, &req))) {
        Ok((response, _outcome)) => response,
        Err(_) => {
            ctx.counters.bump(Outcome::Error);
            let err = WireError::new(ErrorKind::Internal, "handler panicked; request isolated");
            proto::render_err(Some(op), &err)
        }
    };
    write_line(stream, &response)
}

/// Lingering close after a protocol violation: half-close the write side,
/// then discard the client's remaining bytes (bounded) so the kernel does
/// not RST the connection with our typed error still unread by the peer.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    let started = Instant::now();
    while started.elapsed() < Duration::from_millis(500) {
        match stream.read(&mut scratch) {
            Ok(0) => return, // peer finished: the close below is clean
            Ok(_) => {}      // discard
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    let ok = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    ok.is_ok()
}
