//! Chaos harness: a minimal line-protocol client plus fault injectors.
//!
//! Everything here is plain `std::net` so the robustness suite exercises
//! the server over real sockets, not in-process shortcuts. The injectors
//! model the adversaries the server claims to survive:
//!
//! - [`slow_loris`] trickles a frame one byte at a time — the read-timeout
//!   defense must cut it loose.
//! - [`disconnect_mid_frame`] abandons a half-written frame — the partial
//!   must be dropped without poisoning anything.
//! - [`blast`] fires arbitrary bytes (fuzz garbage, oversized frames,
//!   deeply nested JSON) and returns whatever came back.

use guardrail_obs::json::{self, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A blocking NDJSON client for one connection.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with a 10 s read timeout (a hung test fails, not wedges).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { writer: stream, reader })
    }

    /// Writes one request line (newline appended).
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response line (newline stripped). `UnexpectedEof` when the
    /// server hung up.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// One request/response round trip.
    pub fn call(&mut self, line: &str) -> io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// One round trip with the response parsed as JSON (every server
    /// response must parse with the workspace's own parser).
    pub fn request(&mut self, line: &str) -> io::Result<Json> {
        let response = self.call(line)?;
        json::parse(&response).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("unparseable response: {e}"))
        })
    }

    /// Writes raw bytes with no framing (for half-frames and garbage).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}

/// Trickles `frame` one byte every `byte_delay`, never completing it, for
/// at most `max_wall`. Returns how many bytes the server accepted before
/// hanging up (the read-timeout defense working).
pub fn slow_loris(
    addr: SocketAddr,
    frame: &[u8],
    byte_delay: Duration,
    max_wall: Duration,
) -> io::Result<usize> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let started = Instant::now();
    let mut sent = 0;
    for byte in frame.iter().cycle() {
        if started.elapsed() > max_wall {
            break;
        }
        if stream.write_all(std::slice::from_ref(byte)).and_then(|()| stream.flush()).is_err() {
            break; // server cut us loose
        }
        sent += 1;
        std::thread::sleep(byte_delay);
    }
    Ok(sent)
}

/// Connects, writes `partial` with **no** terminating newline, and drops
/// the connection — a client dying mid-request.
pub fn disconnect_mid_frame(addr: SocketAddr, partial: &[u8]) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(partial)?;
    stream.flush()?;
    drop(stream); // RST/FIN with the frame incomplete
    Ok(())
}

/// Fires `payload` at the server, half-closes the write side, and returns
/// whatever bytes come back before `timeout` (possibly none). The caller
/// asserts on the response — typically that it is a typed error line, or
/// empty because the server hung up, but never a crash.
pub fn blast(addr: SocketAddr, payload: &[u8], timeout: Duration) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    // The server may hang up while we are still writing (oversize frames,
    // binary junk): a broken pipe or reset here is the injected fault
    // working, not a harness error.
    if stream.write_all(payload).and_then(|()| stream.flush()).is_err() {
        return Ok(Vec::new());
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    let started = Instant::now();
    loop {
        if started.elapsed() > timeout {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            // Timeout, reset, or pipe teardown all mean "no more bytes are
            // coming" — return whatever arrived first.
            Err(_) => break,
        }
    }
    Ok(out)
}
