//! `guardrail-server`: a fault-tolerant, multi-tenant serving daemon.
//!
//! Everything else in the workspace is a batch tool; this crate makes
//! Guardrail *resident*: a threaded TCP daemon speaking newline-delimited
//! JSON (one request object per line, one response object per line) that
//! exposes the pipeline's verbs — `fit`, `detect`, `rectify`, `vet` — plus
//! `status` and `shutdown`, against an engine registry keyed by
//! `(tenant, table)` with atomic hot-swap on re-synthesis. With
//! `--store-root` the daemon also owns persistent stores ([`stores`]):
//! `append` durably ingests row batches (segment + WAL on disk) and
//! `detect_batch` probes only the appended rows through a cached
//! determinant-index [`guardrail_dsl::IncrementalDetector`].
//!
//! The design center is *graceful degradation over collapse*:
//!
//! * **Admission control** ([`admission`]) — bounded per-tenant and global
//!   in-flight quotas. Requests beyond the bound are **shed early** with a
//!   typed `RETRY_AFTER` response instead of queueing to death.
//! * **Deadlines** ([`guardrail_governor::Budget`]) — every admitted
//!   request runs under a budget built from the client's `deadline_ms`
//!   (clamped) or the server default. A deadline of zero or in the past
//!   yields an immediate typed `BUDGET_EXHAUSTED`; work cut short mid-run
//!   returns its best result with a [`DegradationReport`] on the wire, so
//!   clients can distinguish *clean*, *degraded*, and *shed*.
//! * **Panic isolation** ([`server`]) — each request runs inside
//!   `catch_unwind`; a poisoned request produces a typed `INTERNAL`
//!   response and can never take down the registry or leak an admission
//!   permit (permits are RAII and released on unwind).
//! * **Socket hygiene** — read timeouts bound slow-loris clients, frames
//!   are capped at a configurable byte size, malformed frames get typed
//!   `BAD_REQUEST` responses on a still-live connection.
//! * **Graceful drain** — `shutdown` stops accepting, lets in-flight work
//!   finish (or deadline out), then joins every worker.
//!
//! The [`chaos`] module is the matching test harness: slow-loris writers,
//! mid-request disconnects, garbage blasters, and a scripted [`chaos::Client`]
//! used by `tests/server_robustness.rs` and the CI `server-smoke` job.
//!
//! Request counters (`server.requests.{ok,degraded,shed,error}`) flow
//! through [`guardrail_obs::count_always`], so the `status` endpoint and a
//! `--trace-out` recording read the same cells.
//!
//! ```
//! use guardrail_server::{chaos::Client, Server, ServerConfig};
//!
//! let handle = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let resp = client
//!     .request(r#"{"op":"fit","tenant":"t0","table":"zips","csv":"zip,city\n94704,Berkeley\n94704,Berkeley\n97201,Portland\n"}"#)
//!     .unwrap();
//! assert_eq!(resp.get("ok"), Some(&guardrail_obs::json::Json::Bool(true)));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod chaos;
pub mod handlers;
pub mod proto;
pub mod registry;
pub mod server;
pub mod stores;

pub use admission::{Admission, AdmissionDecision, Permit, TenantSnapshot};
pub use guardrail_governor::DegradationReport;
pub use proto::{parse_request, ErrorKind, JVal, Op, Request, WireError, MAX_NAME_LEN};
pub use registry::{EngineRegistry, EngineVersion};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stores::{StoreRegistry, StoreSlot};
