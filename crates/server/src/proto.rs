//! The wire protocol: newline-delimited JSON, one object per line.
//!
//! # Grammar
//!
//! ```text
//! session  := (request "\n" response "\n")*
//! request  := { "op": op, ["tenant": name], ["table": name],
//!               ["deadline_ms": uint], op-specific fields... }
//! op       := "fit" | "detect" | "rectify" | "vet" | "append"
//!           | "detect_batch" | "status" | "shutdown"
//!           | "sleep" | "boom"            (debug ops; require --debug-ops)
//! name     := 1..=64 chars of [A-Za-z0-9_.-]
//! response := { "ok": true,  "op": op, ...result fields...,
//!               "status": "clean" | "degraded",
//!               ["degradation": [{"stage","reason","work_done"}]] }
//!           | { "ok": false, ["op": op], "error":
//!               { "kind": kind, "message": string, ["retry_after_ms": uint] } }
//! kind     := "BAD_REQUEST" | "PAYLOAD_TOO_LARGE" | "RETRY_AFTER"
//!           | "BUDGET_EXHAUSTED" | "NOT_FOUND" | "FIT_FAILED"
//!           | "INTERNAL" | "SHUTTING_DOWN"
//! ```
//!
//! Op-specific request fields: `csv` (fit/detect/rectify/vet/append, the
//! payload table as CSV text), `epsilon` (fit), `scheme` (vet/rectify:
//! `raise|ignore|coerce|rectify`), `sleep_ms` (sleep). Unknown top-level
//! keys are rejected — a typo must fail loudly, not silently change
//! semantics.
//!
//! `append` and `detect_batch` target the server's persistent store for
//! `(tenant, table)` (requires `--store-root`): `append` durably appends
//! the CSV payload's rows as one WAL batch (creating the store, with the
//! payload as its base segment, on first use) and returns `batch_id`;
//! `detect_batch` probes only the rows appended since the previous call
//! against the published engine and returns the *new* violations plus the
//! probed-row work units — clients pipeline `append`/`detect_batch` pairs
//! to validate a stream of row chunks without rescanning the table.
//!
//! Requests are parsed with `guardrail_obs::json` (recursion-bounded, full
//! JSON grammar) and responses are emitted through [`JVal`], which escapes
//! through the same `json::escape` — so everything the server writes is
//! parseable by the workspace's own parser, the trace tooling included.

use guardrail_core::ErrorScheme;
use guardrail_governor::DegradationReport;
use guardrail_obs::json::{self, Json};
use guardrail_table::Value;
use std::fmt::Write as _;

/// Maximum byte length of a `tenant` / `table` name.
pub const MAX_NAME_LEN: usize = 64;

/// A protocol verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Synthesize constraints from a CSV payload and hot-swap them in.
    Fit,
    /// Detect violations in a CSV payload against the current engine.
    Detect,
    /// Repair a CSV payload (rectify/coerce) and return the fixed CSV.
    Rectify,
    /// Query-time vetting of a CSV payload under an error scheme.
    Vet,
    /// Durably append a CSV payload's rows to the persistent store for
    /// `(tenant, table)` (one WAL batch; creates the store on first use).
    Append,
    /// Incrementally detect violations in rows appended since the last
    /// call, probing only the new batch against the published engine.
    DetectBatch,
    /// Server health: engines, tenants, counters, admission snapshot.
    Status,
    /// Begin graceful drain: stop accepting, finish in-flight work.
    Shutdown,
    /// Debug: hold an admission slot for `sleep_ms` under the deadline.
    Sleep,
    /// Debug: panic inside the handler (exercises panic isolation).
    Boom,
}

impl Op {
    /// Wire name (the `"op"` field value).
    pub fn wire_name(self) -> &'static str {
        match self {
            Op::Fit => "fit",
            Op::Detect => "detect",
            Op::Rectify => "rectify",
            Op::Vet => "vet",
            Op::Append => "append",
            Op::DetectBatch => "detect_batch",
            Op::Status => "status",
            Op::Shutdown => "shutdown",
            Op::Sleep => "sleep",
            Op::Boom => "boom",
        }
    }

    /// Span name used when tracing is armed.
    pub fn span_name(self) -> &'static str {
        match self {
            Op::Fit => "serve_fit",
            Op::Detect => "serve_detect",
            Op::Rectify => "serve_rectify",
            Op::Vet => "serve_vet",
            Op::Append => "serve_append",
            Op::DetectBatch => "serve_detect_batch",
            Op::Status => "serve_status",
            Op::Shutdown => "serve_shutdown",
            Op::Sleep => "serve_sleep",
            Op::Boom => "serve_boom",
        }
    }

    /// Whether the op is a chaos-harness debug verb (gated behind
    /// `ServerConfig::debug_ops`).
    pub fn is_debug(self) -> bool {
        matches!(self, Op::Sleep | Op::Boom)
    }

    fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "fit" => Op::Fit,
            "detect" => Op::Detect,
            "rectify" => Op::Rectify,
            "vet" => Op::Vet,
            "append" => Op::Append,
            "detect_batch" => Op::DetectBatch,
            "status" => Op::Status,
            "shutdown" => Op::Shutdown,
            "sleep" => Op::Sleep,
            "boom" => Op::Boom,
            _ => return None,
        })
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The verb.
    pub op: Op,
    /// Tenant key (admission quotas and registry namespace).
    pub tenant: String,
    /// Table key within the tenant.
    pub table: String,
    /// Inline CSV payload for fit/detect/rectify/vet.
    pub csv: Option<String>,
    /// Client-supplied deadline; the server clamps it to its maximum and
    /// substitutes its default when absent.
    pub deadline_ms: Option<u64>,
    /// Synthesis ε for fit.
    pub epsilon: Option<f64>,
    /// Error scheme for vet/rectify.
    pub scheme: Option<ErrorScheme>,
    /// Debug: milliseconds the sleep op should hold its slot.
    pub sleep_ms: Option<u64>,
}

/// Typed error taxonomy on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame, unknown op/field, invalid payload.
    BadRequest,
    /// Frame exceeded the configured byte cap.
    PayloadTooLarge,
    /// Load shed: quota saturated; retry after the hinted delay.
    RetryAfter,
    /// The request's deadline was already (or became) exhausted.
    BudgetExhausted,
    /// No engine published for (tenant, table).
    NotFound,
    /// Synthesis failed; the previously published version is retained.
    FitFailed,
    /// The handler panicked; the request was isolated and dropped.
    Internal,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorKind {
    /// Wire name (the `error.kind` field value).
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "BAD_REQUEST",
            ErrorKind::PayloadTooLarge => "PAYLOAD_TOO_LARGE",
            ErrorKind::RetryAfter => "RETRY_AFTER",
            ErrorKind::BudgetExhausted => "BUDGET_EXHAUSTED",
            ErrorKind::NotFound => "NOT_FOUND",
            ErrorKind::FitFailed => "FIT_FAILED",
            ErrorKind::Internal => "INTERNAL",
            ErrorKind::ShuttingDown => "SHUTTING_DOWN",
        }
    }
}

/// A typed wire error: kind, human message, optional retry hint.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Which taxon.
    pub kind: ErrorKind,
    /// Human-readable detail (never required for client dispatch).
    pub message: String,
    /// For `RETRY_AFTER`: suggested client back-off in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A typed error with no retry hint.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self { kind, message: message.into(), retry_after_ms: None }
    }

    /// A `RETRY_AFTER` shed response.
    pub fn retry_after(ms: u64, message: impl Into<String>) -> Self {
        Self { kind: ErrorKind::RetryAfter, message: message.into(), retry_after_ms: Some(ms) }
    }
}

/// Parses and validates one request line.
///
/// Every failure is a typed [`WireError`] (kind `BAD_REQUEST`) — this
/// function must never panic, whatever the bytes: the fuzz suite in
/// `tests/server_robustness.rs` feeds it random byte strings, truncated
/// frames, and deeply nested JSON.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let bad = |msg: String| WireError::new(ErrorKind::BadRequest, msg);
    let doc = json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let members = doc.as_obj().ok_or_else(|| bad("request must be a JSON object".into()))?;

    let mut op = None;
    let mut tenant = None;
    let mut table = None;
    let mut csv = None;
    let mut deadline_ms = None;
    let mut epsilon = None;
    let mut scheme = None;
    let mut sleep_ms = None;
    for (key, value) in members {
        match key.as_str() {
            "op" => {
                let s = value.as_str().ok_or_else(|| bad("\"op\" must be a string".into()))?;
                op = Some(Op::from_wire(s).ok_or_else(|| bad(format!("unknown op {s:?}")))?);
            }
            "tenant" => tenant = Some(parse_name(value, "tenant")?),
            "table" => table = Some(parse_name(value, "table")?),
            "csv" => {
                csv = Some(
                    value
                        .as_str()
                        .ok_or_else(|| bad("\"csv\" must be a string".into()))?
                        .to_string(),
                );
            }
            "deadline_ms" => {
                deadline_ms =
                    Some(value.as_u64().ok_or_else(|| {
                        bad("\"deadline_ms\" must be a non-negative integer".into())
                    })?);
            }
            "epsilon" => {
                let e = value.as_num().ok_or_else(|| bad("\"epsilon\" must be a number".into()))?;
                if !(0.0..=1.0).contains(&e) {
                    return Err(bad(format!("\"epsilon\" must be in [0,1], got {e}")));
                }
                epsilon = Some(e);
            }
            "scheme" => {
                let s = value.as_str().ok_or_else(|| bad("\"scheme\" must be a string".into()))?;
                scheme = Some(s.parse::<ErrorScheme>().map_err(bad)?);
            }
            "sleep_ms" => {
                sleep_ms =
                    Some(value.as_u64().ok_or_else(|| {
                        bad("\"sleep_ms\" must be a non-negative integer".into())
                    })?);
            }
            other => return Err(bad(format!("unknown field {other:?}"))),
        }
    }
    let op = op.ok_or_else(|| bad("missing required field \"op\"".into()))?;
    Ok(Request {
        op,
        tenant: tenant.unwrap_or_else(|| "default".to_string()),
        table: table.unwrap_or_else(|| "default".to_string()),
        csv,
        deadline_ms,
        epsilon,
        scheme,
        sleep_ms,
    })
}

fn parse_name(value: &Json, field: &str) -> Result<String, WireError> {
    let bad = |msg: String| WireError::new(ErrorKind::BadRequest, msg);
    let s = value.as_str().ok_or_else(|| bad(format!("{field:?} must be a string")))?;
    if s.is_empty() || s.len() > MAX_NAME_LEN {
        return Err(bad(format!("{field:?} must be 1..={MAX_NAME_LEN} bytes")));
    }
    if !s.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-')) {
        return Err(bad(format!("{field:?} may only contain [A-Za-z0-9_.-]")));
    }
    Ok(s.to_string())
}

/// A JSON value for response emission. The mirror of
/// [`guardrail_obs::json::Json`] on the write side — integers stay
/// integers (no f64 round-trip), strings escape through
/// [`guardrail_obs::json::escape`].
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer, rendered without a fraction.
    U64(u64),
    /// Signed integer, rendered without a fraction.
    I64(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JVal>),
    /// An object, members in insertion order.
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        JVal::Str(s.into())
    }

    /// Renders compact JSON into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JVal::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JVal::I64(n) => {
                let _ = write!(out, "{n}");
            }
            JVal::F64(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            JVal::F64(_) => out.push_str("null"),
            JVal::Str(s) => {
                out.push('"');
                out.push_str(&json::escape(s));
                out.push('"');
            }
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JVal::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json::escape(k));
                    out.push_str("\":");
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders to an owned string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }
}

impl From<&Value> for JVal {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => JVal::Null,
            Value::Bool(b) => JVal::Bool(*b),
            Value::Int(i) => JVal::I64(*i),
            Value::Float(x) => JVal::F64(*x),
            Value::Str(s) => JVal::Str(s.clone()),
        }
    }
}

/// Builds a success response line (no trailing newline): `"ok": true`,
/// the op echo, the op-specific `fields`, then the degradation taxonomy —
/// `"status": "clean" | "degraded"` plus a `"degradation"` array when any
/// stage was cut short.
pub fn render_ok(
    op: Op,
    fields: Vec<(&'static str, JVal)>,
    degradation: &DegradationReport,
) -> String {
    let mut members =
        vec![("ok".to_string(), JVal::Bool(true)), ("op".to_string(), JVal::str(op.wire_name()))];
    for (k, v) in fields {
        members.push((k.to_string(), v));
    }
    let degraded = !degradation.is_complete();
    members.push(("status".to_string(), JVal::str(if degraded { "degraded" } else { "clean" })));
    if degraded {
        members.push(("degradation".to_string(), degradation_jval(degradation)));
    }
    JVal::Obj(members).to_json()
}

/// Builds an error response line (no trailing newline).
pub fn render_err(op: Option<Op>, err: &WireError) -> String {
    let mut members = vec![("ok".to_string(), JVal::Bool(false))];
    if let Some(op) = op {
        members.push(("op".to_string(), JVal::str(op.wire_name())));
    }
    let mut error = vec![
        ("kind".to_string(), JVal::str(err.kind.wire_name())),
        ("message".to_string(), JVal::str(err.message.clone())),
    ];
    if let Some(ms) = err.retry_after_ms {
        error.push(("retry_after_ms".to_string(), JVal::U64(ms)));
    }
    members.push(("error".to_string(), JVal::Obj(error)));
    JVal::Obj(members).to_json()
}

/// Serializes a [`DegradationReport`] for the wire.
pub fn degradation_jval(report: &DegradationReport) -> JVal {
    JVal::Arr(
        report
            .stages
            .iter()
            .map(|d| {
                JVal::Obj(vec![
                    ("stage".to_string(), JVal::str(d.stage)),
                    ("reason".to_string(), JVal::str(d.reason.to_string())),
                    ("work_done".to_string(), JVal::U64(d.work_done)),
                ])
            })
            .collect(),
    )
}

/// Serializes detection violations for the wire.
pub fn violations_jval(violations: &[guardrail_dsl::Violation]) -> JVal {
    JVal::Arr(
        violations
            .iter()
            .map(|v| {
                JVal::Obj(vec![
                    ("row".to_string(), JVal::U64(v.row as u64)),
                    ("statement".to_string(), JVal::U64(v.statement as u64)),
                    ("branch".to_string(), JVal::U64(v.branch as u64)),
                    ("attribute".to_string(), JVal::str(v.attribute.as_ref())),
                    ("expected".to_string(), JVal::from(&v.expected)),
                    ("actual".to_string(), JVal::from(&v.actual)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardrail_governor::{Degradation, ExhaustionReason};

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = parse_request(r#"{"op":"status"}"#).unwrap();
        assert_eq!(r.op, Op::Status);
        assert_eq!(r.tenant, "default");
        assert_eq!(r.table, "default");

        let r = parse_request(
            r#"{"op":"vet","tenant":"acme","table":"users","csv":"a,b\n1,2\n",
               "deadline_ms":250,"scheme":"coerce"}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Vet);
        assert_eq!(r.tenant, "acme");
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.scheme, Some(ErrorScheme::Coerce));
        assert_eq!(r.csv.as_deref(), Some("a,b\n1,2\n"));
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        for line in [
            "",
            "not json",
            "[1,2,3]",
            "42",
            r#"{"op":"detect""#,                  // truncated
            r#"{"op":"launch_missiles"}"#,        // unknown op
            r#"{"op":"detect","surprise":1}"#,    // unknown field
            r#"{"tenant":"t"}"#,                  // missing op
            r#"{"op":42}"#,                       // op wrong type
            r#"{"op":"fit","epsilon":7.5}"#,      // epsilon out of range
            r#"{"op":"fit","deadline_ms":-5}"#,   // negative deadline
            r#"{"op":"fit","tenant":""}"#,        // empty name
            r#"{"op":"fit","tenant":"a b"}"#,     // bad charset
            r#"{"op":"vet","scheme":"explode"}"#, // unknown scheme
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line:?} → {err:?}");
        }
        let long = format!(r#"{{"op":"fit","tenant":"{}"}}"#, "x".repeat(65));
        assert_eq!(parse_request(&long).unwrap_err().kind, ErrorKind::BadRequest);
    }

    #[test]
    fn responses_round_trip_through_the_obs_parser() {
        let mut report = DegradationReport::complete();
        report.stages.push(Degradation {
            stage: "sketch_fill",
            reason: ExhaustionReason::DeadlineExpired,
            work_done: 17,
        });
        let line = render_ok(
            Op::Fit,
            vec![("version", JVal::U64(3)), ("coverage", JVal::F64(0.97))],
            &report,
        );
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("fit"));
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("degraded"));
        let deg = doc.get("degradation").and_then(Json::as_arr).unwrap();
        assert_eq!(deg[0].get("stage").and_then(Json::as_str), Some("sketch_fill"));
        assert_eq!(deg[0].get("work_done").and_then(Json::as_u64), Some(17));

        let err_line = render_err(Some(Op::Detect), &WireError::retry_after(40, "tenant quota"));
        let doc = json::parse(&err_line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        let error = doc.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("RETRY_AFTER"));
        assert_eq!(error.get("retry_after_ms").and_then(Json::as_u64), Some(40));
    }

    #[test]
    fn jval_escapes_and_handles_nonfinite() {
        let v = JVal::Obj(vec![
            ("k\"ey".to_string(), JVal::str("line\nbreak")),
            ("nan".to_string(), JVal::F64(f64::NAN)),
            ("neg".to_string(), JVal::I64(-12)),
        ]);
        let text = v.to_json();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed.get("k\"ey").and_then(Json::as_str), Some("line\nbreak"));
        assert_eq!(parsed.get("nan"), Some(&Json::Null));
        assert_eq!(parsed.get("neg").and_then(Json::as_num), Some(-12.0));
    }

    #[test]
    fn clean_responses_omit_the_degradation_array() {
        let line = render_ok(Op::Detect, vec![], &DegradationReport::complete());
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("clean"));
        assert!(doc.get("degradation").is_none());
    }
}
